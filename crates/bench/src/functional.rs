//! Functional-layer experiments: real bytes, real verification work.
//!
//! The storage (Fig 9) and verification (Fig 12) experiments do not need
//! the timing model — they run the actual system (chaincode, encryption,
//! Merkle digests) and measure serialized ledger/state bytes and
//! verification operations. Ledger-access latency, which the paper found
//! dominates verification delay, is charged from the deployment's latency
//! matrix per access.

use std::collections::HashSet;
use std::time::Instant;

use fabric_sim::endorsement::EndorsementPolicy;
use fabric_sim::identity::OrgId;
use fabric_sim::FabricChain;
use ledgerview_core::contracts::{
    AccessContract, InvokeContract, TxListContract, ViewStorageContract, ACCESS_CC, INVOKE_CC,
    TX_LIST_CC, VIEW_STORAGE_CC,
};
use ledgerview_core::manager::{AccessMode, HashBasedManager, ViewManager};
use ledgerview_core::reader::ViewReader;
use ledgerview_core::txmodel::{AttrValue, ClientTransaction};
use ledgerview_core::verify;
use ledgerview_core::ViewPredicate;
use ledgerview_crosschain::{execute_request, CrossChainDeployment, CrossChainRequest};
use ledgerview_crypto::keys::EncryptionKeyPair;
use ledgerview_crypto::rng::seeded;
use ledgerview_supplychain::{generate, Topology, WorkloadConfig};

/// Build a chain with the LedgerView contracts deployed.
pub fn lv_chain(seed: u64) -> (FabricChain, fabric_sim::Identity, fabric_sim::Identity) {
    let mut rng = seeded(seed);
    let mut chain = FabricChain::new(&["Org1", "Org2"], &mut rng);
    // Large functional experiments skip endorsement signatures; the
    // signature path is covered by the functional test suite.
    chain.set_check_signatures(false);
    let policy = EndorsementPolicy::MajorityOf(chain.org_ids());
    chain.deploy(INVOKE_CC, Box::new(InvokeContract), policy.clone());
    chain.deploy(
        VIEW_STORAGE_CC,
        Box::new(ViewStorageContract),
        policy.clone(),
    );
    chain.deploy(TX_LIST_CC, Box::new(TxListContract), policy.clone());
    chain.deploy(ACCESS_CC, Box::new(AccessContract), policy);
    let owner = chain
        .enroll(&OrgId::new("Org1"), "owner", &mut rng)
        .unwrap();
    let client = chain
        .enroll(&OrgId::new("Org2"), "client", &mut rng)
        .unwrap();
    (chain, owner, client)
}

/// The storage-comparison configurations of Fig 9.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageMethod {
    /// Revocable hash-based views: nothing per-view on-chain.
    Revocable,
    /// Irrevocable views: one merge transaction per (tx, view).
    Irrevocable,
    /// Irrevocable with TxListContract batching.
    IrrevocableTlc,
    /// One blockchain per view + 2PC.
    Baseline,
}

impl StorageMethod {
    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            StorageMethod::Revocable => "revocable",
            StorageMethod::Irrevocable => "irrevocable",
            StorageMethod::IrrevocableTlc => "irrevocable+TLC",
            StorageMethod::Baseline => "baseline (2PC)",
        }
    }
}

/// A supply-chain transfer as a client transaction.
fn transfer_tx(attrs: &[(String, String)], secret: &[u8]) -> ClientTransaction {
    ClientTransaction {
        non_secret: attrs
            .iter()
            .map(|(k, v)| {
                let value = v
                    .parse::<i64>()
                    .map(AttrValue::Int)
                    .unwrap_or_else(|_| AttrValue::Str(v.clone()));
                (k.clone(), value)
            })
            .collect(),
        secret: secret.to_vec(),
    }
}

/// Total on-chain storage after committing `requests` supply-chain
/// transfers with `n_views` views, each transaction included in every view
/// (the configuration of Fig 9). Returns `(total_bytes, onchain_txs)`.
pub fn storage_after_requests(
    method: StorageMethod,
    n_views: usize,
    requests: usize,
    seed: u64,
) -> (u64, u64) {
    let topo = Topology::wl1();
    let workload = generate(
        &topo,
        &WorkloadConfig {
            items: requests,
            max_hops: 1,
            seed,
            secret_bytes: 64,
        },
    );
    let transfers: Vec<_> = workload.transfers.iter().take(requests).collect();
    let mut rng = seeded(seed + 1);

    match method {
        StorageMethod::Baseline => {
            let names: Vec<String> = (0..n_views).map(|i| format!("V{i}")).collect();
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let mut dep = CrossChainDeployment::new(&refs, &mut rng);
            for (i, t) in transfers.iter().enumerate() {
                let payload = transfer_tx(&t.attributes(), &t.secret);
                let req = CrossChainRequest {
                    id: format!("req-{i}"),
                    payload: ledgerview_core::txmodel::encode_non_secret(&payload.non_secret)
                        .into_iter()
                        .chain(payload.secret)
                        .collect(),
                    views: names.clone(),
                };
                execute_request(&mut dep, &req, &mut rng).expect("baseline request");
            }
            (dep.total_storage_bytes(), dep.total_onchain_txs())
        }
        _ => {
            let (mut chain, owner, client) = lv_chain(seed);
            let use_txlist = method == StorageMethod::IrrevocableTlc;
            let mode = if method == StorageMethod::Revocable {
                AccessMode::Revocable
            } else {
                AccessMode::Irrevocable
            };
            let mut mgr: HashBasedManager = ViewManager::new(owner, use_txlist);
            for i in 0..n_views {
                mgr.create_view(
                    &mut chain,
                    format!("V{i}"),
                    ViewPredicate::True,
                    mode,
                    &mut rng,
                )
                .expect("create view");
            }
            let setup_bytes = chain.store().total_bytes() + chain.state().size_bytes();
            for t in &transfers {
                let tx = transfer_tx(&t.attributes(), &t.secret);
                mgr.invoke_with_secret(&mut chain, &client, &tx, &mut rng)
                    .expect("invoke");
            }
            if use_txlist {
                mgr.flush(&mut chain, &mut rng).expect("flush");
            }
            let total = chain.store().total_bytes() + chain.state().size_bytes();
            (
                total - setup_bytes.min(total),
                chain.store().committed_tx_count(),
            )
        }
    }
}

/// Result of one verification-delay measurement (Fig 12).
#[derive(Clone, Debug)]
pub struct VerificationTiming {
    /// Number of transactions in the view.
    pub txs: usize,
    /// Soundness verification: modelled total (ledger accesses dominate).
    pub soundness_ms: f64,
    /// Completeness verification via the TxListContract list.
    pub completeness_ms: f64,
    /// Pure local CPU portion of the soundness check (measured).
    pub soundness_local_ms: f64,
    /// Pure local CPU portion of the completeness check (measured).
    pub completeness_local_ms: f64,
}

/// Per-ledger-access round trip charged to verification, in milliseconds.
/// (Client to its nearest peer; the paper: "most of the delay is due to
/// access to the ledger".)
pub const LEDGER_ACCESS_MS: f64 = 1.2;

/// Measure verification delay for a view of `n_txs` transactions (Fig 12).
pub fn verification_timing(n_txs: usize, seed: u64) -> VerificationTiming {
    let (mut chain, owner, client) = lv_chain(seed);
    let mut rng = seeded(seed + 7);
    let mut mgr: HashBasedManager = ViewManager::new(owner, true);
    mgr.create_view(
        &mut chain,
        "V",
        ViewPredicate::True,
        AccessMode::Revocable,
        &mut rng,
    )
    .expect("create view");
    for i in 0..n_txs {
        let tx = ClientTransaction::new(
            vec![
                ("item", AttrValue::str(format!("item-{i}"))),
                ("from", AttrValue::str("M1")),
                ("to", AttrValue::str("W1")),
            ],
            format!("secret-{i}").into_bytes(),
        );
        mgr.invoke_with_secret(&mut chain, &client, &tx, &mut rng)
            .expect("invoke");
    }
    mgr.flush(&mut chain, &mut rng).expect("flush");

    let reader_kp = EncryptionKeyPair::generate(&mut rng);
    mgr.grant_access(&mut chain, "V", reader_kp.public(), &mut rng)
        .expect("grant");
    let mut reader = ViewReader::new(reader_kp);
    reader.obtain_view_key(&chain, "V").expect("key");
    let resp = mgr
        .query_view("V", &reader.public(), None, &mut rng)
        .expect("query");
    let revealed = reader.open_response(&chain, "V", &resp).expect("reveal");

    // Soundness: one ledger access per transaction + local checks.
    let t0 = Instant::now();
    let sound = verify::verify_soundness(&chain, "V", &revealed).expect("soundness");
    let soundness_local_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(sound.ok, "honest view must verify sound");
    let soundness_ms = soundness_local_ms + n_txs as f64 * LEDGER_ACCESS_MS;

    // Completeness: one access fetches the maintained list; comparison is
    // local.
    let tids: HashSet<_> = revealed.iter().map(|r| r.tid).collect();
    let t1 = Instant::now();
    let complete =
        verify::verify_completeness_txlist(&chain, "V", &tids, u64::MAX).expect("completeness");
    let completeness_local_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert!(complete.ok, "honest view must verify complete");
    let completeness_ms = completeness_local_ms + LEDGER_ACCESS_MS + n_txs as f64 * 0.002;

    VerificationTiming {
        txs: n_txs,
        soundness_ms,
        completeness_ms,
        soundness_local_ms,
        completeness_local_ms,
    }
}

/// Measured sizes of real on-chain payloads, used to pin the timed model's
/// [`crate::methods::PayloadModel`] constants to reality.
pub fn measure_payload_sizes(seed: u64) -> (u64, u64) {
    let topo = Topology::wl1();
    let workload = generate(
        &topo,
        &WorkloadConfig {
            items: 8,
            max_hops: 4,
            seed,
            secret_bytes: 64,
        },
    );
    let mut rng = seeded(seed);
    let mut max_tx = 0u64;
    for t in &workload.transfers {
        let tx = transfer_tx(&t.attributes(), &t.secret);
        let (concealed, _) = ledgerview_core::txmodel::conceal_by_encryption(&tx.secret, &mut rng);
        let stored = ledgerview_core::txmodel::StoredTransaction {
            non_secret: tx.non_secret,
            concealed,
        };
        max_tx = max_tx.max(stored.to_bytes().len() as u64);
    }
    // A view-storage entry: 32-byte tid + AEAD-sealed 32-byte payload.
    let entry = 32 + 4 + (32 + ledgerview_crypto::aead::OVERHEAD) as u64;
    (max_tx, entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_ordering_matches_fig9() {
        // |V| = 10, matching the paper's "tenfold" baseline comparison.
        let n_views = 10;
        let requests = 20;
        let rev = storage_after_requests(StorageMethod::Revocable, n_views, requests, 1).0;
        let irr = storage_after_requests(StorageMethod::Irrevocable, n_views, requests, 1).0;
        let tlc = storage_after_requests(StorageMethod::IrrevocableTlc, n_views, requests, 1).0;
        let base = storage_after_requests(StorageMethod::Baseline, n_views, requests, 1).0;
        // Fig 9 ordering: revocable smallest; TLC and plain irrevocable
        // close to each other (TLC trades per-request merge transactions
        // for on-chain id lists); the baseline far above everything.
        assert!(rev < tlc, "rev={rev} tlc={tlc}");
        assert!(rev < irr, "rev={rev} irr={irr}");
        assert!(
            (tlc as f64) < 1.25 * irr as f64,
            "tlc={tlc} irr={irr} diverged"
        );
        assert!(base > 2 * irr, "base={base} irr={irr}");
        assert!(base > 2 * tlc, "base={base} tlc={tlc}");
    }

    #[test]
    fn revocable_storage_independent_of_views() {
        let a = storage_after_requests(StorageMethod::Revocable, 1, 15, 2).0;
        let b = storage_after_requests(StorageMethod::Revocable, 20, 15, 2).0;
        // "the revocable methods ... are not affected by the number of
        // views" — allow only setup-noise differences.
        let ratio = b as f64 / a as f64;
        assert!(ratio < 1.2, "revocable grew {ratio}x with views");
    }

    #[test]
    fn irrevocable_storage_grows_with_views() {
        let a = storage_after_requests(StorageMethod::Irrevocable, 2, 15, 3).0;
        let b = storage_after_requests(StorageMethod::Irrevocable, 8, 15, 3).0;
        assert!(b as f64 > 1.8 * a as f64, "a={a} b={b}");
    }

    #[test]
    fn verification_is_linear_and_soundness_dominates() {
        let small = verification_timing(20, 4);
        let large = verification_timing(80, 4);
        assert!(large.soundness_ms > 3.0 * small.soundness_ms);
        // Soundness ≫ completeness at the same size (Fig 12).
        assert!(large.soundness_ms > 5.0 * large.completeness_ms);
        // Local computation is the minor share for soundness.
        assert!(large.soundness_local_ms < large.soundness_ms / 2.0);
    }

    #[test]
    fn payload_model_constants_are_realistic() {
        let (tx_bytes, entry_bytes) = measure_payload_sizes(9);
        let model = crate::methods::PayloadModel::default();
        // The defaults must be within 2x of real encodings.
        assert!(
            (tx_bytes as f64 / model.invoke_tx_bytes as f64) < 2.0
                && (model.invoke_tx_bytes as f64 / tx_bytes as f64) < 2.0,
            "real invoke tx {tx_bytes} vs model {}",
            model.invoke_tx_bytes
        );
        assert!(
            (entry_bytes as f64 / model.view_entry_bytes as f64) < 2.0
                && (model.view_entry_bytes as f64 / entry_bytes as f64) < 2.0,
            "real entry {entry_bytes} vs model {}",
            model.view_entry_bytes
        );
    }
}

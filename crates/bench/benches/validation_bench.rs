//! Criterion microbenchmark: serial vs parallel block validation.
//!
//! Measures `BlockValidator::validate_and_commit` on a 100-transaction
//! block with real Ed25519 endorsements (2 per transaction) at 1/2/4/8
//! workers, plus ablations isolating batch verification and the signature
//! cache. A fresh validator is built per iteration so the signature cache
//! starts cold (intra-block dedup still applies, as it would on a live
//! peer seeing a new block).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fabric_sim::{BlockValidator, ValidationConfig};
use ledgerview_bench::validation_fixtures::{parallel_config, serial_config, ValidationWorkload};

fn bench_validation(c: &mut Criterion) {
    let workload = ValidationWorkload::build(100);
    let mut group = c.benchmark_group("validation/commit_100tx");
    group.throughput(Throughput::Elements(workload.transactions.len() as u64));
    group.sample_size(10);

    group.bench_function(BenchmarkId::from_parameter("serial_reference"), |b| {
        b.iter(|| {
            let validator = BlockValidator::new(serial_config());
            let mut state = workload.fresh_state();
            black_box(validator.validate_and_commit(
                &workload.transactions,
                &mut state,
                1,
                &workload.msp,
                &ValidationWorkload::policy_for,
            ))
        });
    });

    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let validator = BlockValidator::new(parallel_config(workers));
                    let mut state = workload.fresh_state();
                    black_box(validator.validate_and_commit(
                        &workload.transactions,
                        &mut state,
                        1,
                        &workload.msp,
                        &ValidationWorkload::policy_for,
                    ))
                });
            },
        );
    }

    // Ablations at 4 workers: batching and caching isolated.
    for (label, config) in [
        (
            "workers4_no_batch",
            ValidationConfig {
                workers: 4,
                batch_verify: false,
                sig_cache: 0,
                verify_endorsements: true,
            },
        ),
        (
            "workers1_batch_only",
            ValidationConfig {
                workers: 1,
                batch_verify: true,
                sig_cache: 0,
                verify_endorsements: true,
            },
        ),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let validator = BlockValidator::new(config.clone());
                let mut state = workload.fresh_state();
                black_box(validator.validate_and_commit(
                    &workload.transactions,
                    &mut state,
                    1,
                    &workload.msp,
                    &ValidationWorkload::policy_for,
                ))
            });
        });
    }
    group.finish();

    // MVCC-only phase (endorsements off): the serial floor every
    // configuration shares.
    c.bench_function("validation/mvcc_only_100tx", |b| {
        let validator = BlockValidator::new(ValidationConfig::default());
        b.iter(|| {
            let mut state = workload.fresh_state();
            black_box(validator.validate_and_commit(
                &workload.transactions,
                &mut state,
                1,
                &workload.msp,
                &ValidationWorkload::policy_for,
            ))
        });
    });
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);

//! Benchmarks of the blockchain substrate: Merkle trees, the state
//! database digest, block commit, and datalog view evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fabric_sim::merkle::{verify_inclusion, MerkleTree};
use fabric_sim::statedb::{StateDb, Version};
use ledgerview_datalog::{Atom, Database, Program, Rule, Term, Value};

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    for n in [100usize, 1000] {
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect();
        group.bench_with_input(BenchmarkId::new("build", n), &leaves, |b, leaves| {
            b.iter(|| MerkleTree::build(black_box(leaves)));
        });
        let tree = MerkleTree::build(&leaves);
        group.bench_with_input(BenchmarkId::new("prove", n), &tree, |b, tree| {
            b.iter(|| tree.prove(black_box(n / 2)));
        });
        let proof = tree.prove(n / 2);
        let root = tree.root();
        group.bench_with_input(BenchmarkId::new("verify", n), &proof, |b, proof| {
            b.iter(|| verify_inclusion(&root, black_box(&leaves[n / 2]), proof));
        });
    }
    group.finish();
}

fn bench_statedb(c: &mut Criterion) {
    let mut group = c.benchmark_group("statedb");
    for n in [1_000usize, 10_000] {
        let mut db = StateDb::new();
        for i in 0..n {
            db.put(
                format!("key-{i:06}"),
                format!("value-{i}").into_bytes(),
                Version {
                    block_num: (i / 100) as u64,
                    tx_num: (i % 100) as u32,
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("state_digest", n), &db, |b, db| {
            b.iter(|| db.state_digest());
        });
        group.bench_with_input(BenchmarkId::new("prefix_scan", n), &db, |b, db| {
            b.iter(|| db.scan_prefix(black_box("key-0001")).count());
        });
    }
    group.finish();
}

fn bench_block_commit(c: &mut Criterion) {
    use fabric_sim::endorsement::EndorsementPolicy;
    use fabric_sim::identity::OrgId;
    use fabric_sim::{Chaincode, FabricChain, TxContext};
    use ledgerview_crypto::rng::seeded;

    struct PutChaincode;
    impl Chaincode for PutChaincode {
        fn invoke(
            &self,
            ctx: &mut TxContext<'_>,
            _function: &str,
            args: &[Vec<u8>],
        ) -> Result<Vec<u8>, fabric_sim::FabricError> {
            ctx.put_state(
                String::from_utf8_lossy(&args[0]).to_string(),
                args[1].clone(),
            );
            Ok(vec![])
        }
    }

    c.bench_function("chain/invoke_commit_signed", |b| {
        let mut rng = seeded(1);
        let mut chain = FabricChain::new(&["Org1"], &mut rng);
        chain.deploy(
            "kv",
            Box::new(PutChaincode),
            EndorsementPolicy::AnyOf(chain.org_ids()),
        );
        let user = chain.enroll(&OrgId::new("Org1"), "u", &mut rng).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            chain
                .invoke_commit(
                    &user,
                    "kv",
                    "put",
                    vec![format!("k{i}").into_bytes(), b"v".to_vec()],
                    &mut rng,
                )
                .unwrap()
        });
    });

    c.bench_function("chain/invoke_commit_unsigned", |b| {
        let mut rng = seeded(2);
        let mut chain = FabricChain::new(&["Org1"], &mut rng);
        chain.set_check_signatures(false);
        chain.deploy(
            "kv",
            Box::new(PutChaincode),
            EndorsementPolicy::AnyOf(chain.org_ids()),
        );
        let user = chain.enroll(&OrgId::new("Org1"), "u", &mut rng).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            chain
                .invoke_commit(
                    &user,
                    "kv",
                    "put",
                    vec![format!("k{i}").into_bytes(), b"v".to_vec()],
                    &mut rng,
                )
                .unwrap()
        });
    });
}

fn bench_datalog(c: &mut Criterion) {
    // Transitive closure over a delivery chain — the recursive view
    // definition pattern of §3.
    let mut group = c.benchmark_group("datalog");
    for n in [50usize, 200] {
        let mut db = Database::new();
        for i in 0..n as i64 {
            db.insert("edge", vec![Value::int(i), Value::int(i + 1)]);
        }
        let program = Program::new(vec![
            Rule::new(
                Atom::new("path", vec![Term::var("X"), Term::var("Y")]),
                vec![Atom::new("edge", vec![Term::var("X"), Term::var("Y")])],
            ),
            Rule::new(
                Atom::new("path", vec![Term::var("X"), Term::var("Z")]),
                vec![
                    Atom::new("edge", vec![Term::var("X"), Term::var("Y")]),
                    Atom::new("path", vec![Term::var("Y"), Term::var("Z")]),
                ],
            ),
        ]);
        group.bench_with_input(BenchmarkId::new("closure", n), &db, |b, db| {
            b.iter(|| program.evaluate(black_box(db)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_merkle,
    bench_statedb,
    bench_block_commit,
    bench_datalog
);
criterion_main!(benches);

//! Microbenchmarks of the cryptographic primitives.
//!
//! The paper reports that off-chain crypto (encryption, hashing) is
//! negligible next to on-chain transaction costs; these benchmarks pin
//! that claim for our from-scratch implementations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ledgerview_crypto::aead;
use ledgerview_crypto::ed25519;
use ledgerview_crypto::keys::{self, EncryptionKeyPair, SigningKeyPair, SymmetricKey};
use ledgerview_crypto::rng::seeded;
use ledgerview_crypto::sha256::sha256;
use ledgerview_crypto::x25519;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 64 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)));
        });
    }
    group.finish();
}

fn bench_aead(c: &mut Criterion) {
    let mut group = c.benchmark_group("aead");
    let key = [7u8; 32];
    for size in [64usize, 1024, 16 * 1024] {
        let mut rng = seeded(1);
        let pt = vec![0x5au8; size];
        let ct = aead::seal_sym(&key, &mut rng, &pt);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &pt, |b, pt| {
            let mut rng = seeded(2);
            b.iter(|| aead::seal_sym(black_box(&key), &mut rng, black_box(pt)));
        });
        group.bench_with_input(BenchmarkId::new("open", size), &ct, |b, ct| {
            b.iter(|| aead::open_sym(black_box(&key), black_box(ct)).unwrap());
        });
    }
    group.finish();
}

fn bench_x25519(c: &mut Criterion) {
    let mut rng = seeded(3);
    let alice = EncryptionKeyPair::generate(&mut rng);
    let bob = EncryptionKeyPair::generate(&mut rng);
    c.bench_function("x25519/shared_secret", |b| {
        let priv_bytes = [0x42u8; 32];
        b.iter(|| {
            x25519::shared_secret(black_box(&priv_bytes), black_box(bob.public().as_bytes()))
        });
    });
    c.bench_function("hybrid/seal_32B", |b| {
        let mut rng = seeded(4);
        b.iter(|| {
            keys::seal(
                black_box(&bob.public()),
                &mut rng,
                black_box(b"0123456789abcdef0123456789abcdef"),
            )
        });
    });
    let sealed = keys::seal(
        &alice.public(),
        &mut rng,
        b"0123456789abcdef0123456789abcdef",
    );
    c.bench_function("hybrid/open_32B", |b| {
        b.iter(|| keys::open(black_box(&alice), black_box(&sealed)).unwrap());
    });
}

fn bench_ed25519(c: &mut Criterion) {
    let mut rng = seeded(5);
    let kp = SigningKeyPair::generate(&mut rng);
    let msg = vec![0x11u8; 256];
    let sig = kp.sign(&msg);
    c.bench_function("ed25519/sign_256B", |b| {
        b.iter(|| kp.sign(black_box(&msg)));
    });
    c.bench_function("ed25519/verify_256B", |b| {
        b.iter(|| {
            ed25519::verify(black_box(&kp.public()), black_box(&msg), black_box(&sig)).unwrap()
        });
    });
}

fn bench_process_secret(c: &mut Criterion) {
    // The per-transaction concealment step of §5.3: key generation +
    // encryption (EI/ER) vs salted hashing (HI/HR).
    let secret = vec![0x33u8; 128];
    c.bench_function("process_secret/encryption_128B", |b| {
        let mut rng = seeded(6);
        b.iter(|| {
            let key = SymmetricKey::generate(&mut rng);
            key.seal(&mut rng, black_box(&secret))
        });
    });
    c.bench_function("process_secret/hash_128B", |b| {
        let mut rng = seeded(7);
        b.iter(|| ledgerview_core::txmodel::conceal_by_hash(black_box(&secret), &mut rng));
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_aead,
    bench_x25519,
    bench_ed25519,
    bench_process_secret
);
criterion_main!(benches);

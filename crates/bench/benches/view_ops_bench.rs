//! Benchmarks of end-to-end LedgerView operations on the functional chain:
//! invoking with a secret, querying a view, and verifying soundness and
//! completeness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashSet;
use std::hint::black_box;

use ledgerview_bench::functional::lv_chain;
use ledgerview_core::manager::{AccessMode, HashBasedManager, ViewManager};
use ledgerview_core::reader::ViewReader;
use ledgerview_core::txmodel::{AttrValue, ClientTransaction};
use ledgerview_core::{verify, ViewPredicate};
use ledgerview_crypto::keys::EncryptionKeyPair;
use ledgerview_crypto::rng::seeded;

fn sample_tx(i: usize) -> ClientTransaction {
    ClientTransaction::new(
        vec![
            ("item", AttrValue::str(format!("item-{i}"))),
            ("from", AttrValue::str("M1")),
            ("to", AttrValue::str("W1")),
        ],
        format!("type=battery;amount={i};price=9.99").into_bytes(),
    )
}

fn bench_invoke_with_secret(c: &mut Criterion) {
    c.bench_function("invoke_with_secret/hash_revocable", |b| {
        let (mut chain, owner, client) = lv_chain(1);
        let mut rng = seeded(1);
        let mut mgr: HashBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            mgr.invoke_with_secret(&mut chain, &client, black_box(&sample_tx(i)), &mut rng)
                .unwrap()
        });
    });
}

fn setup_view(n: usize, seed: u64) -> (fabric_sim::FabricChain, HashBasedManager, ViewReader) {
    let (mut chain, owner, client) = lv_chain(seed);
    let mut rng = seeded(seed);
    let mut mgr: HashBasedManager = ViewManager::new(owner, true);
    mgr.create_view(
        &mut chain,
        "V",
        ViewPredicate::True,
        AccessMode::Revocable,
        &mut rng,
    )
    .unwrap();
    for i in 0..n {
        mgr.invoke_with_secret(&mut chain, &client, &sample_tx(i), &mut rng)
            .unwrap();
    }
    mgr.flush(&mut chain, &mut rng).unwrap();
    let kp = EncryptionKeyPair::generate(&mut rng);
    mgr.grant_access(&mut chain, "V", kp.public(), &mut rng)
        .unwrap();
    let mut reader = ViewReader::new(kp);
    reader.obtain_view_key(&chain, "V").unwrap();
    (chain, mgr, reader)
}

fn bench_query_and_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_ops");
    for n in [10usize, 100] {
        let (chain, mgr, reader) = setup_view(n, 2);
        group.bench_with_input(BenchmarkId::new("query_view", n), &n, |b, _| {
            let mut rng = seeded(3);
            b.iter(|| {
                mgr.query_view("V", &reader.public(), None, &mut rng)
                    .unwrap()
            });
        });
        let mut rng = seeded(4);
        let resp = mgr
            .query_view("V", &reader.public(), None, &mut rng)
            .unwrap();
        group.bench_with_input(BenchmarkId::new("open_response", n), &n, |b, _| {
            b.iter(|| reader.open_response(&chain, "V", black_box(&resp)).unwrap());
        });
        let revealed = reader.open_response(&chain, "V", &resp).unwrap();
        group.bench_with_input(BenchmarkId::new("verify_soundness", n), &n, |b, _| {
            b.iter(|| verify::verify_soundness(&chain, "V", black_box(&revealed)).unwrap());
        });
        let tids: HashSet<_> = revealed.iter().map(|r| r.tid).collect();
        group.bench_with_input(
            BenchmarkId::new("verify_completeness_txlist", n),
            &n,
            |b, _| {
                b.iter(|| {
                    verify::verify_completeness_txlist(&chain, "V", black_box(&tids), u64::MAX)
                        .unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("verify_completeness_scan", n),
            &n,
            |b, _| {
                b.iter(|| {
                    verify::verify_completeness_scan(&chain, "V", black_box(&tids), u64::MAX)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_grant_revoke(c: &mut Criterion) {
    c.bench_function("grant_access", |b| {
        let (mut chain, owner, _) = lv_chain(5);
        let mut rng = seeded(5);
        let mut mgr: HashBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        b.iter(|| {
            let user = EncryptionKeyPair::generate(&mut rng);
            mgr.grant_access(&mut chain, "V", user.public(), &mut rng)
                .unwrap();
        });
    });
    // Revocation re-seals K_V' to every remaining member: cost grows with
    // membership — the ablation behind the paper's "effective way to grant
    // and revoke" claim.
    let mut group = c.benchmark_group("revoke_access");
    for members in [4usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(members), &members, |b, &m| {
            let (mut chain, owner, _) = lv_chain(6);
            let mut rng = seeded(6);
            let mut mgr: HashBasedManager = ViewManager::new(owner, false);
            mgr.create_view(
                &mut chain,
                "V",
                ViewPredicate::True,
                AccessMode::Revocable,
                &mut rng,
            )
            .unwrap();
            let users: Vec<_> = (0..m)
                .map(|_| EncryptionKeyPair::generate(&mut rng))
                .collect();
            for u in &users {
                mgr.grant_access(&mut chain, "V", u.public(), &mut rng)
                    .unwrap();
            }
            b.iter(|| {
                // Revoke then immediately re-grant to keep size stable.
                mgr.revoke_access(&mut chain, "V", &users[0].public(), &mut rng)
                    .unwrap();
                mgr.grant_access(&mut chain, "V", users[0].public(), &mut rng)
                    .unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_invoke_with_secret,
    bench_query_and_verify,
    bench_grant_revoke
);
criterion_main!(benches);

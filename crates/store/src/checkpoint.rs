//! Snapshot checkpoints with atomic replace.
//!
//! A checkpoint freezes the state database at a block height so the WAL can
//! be truncated (compaction): recovery starts from the snapshot instead of
//! replaying from genesis. The file is a single CRC frame holding
//! `[height][meta][payload]` — `meta` and `payload` are opaque to this
//! crate (the ledger layer stores its state roots and serialized entries).
//!
//! Writes are crash-atomic: the snapshot is written to `checkpoint.tmp`,
//! fsynced, then renamed over `checkpoint.dat` (and the directory fsynced),
//! so a crash at any point leaves either the old checkpoint or the new one,
//! never a torn hybrid.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;

use crate::record::{encode_frame, scan_frames};
use crate::StoreError;

/// File name of the live checkpoint inside a storage directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.dat";
/// File name of the in-progress checkpoint (garbage after a crash; replaced
/// on the next save).
pub const CHECKPOINT_TMP_FILE: &str = "checkpoint.tmp";

/// A loaded (or to-be-saved) checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Block height the snapshot covers (blocks `0..height` applied).
    pub height: u64,
    /// Domain metadata (the ledger stores its rolling state root and the
    /// full-state Merkle digest here).
    pub meta: Vec<u8>,
    /// The opaque snapshot payload.
    pub payload: Vec<u8>,
}

/// Reads and writes the checkpoint files of one storage directory.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    saves: u64,
}

impl CheckpointStore {
    /// A checkpoint store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointStore {
        CheckpointStore {
            dir: dir.into(),
            saves: 0,
        }
    }

    fn live_path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }

    /// Load the live checkpoint. `Ok(None)` if none was ever saved;
    /// `Err(Corrupt)` if the file exists but fails its CRC or framing —
    /// atomic replace means that never results from a crash, only from
    /// external damage.
    pub fn load(&self) -> Result<Option<Checkpoint>, StoreError> {
        let path = self.live_path();
        let mut file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let scan = scan_frames(&mut file, 0)?;
        let frame = match scan.frames.first() {
            Some(f) if scan.frames.len() == 1 && !scan.torn => f,
            _ => {
                return Err(StoreError::Corrupt(
                    "checkpoint file is torn or has trailing garbage".into(),
                ))
            }
        };
        let p = &frame.payload;
        if p.len() < 12 {
            return Err(StoreError::Corrupt("checkpoint payload too short".into()));
        }
        let height = u64::from_le_bytes(p[..8].try_into().unwrap());
        let meta_len = u32::from_le_bytes(p[8..12].try_into().unwrap()) as usize;
        if p.len() < 12 + meta_len {
            return Err(StoreError::Corrupt("checkpoint meta overruns frame".into()));
        }
        Ok(Some(Checkpoint {
            height,
            meta: p[12..12 + meta_len].to_vec(),
            payload: p[12 + meta_len..].to_vec(),
        }))
    }

    /// Atomically replace the live checkpoint.
    pub fn save(&mut self, cp: &Checkpoint) -> Result<(), StoreError> {
        let tmp_path = self.dir.join(CHECKPOINT_TMP_FILE);
        let mut payload = Vec::with_capacity(12 + cp.meta.len() + cp.payload.len());
        payload.extend_from_slice(&cp.height.to_le_bytes());
        payload.extend_from_slice(&(cp.meta.len() as u32).to_le_bytes());
        payload.extend_from_slice(&cp.meta);
        payload.extend_from_slice(&cp.payload);
        let frame = encode_frame(&payload);

        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(&frame)?;
        tmp.sync_data()?;
        drop(tmp);
        std::fs::rename(&tmp_path, self.live_path())?;
        // fsync the directory so the rename itself is durable. Directories
        // open read-only on Linux; failure here (exotic filesystems) only
        // weakens durability of the rename, so it is best-effort.
        if let Ok(dirf) = File::open(&self.dir) {
            let _ = dirf.sync_all();
        }
        self.saves += 1;
        Ok(())
    }

    /// Number of checkpoints saved by this handle.
    pub fn saves(&self) -> u64 {
        self.saves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdir::TestDir;

    fn cp(height: u64, tag: u8) -> Checkpoint {
        Checkpoint {
            height,
            meta: vec![tag; 64],
            payload: vec![tag ^ 0xFF; 100],
        }
    }

    #[test]
    fn save_load_round_trip() {
        let dir = TestDir::new("cp-round-trip");
        let mut store = CheckpointStore::new(dir.path());
        assert_eq!(store.load().unwrap(), None);
        store.save(&cp(7, 1)).unwrap();
        assert_eq!(store.load().unwrap(), Some(cp(7, 1)));
        // Replacement is total.
        store.save(&cp(42, 2)).unwrap();
        assert_eq!(store.load().unwrap(), Some(cp(42, 2)));
        assert_eq!(store.saves(), 2);
    }

    #[test]
    fn crash_during_save_leaves_old_checkpoint() {
        let dir = TestDir::new("cp-crash");
        let mut store = CheckpointStore::new(dir.path());
        store.save(&cp(3, 1)).unwrap();
        // A crash mid-save leaves a partial tmp file; the live checkpoint
        // must be untouched and the next save must recover.
        std::fs::write(dir.path().join(CHECKPOINT_TMP_FILE), b"partial garbage").unwrap();
        assert_eq!(store.load().unwrap(), Some(cp(3, 1)));
        store.save(&cp(4, 2)).unwrap();
        assert_eq!(store.load().unwrap(), Some(cp(4, 2)));
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_a_silent_reset() {
        let dir = TestDir::new("cp-corrupt");
        let mut store = CheckpointStore::new(dir.path());
        store.save(&cp(9, 1)).unwrap();
        let path = dir.path().join(CHECKPOINT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(store.load(), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn empty_meta_and_payload() {
        let dir = TestDir::new("cp-empty");
        let mut store = CheckpointStore::new(dir.path());
        let empty = Checkpoint {
            height: 0,
            meta: vec![],
            payload: vec![],
        };
        store.save(&empty).unwrap();
        assert_eq!(store.load().unwrap(), Some(empty));
    }
}

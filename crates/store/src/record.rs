//! Length-prefixed, CRC-checked record framing.
//!
//! Every file this crate writes — the WAL, the block data file, the sparse
//! block index, checkpoints — is a sequence of *frames*:
//!
//! ```text
//! +----------------+----------------+------------------+
//! | len: u32 LE    | crc32: u32 LE  | payload: len B   |
//! +----------------+----------------+------------------+
//! ```
//!
//! The CRC covers the payload only. A frame whose header or payload runs
//! past end-of-file, or whose CRC does not match, marks a **torn tail**: the
//! write was cut by a crash mid-record. Recovery keeps every frame before
//! the torn one and truncates the file back to the last whole frame — the
//! standard WAL repair rule (anything after the first bad frame was never
//! acknowledged as durable, so dropping it is safe).

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};

use crate::crc32::crc32;

/// Bytes of framing overhead per record (length + CRC).
pub const FRAME_HEADER_BYTES: u64 = 8;

/// Append the frame encoding of `payload` to `buf` (for group commit:
/// several frames are encoded into one buffer and written with a single
/// syscall).
pub fn encode_frame_into(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// The frame encoding of `payload` as a fresh buffer.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + FRAME_HEADER_BYTES as usize);
    encode_frame_into(&mut buf, payload);
    buf
}

/// One recovered frame: its byte offset in the file and its payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScannedFrame {
    /// Offset of the frame header within the file.
    pub offset: u64,
    /// The verified payload.
    pub payload: Vec<u8>,
}

/// The result of scanning a frame file.
#[derive(Debug, Default)]
pub struct Scan {
    /// Every whole, CRC-valid frame in order.
    pub frames: Vec<ScannedFrame>,
    /// File length covered by valid frames (the truncation point if torn).
    pub valid_len: u64,
    /// Whether a torn/corrupt tail was found after the valid frames.
    pub torn: bool,
}

/// Scan `file` from `from_offset` to EOF, collecting whole valid frames and
/// detecting a torn tail. Does not modify the file.
pub fn scan_frames(file: &mut File, from_offset: u64) -> std::io::Result<Scan> {
    let file_len = file.seek(SeekFrom::End(0))?;
    file.seek(SeekFrom::Start(from_offset))?;
    let mut bytes = Vec::with_capacity(file_len.saturating_sub(from_offset) as usize);
    file.read_to_end(&mut bytes)?;

    let mut scan = Scan {
        frames: Vec::new(),
        valid_len: from_offset,
        torn: false,
    };
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_HEADER_BYTES as usize {
            scan.torn = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let body_start = pos + FRAME_HEADER_BYTES as usize;
        if len > remaining - FRAME_HEADER_BYTES as usize {
            scan.torn = true;
            break;
        }
        let payload = &bytes[body_start..body_start + len];
        if crc32(payload) != crc {
            scan.torn = true;
            break;
        }
        scan.frames.push(ScannedFrame {
            offset: from_offset + pos as u64,
            payload: payload.to_vec(),
        });
        pos = body_start + len;
        scan.valid_len = from_offset + pos as u64;
    }
    Ok(scan)
}

/// Truncate `file` to `len` bytes and seek to the new end (repairing a torn
/// tail found by [`scan_frames`]).
pub fn truncate_to(file: &mut File, len: u64) -> std::io::Result<()> {
    file.set_len(len)?;
    file.seek(SeekFrom::Start(len))?;
    Ok(())
}

/// Write `buf` at the current end of `file`.
pub fn append_bytes(file: &mut File, buf: &[u8]) -> std::io::Result<()> {
    file.write_all(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdir::TestDir;
    use std::fs::OpenOptions;

    fn open_rw(path: &std::path::Path) -> File {
        OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .unwrap()
    }

    #[test]
    fn frames_round_trip() {
        let dir = TestDir::new("frames-round-trip");
        let path = dir.path().join("f.log");
        let mut file = open_rw(&path);
        for payload in [&b"alpha"[..], b"", b"gamma-gamma"] {
            append_bytes(&mut file, &encode_frame(payload)).unwrap();
        }
        let scan = scan_frames(&mut file, 0).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.frames[0].payload, b"alpha");
        assert_eq!(scan.frames[1].payload, b"");
        assert_eq!(scan.frames[2].payload, b"gamma-gamma");
        assert_eq!(scan.valid_len, file.metadata().unwrap().len());
    }

    #[test]
    fn torn_tail_detected_at_every_truncation_point() {
        let dir = TestDir::new("torn-tail");
        let path = dir.path().join("f.log");
        let mut whole = Vec::new();
        encode_frame_into(&mut whole, b"first-record");
        encode_frame_into(&mut whole, b"second-record");
        let first_len = encode_frame(b"first-record").len() as u64;

        // Cutting exactly between frames leaves a clean file: a crash that
        // loses an entire trailing record leaves no evidence of it.
        std::fs::write(&path, &whole[..first_len as usize]).unwrap();
        let mut file = open_rw(&path);
        let scan = scan_frames(&mut file, 0).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.frames.len(), 1);

        // Truncate the file at every byte offset strictly inside the second
        // frame: the first frame must survive, the partial second dropped.
        for cut in first_len + 1..whole.len() as u64 {
            std::fs::write(&path, &whole[..cut as usize]).unwrap();
            let mut file = open_rw(&path);
            let scan = scan_frames(&mut file, 0).unwrap();
            assert!(scan.torn, "cut at {cut} not flagged as torn");
            assert_eq!(scan.frames.len(), 1, "cut at {cut}");
            assert_eq!(scan.frames[0].payload, b"first-record");
            assert_eq!(scan.valid_len, first_len);
        }
    }

    #[test]
    fn corrupt_byte_stops_scan() {
        let dir = TestDir::new("corrupt-byte");
        let path = dir.path().join("f.log");
        let mut whole = Vec::new();
        encode_frame_into(&mut whole, b"aaaa");
        encode_frame_into(&mut whole, b"bbbb");
        // Flip a payload byte of the first frame: nothing survives.
        whole[9] ^= 0x40;
        std::fs::write(&path, &whole).unwrap();
        let mut file = open_rw(&path);
        let scan = scan_frames(&mut file, 0).unwrap();
        assert!(scan.torn);
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn truncate_repairs_file() {
        let dir = TestDir::new("truncate-repairs");
        let path = dir.path().join("f.log");
        let mut file = open_rw(&path);
        append_bytes(&mut file, &encode_frame(b"keep")).unwrap();
        let keep_len = file.metadata().unwrap().len();
        append_bytes(&mut file, &[0xFF; 5]).unwrap(); // torn garbage
        let scan = scan_frames(&mut file, 0).unwrap();
        assert!(scan.torn);
        truncate_to(&mut file, scan.valid_len).unwrap();
        assert_eq!(file.metadata().unwrap().len(), keep_len);
        // A fresh append after repair scans clean.
        append_bytes(&mut file, &encode_frame(b"new")).unwrap();
        let scan = scan_frames(&mut file, 0).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.frames.len(), 2);
    }
}

//! The write-ahead log: group-committed, CRC-framed state mutations,
//! split across rotating segment files.
//!
//! A [`Wal`] is an ordered sequence of append-only frame files
//! ([`crate::record`]) named `<base>.000000`, `<base>.000001`, … Writers
//! call [`Wal::append`] (one record) or [`Wal::append_batch`] (group
//! commit: many records encoded into one buffer, written with a single
//! syscall and at most one fsync). When the active segment would grow past
//! the configured byte threshold it is sealed (fsynced) and a fresh
//! segment opened — a batch never straddles two segments, so recovery can
//! replay segments strictly in index order. Durability is governed by
//! [`FsyncPolicy`]:
//!
//! * `Always` — fsync after every append/batch: nothing acknowledged is
//!   ever lost, at the cost of one disk flush per commit.
//! * `EveryN(n)` — fsync once every `n` records: a crash loses at most the
//!   last `n` records, which recovery repairs by truncating the torn tail
//!   and replaying the surviving prefix (blocks re-derive the rest).
//! * `Never` — leave flushing to the OS: fastest, weakest.
//!
//! [`Wal::open`] replays existing segments in order, truncating a torn
//! tail in place and deleting any segments written after it. [`Wal::reset`]
//! (called once a checkpoint makes the log redundant) garbage-collects
//! every sealed segment and truncates the active one, so a multi-GB
//! history never accumulates on disk.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

use crate::record::{append_bytes, encode_frame_into, scan_frames, truncate_to};

/// When the log flushes its file to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append (and every batch).
    Always,
    /// fsync after every N appended records (clamped to at least 1).
    EveryN(u32),
    /// Never fsync; rely on the OS page cache.
    Never,
}

impl FsyncPolicy {
    /// A short stable label for reports and logs.
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::EveryN(n) => format!("every_{n}"),
            FsyncPolicy::Never => "never".to_string(),
        }
    }
}

/// The on-disk path of segment `index` of the log rooted at `base`.
///
/// `base` is the logical log path (e.g. `.../state.wal`); segment files
/// append a six-digit zero-padded index: `.../state.wal.000000`.
pub fn segment_path(base: &Path, index: u64) -> PathBuf {
    let name = base
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    base.with_file_name(format!("{name}.{index:06}"))
}

/// A sealed or active log segment: its index plus the end offset of each
/// record *within the segment* (record `i` spans
/// `record_ends[i-1]..record_ends[i]`), for record-boundary truncation.
#[derive(Debug)]
struct Segment {
    index: u64,
    record_ends: Vec<u64>,
}

impl Segment {
    fn len_bytes(&self) -> u64 {
        self.record_ends.last().copied().unwrap_or(0)
    }
}

/// An open write-ahead log (a chain of rotating segment files).
#[derive(Debug)]
pub struct Wal {
    /// Logical base path; segments live at `segment_path(base, i)`.
    base: PathBuf,
    policy: FsyncPolicy,
    /// Rotation threshold: seal the active segment once appending would
    /// push it past this many bytes. `u64::MAX` disables rotation.
    segment_bytes: u64,
    /// Sealed (read-only) segments in index order.
    sealed: Vec<Segment>,
    /// The active segment (always `index > sealed.last().index`).
    active: Segment,
    /// Open handle on the active segment's file.
    file: File,
    /// Records appended since the last fsync.
    unsynced: u32,
    fsyncs: u64,
    /// Sealed segments deleted over this handle's lifetime (by `reset` /
    /// `truncate_records`) — the compaction the checkpoint protocol buys.
    segments_gced: u64,
}

fn open_segment_file(path: &Path) -> io::Result<File> {
    OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
}

impl Wal {
    /// Open (or create) the log at `base` with rotation disabled — a
    /// single segment that grows without bound, the pre-rotation
    /// behaviour. See [`Wal::open_segmented`].
    pub fn open(base: impl Into<PathBuf>, policy: FsyncPolicy) -> io::Result<(Wal, Vec<Vec<u8>>)> {
        Wal::open_segmented(base, policy, u64::MAX)
    }

    /// Open (or create) the log at `base`, replaying existing segments in
    /// index order.
    ///
    /// Returns the log positioned at its end plus the surviving record
    /// payloads in append order. A torn tail is truncated away in place;
    /// any segment after a torn one (which can only exist if rotation and
    /// a crash interleaved) is deleted, since its records would follow the
    /// lost ones.
    pub fn open_segmented(
        base: impl Into<PathBuf>,
        policy: FsyncPolicy,
        segment_bytes: u64,
    ) -> io::Result<(Wal, Vec<Vec<u8>>)> {
        let base = base.into();
        let mut indices = existing_segment_indices(&base)?;
        indices.sort_unstable();
        if indices.is_empty() {
            indices.push(0);
        }
        let mut payloads = Vec::new();
        let mut segments: Vec<Segment> = Vec::with_capacity(indices.len());
        let mut file = None;
        let mut torn_at: Option<usize> = None;
        for (pos, &index) in indices.iter().enumerate() {
            if pos > 0 && index != indices[pos - 1] + 1 {
                // A gap in the numbering: everything after it was written
                // later than records we no longer have. Drop it.
                torn_at = Some(pos);
                break;
            }
            let path = segment_path(&base, index);
            let mut f = open_segment_file(&path)?;
            let scan = scan_frames(&mut f, 0)?;
            if scan.torn {
                truncate_to(&mut f, scan.valid_len)?;
            }
            let mut record_ends = Vec::with_capacity(scan.frames.len());
            for frame in scan.frames {
                record_ends.push(
                    frame.offset + crate::record::FRAME_HEADER_BYTES + frame.payload.len() as u64,
                );
                payloads.push(frame.payload);
            }
            segments.push(Segment { index, record_ends });
            file = Some(f);
            if scan.torn {
                torn_at = Some(pos + 1);
                break;
            }
        }
        if let Some(from) = torn_at {
            for &index in &indices[from..] {
                let _ = std::fs::remove_file(segment_path(&base, index));
            }
        }
        let active = segments.pop().expect("at least one segment");
        let file = file.expect("active segment file");
        Ok((
            Wal {
                base,
                policy,
                segment_bytes: segment_bytes.max(1),
                sealed: segments,
                active,
                file,
                unsynced: 0,
                fsyncs: 0,
                segments_gced: 0,
            },
            payloads,
        ))
    }

    /// The log's logical base path (segment files add a numeric suffix).
    pub fn path(&self) -> &Path {
        &self.base
    }

    /// The path of the segment currently being appended to.
    pub fn active_segment_path(&self) -> PathBuf {
        segment_path(&self.base, self.active.index)
    }

    /// Paths of every live segment, oldest first.
    pub fn segment_paths(&self) -> Vec<PathBuf> {
        self.sealed
            .iter()
            .chain(std::iter::once(&self.active))
            .map(|s| segment_path(&self.base, s.index))
            .collect()
    }

    /// Number of live segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Sealed segments deleted by compaction over this handle's lifetime.
    pub fn segments_gced(&self) -> u64 {
        self.segments_gced
    }

    /// Append one record and apply the fsync policy.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        self.append_batch(&[payload])
    }

    /// Group commit: append every payload as its own record, written with a
    /// single syscall and at most one fsync. The whole batch lands in one
    /// segment; if it would overflow the active segment, the segment is
    /// sealed (fsynced) first and a fresh one opened.
    pub fn append_batch(&mut self, payloads: &[&[u8]]) -> io::Result<()> {
        if payloads.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        let mut ends = Vec::with_capacity(payloads.len());
        for payload in payloads {
            encode_frame_into(&mut buf, payload);
            ends.push(buf.len() as u64);
        }
        let base_len = self.active.len_bytes();
        if base_len > 0 && base_len + buf.len() as u64 > self.segment_bytes {
            self.rotate()?;
        }
        let base_len = self.active.len_bytes();
        append_bytes(&mut self.file, &buf)?;
        self.active
            .record_ends
            .extend(ends.into_iter().map(|e| base_len + e));
        self.unsynced = self.unsynced.saturating_add(payloads.len() as u32);
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Seal the active segment (fsync it so nothing sealed is ever torn)
    /// and open the next one.
    fn rotate(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.unsynced = 0;
        let next = self.active.index + 1;
        let mut file = open_segment_file(&segment_path(&self.base, next))?;
        truncate_to(&mut file, 0)?; // defensive: clobber any stale leftover
        let old = std::mem::replace(
            &mut self.active,
            Segment {
                index: next,
                record_ends: Vec::new(),
            },
        );
        self.sealed.push(old);
        self.file = file;
        Ok(())
    }

    /// Flush the active segment to stable storage now, regardless of
    /// policy. (Sealed segments were flushed when they were sealed.)
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.unsynced = 0;
        Ok(())
    }

    /// Truncate the log to its first `keep` records (dropping records the
    /// block store never caught up to), deleting any segments that become
    /// entirely dead.
    pub fn truncate_records(&mut self, keep: usize) -> io::Result<()> {
        if keep >= self.record_count() {
            return Ok(());
        }
        // Find the segment holding the new boundary and the record count
        // to keep within it.
        let mut remaining = keep;
        let mut boundary: Option<(usize, usize)> = None; // (sealed pos or sealed.len() for active, local keep)
        for (pos, seg) in self
            .sealed
            .iter()
            .chain(std::iter::once(&self.active))
            .enumerate()
        {
            if remaining <= seg.record_ends.len() {
                boundary = Some((pos, remaining));
                break;
            }
            remaining -= seg.record_ends.len();
        }
        let (pos, local_keep) = boundary.expect("keep < record_count");
        // Delete every segment after the boundary segment.
        let total = self.sealed.len() + 1;
        for dead_pos in (pos + 1)..total {
            let index = if dead_pos < self.sealed.len() {
                self.sealed[dead_pos].index
            } else {
                self.active.index
            };
            std::fs::remove_file(segment_path(&self.base, index))?;
            self.segments_gced += 1;
        }
        // The boundary segment becomes the active one.
        if pos < self.sealed.len() {
            self.sealed.truncate(pos + 1);
            self.active = self.sealed.pop().expect("boundary segment");
            self.file = open_segment_file(&self.active_segment_path())?;
        }
        let len = if local_keep == 0 {
            0
        } else {
            self.active.record_ends[local_keep - 1]
        };
        truncate_to(&mut self.file, len)?;
        self.active.record_ends.truncate(local_keep);
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.unsynced = 0;
        Ok(())
    }

    /// Drop every record (after a checkpoint made them redundant): delete
    /// all sealed segments and truncate the active one to empty.
    pub fn reset(&mut self) -> io::Result<()> {
        for seg in self.sealed.drain(..) {
            std::fs::remove_file(segment_path(&self.base, seg.index))?;
            self.segments_gced += 1;
        }
        truncate_to(&mut self.file, 0)?;
        self.active.record_ends.clear();
        self.unsynced = 0;
        self.file.sync_data()?;
        self.fsyncs += 1;
        Ok(())
    }

    /// Number of live records across all segments.
    pub fn record_count(&self) -> usize {
        self.sealed
            .iter()
            .map(|s| s.record_ends.len())
            .sum::<usize>()
            + self.active.record_ends.len()
    }

    /// Current log size in bytes across all segments.
    pub fn len_bytes(&self) -> u64 {
        self.sealed.iter().map(|s| s.len_bytes()).sum::<u64>() + self.active.len_bytes()
    }

    /// Total fsyncs issued by this handle.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }
}

/// Indices of every existing segment file of the log rooted at `base`.
fn existing_segment_indices(base: &Path) -> io::Result<Vec<u64>> {
    let dir = match base.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    std::fs::create_dir_all(&dir)?;
    let prefix = format!(
        "{}.",
        base.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default()
    );
    let mut indices = Vec::new();
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(suffix) = name.strip_prefix(&prefix) {
            if suffix.len() == 6 {
                if let Ok(index) = suffix.parse::<u64>() {
                    indices.push(index);
                }
            }
        }
    }
    Ok(indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdir::TestDir;

    #[test]
    fn append_reopen_replay() {
        let dir = TestDir::new("wal-replay");
        let path = dir.path().join("wal.log");
        {
            let (mut wal, replay) = Wal::open(&path, FsyncPolicy::Always).unwrap();
            assert!(replay.is_empty());
            wal.append(b"one").unwrap();
            wal.append_batch(&[b"two", b"three"]).unwrap();
            assert_eq!(wal.record_count(), 3);
        }
        let (wal, replay) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(
            replay,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        assert_eq!(wal.record_count(), 3);
        assert_eq!(wal.segment_count(), 1);
    }

    #[test]
    fn torn_tail_truncated_on_open() {
        let dir = TestDir::new("wal-torn");
        let path = dir.path().join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
            wal.append(b"keep-me").unwrap();
        }
        // Simulate a crash mid-write: append half a frame by hand.
        let seg0 = segment_path(&path, 0);
        let full = std::fs::read(&seg0).unwrap();
        let mut torn = full.clone();
        torn.extend_from_slice(&crate::record::encode_frame(b"lost")[..5]);
        std::fs::write(&seg0, &torn).unwrap();

        let (wal, replay) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replay, vec![b"keep-me".to_vec()]);
        // The file itself was repaired.
        assert_eq!(std::fs::read(&seg0).unwrap(), full);
        assert_eq!(wal.len_bytes(), full.len() as u64);
    }

    #[test]
    fn every_n_policy_counts_records() {
        let dir = TestDir::new("wal-everyn");
        let path = dir.path().join("wal.log");
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::EveryN(3)).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        assert_eq!(wal.fsyncs(), 0);
        wal.append(b"c").unwrap();
        assert_eq!(wal.fsyncs(), 1);
        // A batch crossing the threshold syncs once.
        wal.append_batch(&[b"d", b"e", b"f", b"g"]).unwrap();
        assert_eq!(wal.fsyncs(), 2);
    }

    #[test]
    fn always_policy_syncs_each_batch() {
        let dir = TestDir::new("wal-always");
        let path = dir.path().join("wal.log");
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Always).unwrap();
        wal.append_batch(&[b"a", b"b", b"c"]).unwrap();
        assert_eq!(wal.fsyncs(), 1);
        wal.append(b"d").unwrap();
        assert_eq!(wal.fsyncs(), 2);
    }

    #[test]
    fn truncate_records_and_reset() {
        let dir = TestDir::new("wal-truncate");
        let path = dir.path().join("wal.log");
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        for payload in [&b"a"[..], b"bb", b"ccc", b"dddd"] {
            wal.append(payload).unwrap();
        }
        wal.truncate_records(2).unwrap();
        drop(wal);
        let (mut wal, replay) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replay, vec![b"a".to_vec(), b"bb".to_vec()]);
        wal.reset().unwrap();
        assert_eq!(wal.record_count(), 0);
        assert_eq!(wal.len_bytes(), 0);
        drop(wal);
        let (_, replay) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert!(replay.is_empty());
    }

    #[test]
    fn rotation_splits_segments_and_replays_in_order() {
        let dir = TestDir::new("wal-rotate");
        let path = dir.path().join("wal.log");
        let payloads: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; 20]).collect();
        {
            let (mut wal, _) = Wal::open_segmented(&path, FsyncPolicy::Never, 128).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
            assert!(wal.segment_count() > 2, "rotation must have triggered");
            // Every segment stays at or under the threshold (single records
            // here are far smaller than it).
            for sp in wal.segment_paths() {
                assert!(std::fs::metadata(&sp).unwrap().len() <= 128);
            }
        }
        let (wal, replay) = Wal::open_segmented(&path, FsyncPolicy::Never, 128).unwrap();
        assert_eq!(replay, payloads, "segments replay in append order");
        assert_eq!(wal.record_count(), payloads.len());
    }

    #[test]
    fn oversized_batch_gets_own_segment() {
        let dir = TestDir::new("wal-bigbatch");
        let path = dir.path().join("wal.log");
        let (mut wal, _) = Wal::open_segmented(&path, FsyncPolicy::Never, 64).unwrap();
        wal.append(b"small").unwrap();
        // Larger than a whole segment: sealed previous segment, then the
        // batch lands intact in a fresh one (never split).
        let big = vec![7u8; 200];
        wal.append(&big).unwrap();
        assert_eq!(wal.segment_count(), 2);
        drop(wal);
        let (_, replay) = Wal::open_segmented(&path, FsyncPolicy::Never, 64).unwrap();
        assert_eq!(replay, vec![b"small".to_vec(), big]);
    }

    #[test]
    fn torn_tail_in_earlier_segment_drops_later_segments() {
        let dir = TestDir::new("wal-torn-mid");
        let path = dir.path().join("wal.log");
        {
            let (mut wal, _) = Wal::open_segmented(&path, FsyncPolicy::Never, 64).unwrap();
            for i in 0..8u8 {
                wal.append(&[i; 24]).unwrap();
            }
            assert!(wal.segment_count() >= 3);
        }
        // Corrupt the tail of segment 0: everything after it must go.
        let seg0 = segment_path(&path, 0);
        let bytes = std::fs::read(&seg0).unwrap();
        std::fs::write(&seg0, &bytes[..bytes.len() - 3]).unwrap();

        let (wal, replay) = Wal::open_segmented(&path, FsyncPolicy::Never, 64).unwrap();
        assert_eq!(wal.segment_count(), 1);
        assert_eq!(
            replay,
            vec![vec![0u8; 24]],
            "only segment 0's intact prefix"
        );
        assert!(!segment_path(&path, 1).exists());
    }

    #[test]
    fn truncate_records_across_segments() {
        let dir = TestDir::new("wal-trunc-seg");
        let path = dir.path().join("wal.log");
        let payloads: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 24]).collect();
        let (mut wal, _) = Wal::open_segmented(&path, FsyncPolicy::Never, 64).unwrap();
        for p in &payloads {
            wal.append(p).unwrap();
        }
        let before = wal.segment_count();
        assert!(before >= 3);
        wal.truncate_records(3).unwrap();
        assert_eq!(wal.record_count(), 3);
        assert!(wal.segment_count() < before);
        assert!(wal.segments_gced() > 0);
        // Appends continue on the surviving tail segment.
        wal.append(b"after").unwrap();
        drop(wal);
        let (_, replay) = Wal::open_segmented(&path, FsyncPolicy::Never, 64).unwrap();
        let mut expect: Vec<Vec<u8>> = payloads[..3].to_vec();
        expect.push(b"after".to_vec());
        assert_eq!(replay, expect);
    }

    #[test]
    fn reset_garbage_collects_sealed_segments() {
        let dir = TestDir::new("wal-reset-gc");
        let path = dir.path().join("wal.log");
        let (mut wal, _) = Wal::open_segmented(&path, FsyncPolicy::Never, 64).unwrap();
        for i in 0..8u8 {
            wal.append(&[i; 24]).unwrap();
        }
        let sealed = wal.segment_count() - 1;
        assert!(sealed >= 2);
        wal.reset().unwrap();
        assert_eq!(wal.segment_count(), 1);
        assert_eq!(wal.segments_gced(), sealed as u64);
        assert_eq!(wal.record_count(), 0);
        // Only the (empty) active segment file remains on disk.
        let live: Vec<_> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("wal.log."))
            .collect();
        assert_eq!(live.len(), 1);
        // And the log keeps working after compaction.
        wal.append(b"fresh").unwrap();
        drop(wal);
        let (_, replay) = Wal::open_segmented(&path, FsyncPolicy::Never, 64).unwrap();
        assert_eq!(replay, vec![b"fresh".to_vec()]);
    }

    #[test]
    fn fsync_policy_labels() {
        assert_eq!(FsyncPolicy::Always.label(), "always");
        assert_eq!(FsyncPolicy::EveryN(8).label(), "every_8");
        assert_eq!(FsyncPolicy::Never.label(), "never");
    }
}

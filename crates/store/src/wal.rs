//! The write-ahead log: group-committed, CRC-framed state mutations.
//!
//! A [`Wal`] is an append-only frame file ([`crate::record`]). Writers call
//! [`Wal::append`] (one record) or [`Wal::append_batch`] (group commit:
//! many records encoded into one buffer, written with a single syscall and
//! at most one fsync). Durability is governed by [`FsyncPolicy`]:
//!
//! * `Always` — fsync after every append/batch: nothing acknowledged is
//!   ever lost, at the cost of one disk flush per commit.
//! * `EveryN(n)` — fsync once every `n` records: a crash loses at most the
//!   last `n` records, which recovery repairs by truncating the torn tail
//!   and replaying the surviving prefix (blocks re-derive the rest).
//! * `Never` — leave flushing to the OS: fastest, weakest.
//!
//! [`Wal::open`] replays existing records, truncating a torn tail in place.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

use crate::record::{append_bytes, encode_frame_into, scan_frames, truncate_to};

/// When the log flushes its file to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append (and every batch).
    Always,
    /// fsync after every N appended records (clamped to at least 1).
    EveryN(u32),
    /// Never fsync; rely on the OS page cache.
    Never,
}

impl FsyncPolicy {
    /// A short stable label for reports and logs.
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::EveryN(n) => format!("every_{n}"),
            FsyncPolicy::Never => "never".to_string(),
        }
    }
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Records appended since the last fsync.
    unsynced: u32,
    /// End offset of each live record (record `i` spans
    /// `record_ends[i-1]..record_ends[i]`), for record-boundary truncation.
    record_ends: Vec<u64>,
    fsyncs: u64,
}

impl Wal {
    /// Open (or create) the log at `path`, replaying existing records.
    ///
    /// Returns the log positioned at its end plus the surviving record
    /// payloads in append order. A torn tail is truncated away in place.
    pub fn open(path: impl Into<PathBuf>, policy: FsyncPolicy) -> io::Result<(Wal, Vec<Vec<u8>>)> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let scan = scan_frames(&mut file, 0)?;
        if scan.torn {
            truncate_to(&mut file, scan.valid_len)?;
        }
        let mut record_ends = Vec::with_capacity(scan.frames.len());
        let mut payloads = Vec::with_capacity(scan.frames.len());
        for frame in scan.frames {
            record_ends.push(
                frame.offset + crate::record::FRAME_HEADER_BYTES + frame.payload.len() as u64,
            );
            payloads.push(frame.payload);
        }
        debug_assert_eq!(record_ends.last().copied().unwrap_or(0), scan.valid_len);
        let wal = Wal {
            file,
            path,
            policy,
            unsynced: 0,
            record_ends,
            fsyncs: 0,
        };
        Ok((wal, payloads))
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record and apply the fsync policy.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        self.append_batch(&[payload])
    }

    /// Group commit: append every payload as its own record, written with a
    /// single syscall and at most one fsync.
    pub fn append_batch(&mut self, payloads: &[&[u8]]) -> io::Result<()> {
        if payloads.is_empty() {
            return Ok(());
        }
        let base = self.len_bytes();
        let mut buf = Vec::new();
        for payload in payloads {
            encode_frame_into(&mut buf, payload);
            self.record_ends.push(base + buf.len() as u64);
        }
        append_bytes(&mut self.file, &buf)?;
        self.unsynced = self.unsynced.saturating_add(payloads.len() as u32);
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Flush the log to stable storage now, regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.unsynced = 0;
        Ok(())
    }

    /// Truncate the log to its first `keep` records (dropping records the
    /// block store never caught up to).
    pub fn truncate_records(&mut self, keep: usize) -> io::Result<()> {
        if keep >= self.record_ends.len() {
            return Ok(());
        }
        let len = if keep == 0 {
            0
        } else {
            self.record_ends[keep - 1]
        };
        truncate_to(&mut self.file, len)?;
        self.record_ends.truncate(keep);
        self.file.sync_data()?;
        self.fsyncs += 1;
        Ok(())
    }

    /// Drop every record (after a checkpoint made them redundant).
    pub fn reset(&mut self) -> io::Result<()> {
        truncate_to(&mut self.file, 0)?;
        self.record_ends.clear();
        self.unsynced = 0;
        self.file.sync_data()?;
        self.fsyncs += 1;
        Ok(())
    }

    /// Number of live records.
    pub fn record_count(&self) -> usize {
        self.record_ends.len()
    }

    /// Current log size in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.record_ends.last().copied().unwrap_or(0)
    }

    /// Total fsyncs issued by this handle.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdir::TestDir;

    #[test]
    fn append_reopen_replay() {
        let dir = TestDir::new("wal-replay");
        let path = dir.path().join("wal.log");
        {
            let (mut wal, replay) = Wal::open(&path, FsyncPolicy::Always).unwrap();
            assert!(replay.is_empty());
            wal.append(b"one").unwrap();
            wal.append_batch(&[b"two", b"three"]).unwrap();
            assert_eq!(wal.record_count(), 3);
        }
        let (wal, replay) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(
            replay,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        assert_eq!(wal.record_count(), 3);
    }

    #[test]
    fn torn_tail_truncated_on_open() {
        let dir = TestDir::new("wal-torn");
        let path = dir.path().join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
            wal.append(b"keep-me").unwrap();
        }
        // Simulate a crash mid-write: append half a frame by hand.
        let full = std::fs::read(&path).unwrap();
        let mut torn = full.clone();
        torn.extend_from_slice(&crate::record::encode_frame(b"lost")[..5]);
        std::fs::write(&path, &torn).unwrap();

        let (wal, replay) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replay, vec![b"keep-me".to_vec()]);
        // The file itself was repaired.
        assert_eq!(std::fs::read(&path).unwrap(), full);
        assert_eq!(wal.len_bytes(), full.len() as u64);
    }

    #[test]
    fn every_n_policy_counts_records() {
        let dir = TestDir::new("wal-everyn");
        let path = dir.path().join("wal.log");
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::EveryN(3)).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        assert_eq!(wal.fsyncs(), 0);
        wal.append(b"c").unwrap();
        assert_eq!(wal.fsyncs(), 1);
        // A batch crossing the threshold syncs once.
        wal.append_batch(&[b"d", b"e", b"f", b"g"]).unwrap();
        assert_eq!(wal.fsyncs(), 2);
    }

    #[test]
    fn always_policy_syncs_each_batch() {
        let dir = TestDir::new("wal-always");
        let path = dir.path().join("wal.log");
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Always).unwrap();
        wal.append_batch(&[b"a", b"b", b"c"]).unwrap();
        assert_eq!(wal.fsyncs(), 1);
        wal.append(b"d").unwrap();
        assert_eq!(wal.fsyncs(), 2);
    }

    #[test]
    fn truncate_records_and_reset() {
        let dir = TestDir::new("wal-truncate");
        let path = dir.path().join("wal.log");
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        for payload in [&b"a"[..], b"bb", b"ccc", b"dddd"] {
            wal.append(payload).unwrap();
        }
        wal.truncate_records(2).unwrap();
        drop(wal);
        let (mut wal, replay) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replay, vec![b"a".to_vec(), b"bb".to_vec()]);
        wal.reset().unwrap();
        assert_eq!(wal.record_count(), 0);
        assert_eq!(wal.len_bytes(), 0);
        drop(wal);
        let (_, replay) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert!(replay.is_empty());
    }

    #[test]
    fn fsync_policy_labels() {
        assert_eq!(FsyncPolicy::Always.label(), "always");
        assert_eq!(FsyncPolicy::EveryN(8).label(), "every_8");
        assert_eq!(FsyncPolicy::Never.label(), "never");
    }
}

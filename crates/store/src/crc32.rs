//! CRC-32 (IEEE 802.3 polynomial, reflected) — the record checksum used by
//! every on-disk frame in this crate.
//!
//! Implemented from scratch (the build environment is offline) with the
//! slicing-by-8 technique: eight 256-entry lookup tables generated at
//! compile time from the reversed polynomial `0xEDB88320`, consuming eight
//! input bytes per iteration with independent table lookups instead of a
//! serial one-lookup-per-byte dependency chain. Same checksum LevelDB and
//! Fabric's block files use for record integrity (they mask it; we don't,
//! since our frames never store a CRC of a CRC).

/// Eight lookup tables: `TABLES[0]` is the classic byte-at-a-time table,
/// `TABLES[k]` advances a byte through `k` additional zero bytes.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// CRC-32 of `data` (IEEE, reflected, init `!0`, final xor `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        crc ^= u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        crc = TABLES[7][(crc & 0xFF) as usize]
            ^ TABLES[6][((crc >> 8) & 0xFF) as usize]
            ^ TABLES[5][((crc >> 16) & 0xFF) as usize]
            ^ TABLES[4][(crc >> 24) as usize]
            ^ TABLES[3][c[4] as usize]
            ^ TABLES[2][c[5] as usize]
            ^ TABLES[1][c[6] as usize]
            ^ TABLES[0][c[7] as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_every_byte() {
        let base = crc32(b"hello world");
        for i in 0..11 {
            let mut tampered = b"hello world".to_vec();
            tampered[i] ^= 1;
            assert_ne!(crc32(&tampered), base, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn sliced_matches_byte_at_a_time_on_all_lengths() {
        // The slicing path only engages past 8 bytes; check every length
        // across the chunk boundary against the reference scalar loop.
        let data: Vec<u8> = (0..64u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();
        for len in 0..data.len() {
            let mut crc = !0u32;
            for &byte in &data[..len] {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ byte as u32) & 0xFF) as usize];
            }
            assert_eq!(crc32(&data[..len]), !crc, "mismatch at length {len}");
        }
    }
}

//! `fabric-store`: a durable storage substrate for the Fabric simulator.
//!
//! The crate is deliberately domain-agnostic — it moves *bytes*, not blocks
//! or transactions, so it sits below `fabric-sim` with no dependency cycle.
//! Four layers compose into a crash-safe ledger store:
//!
//! * [`record`] — length-prefixed, CRC32-checked frame files; torn-tail
//!   detection and truncation repair.
//! * [`wal`] — a write-ahead log with group commit and a configurable
//!   [`FsyncPolicy`] (`Always` / `EveryN` / `Never`).
//! * [`blockfile`] — the append-only block data file plus a sparse
//!   height → offset index for O(1) random block reads.
//! * [`checkpoint`] — atomic (tmp + fsync + rename) state snapshots that
//!   let the WAL be truncated (compaction).
//!
//! The write protocol the ledger layer follows for each committed block:
//!
//! ```text
//! 1. wal.append_batch(state mutations)     # durable intent, group commit
//! 2. blockfile.append(height, block bytes) # the block itself
//! 3. every `checkpoint_every_blocks`: sync both files, save a checkpoint,
//!    wal.reset()                           # compaction
//! ```
//!
//! Because step 1 precedes step 2, recovery can always rebuild the state of
//! every surviving block: replay the checkpoint, then the WAL prefix, then
//! re-derive any remaining writes from the blocks themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockfile;
pub mod checkpoint;
pub mod crc32;
pub mod record;
pub mod testdir;
pub mod wal;

pub use blockfile::BlockFile;
pub use checkpoint::{Checkpoint, CheckpointStore};
pub use wal::{FsyncPolicy, Wal};

use std::fmt;
use std::path::PathBuf;

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// On-disk data failed validation in a way truncation cannot repair
    /// (bad CRC inside a checkpoint, block-height discontinuities, …).
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "storage corruption: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Configuration for a durable ledger store.
///
/// ```
/// use fabric_store::{FsyncPolicy, StorageConfig};
///
/// let cfg = StorageConfig::new("/tmp/my-ledger")
///     .fsync(FsyncPolicy::Always)
///     .checkpoint_every(128);
/// assert_eq!(cfg.fsync, FsyncPolicy::Always);
/// assert_eq!(cfg.checkpoint_every_blocks, 128);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorageConfig {
    /// Directory holding the WAL, block files and checkpoints. Created on
    /// open if missing.
    pub dir: PathBuf,
    /// When the WAL flushes to stable storage.
    pub fsync: FsyncPolicy,
    /// Snapshot the state DB and truncate the WAL every this many blocks.
    pub checkpoint_every_blocks: u64,
    /// Sparse-index stride: one index entry per this many blocks. Reads
    /// skip at most `index_every - 1` frame headers.
    pub index_every: u64,
    /// WAL segment rotation threshold in bytes: the active segment is
    /// sealed and a fresh one opened once appending would push it past
    /// this size. Sealed segments are garbage-collected at the next
    /// checkpoint, bounding disk use for multi-GB logs.
    pub wal_segment_bytes: u64,
}

impl StorageConfig {
    /// Defaults: `EveryN(512)` fsync (group commit spanning several
    /// 100-tx blocks — a smaller stride would force one fsync per block,
    /// defeating group commit), checkpoint every 256 blocks, index
    /// stride 16, 64 MiB WAL segments.
    pub fn new(dir: impl Into<PathBuf>) -> StorageConfig {
        StorageConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryN(512),
            checkpoint_every_blocks: 256,
            index_every: 16,
            wal_segment_bytes: 64 * 1024 * 1024,
        }
    }

    /// Set the WAL fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> StorageConfig {
        self.fsync = policy;
        self
    }

    /// Set the checkpoint/compaction interval in blocks (clamped to ≥ 1).
    pub fn checkpoint_every(mut self, blocks: u64) -> StorageConfig {
        self.checkpoint_every_blocks = blocks.max(1);
        self
    }

    /// Set the sparse-index stride in blocks (clamped to ≥ 1).
    pub fn index_every(mut self, blocks: u64) -> StorageConfig {
        self.index_every = blocks.max(1);
        self
    }

    /// Set the WAL segment rotation threshold in bytes (clamped to ≥ 1).
    pub fn wal_segment_bytes(mut self, bytes: u64) -> StorageConfig {
        self.wal_segment_bytes = bytes.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_builders() {
        let cfg = StorageConfig::new("/x");
        assert_eq!(cfg.dir, PathBuf::from("/x"));
        assert_eq!(cfg.fsync, FsyncPolicy::EveryN(512));
        assert_eq!(cfg.checkpoint_every_blocks, 256);
        assert_eq!(cfg.index_every, 16);
        assert_eq!(cfg.wal_segment_bytes, 64 * 1024 * 1024);

        let cfg = cfg
            .fsync(FsyncPolicy::Never)
            .checkpoint_every(0)
            .index_every(0)
            .wal_segment_bytes(0);
        assert_eq!(cfg.fsync, FsyncPolicy::Never);
        assert_eq!(cfg.checkpoint_every_blocks, 1, "clamped to at least 1");
        assert_eq!(cfg.index_every, 1, "clamped to at least 1");
        assert_eq!(cfg.wal_segment_bytes, 1, "clamped to at least 1");
    }

    #[test]
    fn error_display_and_source() {
        let io = StoreError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(std::error::Error::source(&io).is_some());
        let corrupt = StoreError::Corrupt("bad crc".into());
        assert!(corrupt.to_string().contains("bad crc"));
        assert!(std::error::Error::source(&corrupt).is_none());
    }
}

//! Scratch directories for tests, benchmarks and examples.
//!
//! The offline build has no `tempfile` crate, so this tiny helper creates a
//! uniquely-named directory under the system temp dir and removes it on
//! drop. Uniqueness comes from the process id plus a process-wide counter,
//! so parallel test threads never collide.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// A scratch directory removed (best-effort) when dropped.
#[derive(Debug)]
pub struct TestDir {
    path: PathBuf,
}

impl TestDir {
    /// Create `.../{prefix}-{pid}-{n}` under the system temp directory.
    pub fn new(prefix: &str) -> TestDir {
        let n = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("fabric-store-{prefix}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create scratch dir");
        TestDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_and_cleaned_up() {
        let a = TestDir::new("t");
        let b = TestDir::new("t");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().is_dir());
    }
}

//! The append-only block file store with a sparse height → offset index.
//!
//! Blocks are opaque byte strings appended as CRC frames to `blocks.dat`;
//! each frame payload is `[height: u64 LE][block bytes]`, so a frame is
//! self-describing even if the index is lost. Every `index_every`-th block
//! also appends a tiny `[height, offset]` frame to `blocks.idx` — a
//! **sparse index** in the LevelDB sense: a random read seeks to the nearest
//! indexed offset at or below the target height and skips forward at most
//! `index_every - 1` frame headers, so reads are O(1) for a constant
//! stride and reopening only rescans the un-indexed tail of the data file.
//!
//! On open, a torn tail (crash mid-append) is truncated from the data file
//! and the index is rewritten to match; a missing or inconsistent index
//! degrades to a full data-file scan, never to an error.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use crate::record::{
    append_bytes, encode_frame, encode_frame_into, scan_frames, truncate_to, FRAME_HEADER_BYTES,
};
use crate::{crc32::crc32, StoreError};

/// File name of the block data file inside a storage directory.
pub const BLOCKS_DATA_FILE: &str = "blocks.dat";
/// File name of the sparse block index.
pub const BLOCKS_INDEX_FILE: &str = "blocks.idx";

/// An open block file store.
///
/// A store normally begins at height 0, but a *pruned* store — created
/// when a peer bootstraps from a shipped snapshot instead of replaying
/// history — begins at a non-zero `base`: the snapshot height. Frames are
/// self-describing, so the base is recovered from the first frame on
/// reopen; an empty store takes the caller's hint.
#[derive(Debug)]
pub struct BlockFile {
    data: File,
    index: File,
    /// Sparse `(height, offset)` entries, ascending, one per
    /// `index_every` blocks starting at the base height.
    sparse: Vec<(u64, u64)>,
    index_every: u64,
    /// Height of the first stored block (0 unless the store is pruned).
    base: u64,
    height: u64,
    data_len: u64,
    fsyncs: u64,
}

fn open_rw(path: &Path) -> std::io::Result<File> {
    OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
}

impl BlockFile {
    /// Open (or create) the block store inside `dir`, repairing a torn
    /// tail. `index_every` is the sparse-index stride (clamped to ≥ 1).
    /// The store's base height must be 0 (see [`BlockFile::open_at`]).
    pub fn open(dir: &Path, index_every: u64) -> Result<BlockFile, StoreError> {
        BlockFile::open_at(dir, index_every, 0)
    }

    /// Open (or create) a block store whose first block sits at
    /// `base_hint` instead of 0 — the pruned layout a snapshot-bootstrapped
    /// peer uses. A non-empty store derives its base from the first frame
    /// (frames are self-describing); the hint only seeds an empty one.
    pub fn open_at(dir: &Path, index_every: u64, base_hint: u64) -> Result<BlockFile, StoreError> {
        let index_every = index_every.max(1);
        let mut data = open_rw(&dir.join(BLOCKS_DATA_FILE))?;
        let mut index = open_rw(&dir.join(BLOCKS_INDEX_FILE))?;
        let data_len = data.seek(SeekFrom::End(0))?;
        let base = Self::frame_height_at(&mut data, 0, data_len)?.unwrap_or(base_hint);

        // Load the sparse index: 16-byte frames of (height, offset), kept
        // only while heights step by `index_every` from the base and
        // offsets stay inside the data file.
        let idx_scan = scan_frames(&mut index, 0)?;
        let mut sparse: Vec<(u64, u64)> = Vec::new();
        for frame in &idx_scan.frames {
            if frame.payload.len() != 16 {
                break;
            }
            let h = u64::from_le_bytes(frame.payload[..8].try_into().unwrap());
            let off = u64::from_le_bytes(frame.payload[8..].try_into().unwrap());
            if h != base + sparse.len() as u64 * index_every || off >= data_len {
                break;
            }
            if let Some(&(_, prev_off)) = sparse.last() {
                if off <= prev_off {
                    break;
                }
            }
            sparse.push((h, off));
        }

        // Find the deepest trustworthy sparse entry: the frame at its
        // offset must decode to its height. Fall back toward a full scan.
        let mut start = (base, 0u64); // (height, offset) to scan from
        while let Some(&(h, off)) = sparse.last() {
            if Self::frame_height_at(&mut data, off, data_len)? == Some(h) {
                start = (h, off);
                break;
            }
            sparse.pop();
        }

        // Scan the data file from the trusted point: establish the height,
        // repair a torn tail, and complete the sparse entries.
        let scan = scan_frames(&mut data, start.1)?;
        if scan.torn {
            truncate_to(&mut data, scan.valid_len)?;
        }
        let mut height = start.0;
        let mut store = BlockFile {
            data,
            index,
            sparse: Vec::new(),
            index_every,
            base,
            height: 0,
            data_len: scan.valid_len,
            fsyncs: 0,
        };
        // Keep index entries strictly before the rescanned range; the scan
        // below re-adds the entries it covers (including `start` itself).
        let mut sparse_ok: Vec<(u64, u64)> = sparse;
        sparse_ok.retain(|&(h, _)| h < start.0);
        for frame in &scan.frames {
            if frame.payload.len() < 8 {
                return Err(StoreError::Corrupt(format!(
                    "block frame at offset {} too short",
                    frame.offset
                )));
            }
            let h = u64::from_le_bytes(frame.payload[..8].try_into().unwrap());
            if h != height {
                return Err(StoreError::Corrupt(format!(
                    "block file discontinuity: expected height {height}, found {h}"
                )));
            }
            if (h - base).is_multiple_of(index_every) {
                sparse_ok.push((h, frame.offset));
            }
            height += 1;
        }
        store.height = height;
        store.sparse = sparse_ok;
        store.rewrite_index()?;
        Ok(store)
    }

    /// Decode the height stored in the frame at `off`, or `None` if there is
    /// no valid frame there.
    fn frame_height_at(data: &mut File, off: u64, data_len: u64) -> std::io::Result<Option<u64>> {
        if off + FRAME_HEADER_BYTES + 8 > data_len {
            return Ok(None);
        }
        data.seek(SeekFrom::Start(off))?;
        let mut header = [0u8; 8];
        data.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as u64;
        let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
        if len < 8 || off + FRAME_HEADER_BYTES + len > data_len {
            return Ok(None);
        }
        let mut payload = vec![0u8; len as usize];
        data.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            return Ok(None);
        }
        Ok(Some(u64::from_le_bytes(payload[..8].try_into().unwrap())))
    }

    /// Persist the in-memory sparse index (cheap: one tiny frame per
    /// `index_every` blocks; never fsynced — it is a rebuildable cache).
    fn rewrite_index(&mut self) -> std::io::Result<()> {
        truncate_to(&mut self.index, 0)?;
        let mut buf = Vec::with_capacity(self.sparse.len() * 24);
        for &(h, off) in &self.sparse {
            let mut payload = [0u8; 16];
            payload[..8].copy_from_slice(&h.to_le_bytes());
            payload[8..].copy_from_slice(&off.to_le_bytes());
            encode_frame_into(&mut buf, &payload);
        }
        append_bytes(&mut self.index, &buf)
    }

    /// The next height to append (absolute: `base + stored blocks`).
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Height of the first stored block (0 unless the store is pruned).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Data file size in bytes.
    pub fn data_len(&self) -> u64 {
        self.data_len
    }

    /// Append a block's bytes at `height` (must equal [`BlockFile::height`]).
    /// When `sync` is set the data file is fsynced after the write.
    pub fn append(&mut self, height: u64, block: &[u8], sync: bool) -> Result<(), StoreError> {
        if height != self.height {
            return Err(StoreError::Corrupt(format!(
                "append out of order: expected height {}, got {height}",
                self.height
            )));
        }
        let mut payload = Vec::with_capacity(8 + block.len());
        payload.extend_from_slice(&height.to_le_bytes());
        payload.extend_from_slice(block);
        let frame = encode_frame(&payload);
        self.data.seek(SeekFrom::Start(self.data_len))?;
        append_bytes(&mut self.data, &frame)?;
        if (height - self.base).is_multiple_of(self.index_every) {
            self.sparse.push((height, self.data_len));
            let mut idx_payload = [0u8; 16];
            idx_payload[..8].copy_from_slice(&height.to_le_bytes());
            idx_payload[8..].copy_from_slice(&self.data_len.to_le_bytes());
            append_bytes(&mut self.index, &encode_frame(&idx_payload))?;
        }
        self.data_len += frame.len() as u64;
        self.height += 1;
        if sync {
            self.sync()?;
        }
        Ok(())
    }

    /// fsync the data file.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.data.sync_data()?;
        self.fsyncs += 1;
        Ok(())
    }

    /// Total fsyncs issued by this handle.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Read the block bytes stored at `height`.
    ///
    /// Seeks to the nearest sparse-index entry at or below `height` and
    /// skips forward over at most `index_every - 1` frame headers.
    pub fn read(&mut self, height: u64) -> Result<Vec<u8>, StoreError> {
        if height < self.base || height >= self.height {
            return Err(StoreError::Corrupt(format!(
                "block {height} out of range (base {}, height {})",
                self.base, self.height
            )));
        }
        let slot = match self.sparse.binary_search_by_key(&height, |&(h, _)| h) {
            Ok(i) => i,
            Err(0) => {
                return Err(StoreError::Corrupt(format!(
                    "sparse index missing entry at or below height {height}"
                )))
            }
            Err(i) => i - 1,
        };
        let (mut at_height, mut offset) = self.sparse[slot];
        // Skip whole frames (header read + seek) until the target.
        while at_height < height {
            self.data.seek(SeekFrom::Start(offset))?;
            let mut header = [0u8; 8];
            self.data.read_exact(&mut header)?;
            let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as u64;
            offset += FRAME_HEADER_BYTES + len;
            at_height += 1;
        }
        self.data.seek(SeekFrom::Start(offset))?;
        let mut header = [0u8; 8];
        self.data.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
        let mut payload = vec![0u8; len];
        self.data.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            return Err(StoreError::Corrupt(format!(
                "block {height}: CRC mismatch at offset {offset}"
            )));
        }
        let stored = u64::from_le_bytes(
            payload
                .get(..8)
                .ok_or_else(|| StoreError::Corrupt(format!("block {height}: frame too short")))?
                .try_into()
                .unwrap(),
        );
        if stored != height {
            return Err(StoreError::Corrupt(format!(
                "block {height}: frame labelled {stored}"
            )));
        }
        Ok(payload.split_off(8))
    }

    /// Read every stored block in height order (the first is at `base`).
    pub fn read_all(&mut self) -> Result<Vec<Vec<u8>>, StoreError> {
        let scan = scan_frames(&mut self.data, 0)?;
        let mut out = Vec::with_capacity(scan.frames.len());
        for (i, frame) in scan.frames.into_iter().enumerate() {
            if frame.payload.len() < 8 {
                return Err(StoreError::Corrupt(format!("block {i}: frame too short")));
            }
            let h = u64::from_le_bytes(frame.payload[..8].try_into().unwrap());
            let expect = self.base + i as u64;
            if h != expect {
                return Err(StoreError::Corrupt(format!(
                    "block file discontinuity: expected {expect}, found {h}"
                )));
            }
            let mut payload = frame.payload;
            out.push(payload.split_off(8));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdir::TestDir;

    fn block_bytes(i: u64) -> Vec<u8> {
        let mut b = vec![i as u8; (i as usize % 7) + 3];
        b.extend_from_slice(&i.to_le_bytes());
        b
    }

    #[test]
    fn append_read_reopen() {
        let dir = TestDir::new("bf-basic");
        {
            let mut bf = BlockFile::open(dir.path(), 4).unwrap();
            for i in 0..11 {
                bf.append(i, &block_bytes(i), false).unwrap();
            }
            assert_eq!(bf.height(), 11);
            for i in [0, 3, 4, 7, 10] {
                assert_eq!(bf.read(i).unwrap(), block_bytes(i), "height {i}");
            }
            assert!(bf.read(11).is_err());
        }
        // Reopen: sparse index makes the rescan short; contents identical.
        let mut bf = BlockFile::open(dir.path(), 4).unwrap();
        assert_eq!(bf.height(), 11);
        let all = bf.read_all().unwrap();
        assert_eq!(all.len(), 11);
        for (i, b) in all.iter().enumerate() {
            assert_eq!(b, &block_bytes(i as u64));
        }
    }

    #[test]
    fn out_of_order_append_rejected() {
        let dir = TestDir::new("bf-order");
        let mut bf = BlockFile::open(dir.path(), 4).unwrap();
        bf.append(0, b"b0", false).unwrap();
        assert!(bf.append(5, b"b5", false).is_err());
        assert!(bf.append(0, b"again", false).is_err());
    }

    #[test]
    fn torn_tail_truncated_and_index_repaired() {
        let dir = TestDir::new("bf-torn");
        {
            let mut bf = BlockFile::open(dir.path(), 2).unwrap();
            for i in 0..6 {
                bf.append(i, &block_bytes(i), false).unwrap();
            }
        }
        // Cut the data file mid-way through the last frame.
        let data_path = dir.path().join(BLOCKS_DATA_FILE);
        let bytes = std::fs::read(&data_path).unwrap();
        std::fs::write(&data_path, &bytes[..bytes.len() - 3]).unwrap();

        let mut bf = BlockFile::open(dir.path(), 2).unwrap();
        assert_eq!(bf.height(), 5, "torn block dropped");
        for i in 0..5 {
            assert_eq!(bf.read(i).unwrap(), block_bytes(i));
        }
        // Appending continues cleanly at the repaired height.
        bf.append(5, &block_bytes(5), false).unwrap();
        assert_eq!(bf.read(5).unwrap(), block_bytes(5));
    }

    #[test]
    fn missing_or_garbage_index_degrades_to_full_scan() {
        let dir = TestDir::new("bf-idx");
        {
            let mut bf = BlockFile::open(dir.path(), 3).unwrap();
            for i in 0..7 {
                bf.append(i, &block_bytes(i), false).unwrap();
            }
        }
        // Corrupt the index file entirely.
        std::fs::write(dir.path().join(BLOCKS_INDEX_FILE), b"not an index").unwrap();
        let mut bf = BlockFile::open(dir.path(), 3).unwrap();
        assert_eq!(bf.height(), 7);
        for i in 0..7 {
            assert_eq!(bf.read(i).unwrap(), block_bytes(i));
        }
        // Delete the index file: same outcome.
        drop(bf);
        std::fs::remove_file(dir.path().join(BLOCKS_INDEX_FILE)).unwrap();
        let mut bf = BlockFile::open(dir.path(), 3).unwrap();
        assert_eq!(bf.height(), 7);
        assert_eq!(bf.read(6).unwrap(), block_bytes(6));
    }

    #[test]
    fn truncation_below_index_entries_recovers() {
        let dir = TestDir::new("bf-deep-cut");
        {
            let mut bf = BlockFile::open(dir.path(), 2).unwrap();
            for i in 0..8 {
                bf.append(i, &block_bytes(i), false).unwrap();
            }
        }
        // Cut the data file roughly in half: several index entries now
        // point past EOF and must be discarded.
        let data_path = dir.path().join(BLOCKS_DATA_FILE);
        let bytes = std::fs::read(&data_path).unwrap();
        std::fs::write(&data_path, &bytes[..bytes.len() / 2]).unwrap();
        let mut bf = BlockFile::open(dir.path(), 2).unwrap();
        let h = bf.height();
        assert!(h < 8);
        for i in 0..h {
            assert_eq!(bf.read(i).unwrap(), block_bytes(i));
        }
    }

    #[test]
    fn pruned_store_starts_at_base() {
        let dir = TestDir::new("bf-pruned");
        {
            let mut bf = BlockFile::open_at(dir.path(), 3, 100).unwrap();
            assert_eq!(bf.base(), 100);
            assert_eq!(bf.height(), 100);
            assert!(bf.append(0, b"wrong", false).is_err());
            for i in 100..110 {
                bf.append(i, &block_bytes(i), false).unwrap();
            }
            assert_eq!(bf.height(), 110);
            assert!(bf.read(99).is_err(), "below base");
            for i in [100, 104, 109] {
                assert_eq!(bf.read(i).unwrap(), block_bytes(i));
            }
        }
        // Reopen with a *wrong* hint: the first frame wins.
        let mut bf = BlockFile::open_at(dir.path(), 3, 0).unwrap();
        assert_eq!(bf.base(), 100);
        assert_eq!(bf.height(), 110);
        let all = bf.read_all().unwrap();
        assert_eq!(all.len(), 10);
        for (i, b) in all.iter().enumerate() {
            assert_eq!(b, &block_bytes(100 + i as u64));
        }
        bf.append(110, &block_bytes(110), false).unwrap();
        assert_eq!(bf.read(110).unwrap(), block_bytes(110));
    }

    #[test]
    fn empty_store() {
        let dir = TestDir::new("bf-empty");
        let mut bf = BlockFile::open(dir.path(), 4).unwrap();
        assert_eq!(bf.height(), 0);
        assert!(bf.read(0).is_err());
        assert!(bf.read_all().unwrap().is_empty());
    }
}

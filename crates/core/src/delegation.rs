//! View-owner delegation (§4.2 / §5.3).
//!
//! "A view owner can be any user with access to all the information of the
//! view. Hence, a view can have many view owners." This module lets an
//! existing owner export a view's full owner-side state — definition, mode,
//! current `K_V`, member list, and the per-transaction records — sealed to
//! a co-owner's public key. The co-owner imports it into their own
//! [`crate::manager::ViewManager`] and can serve queries, grant, revoke and
//! maintain the view independently.
//!
//! The handoff itself can travel on-chain (it is sealed) or over any
//! secure channel; either way the chain remains the source of truth for
//! `V_access` generations, so owners that rotate `K_V` concurrently are
//! reconciled by comparing against the latest on-chain generation.

use fabric_sim::ledger::TxId;
use fabric_sim::wire::{Reader, Writer};
use ledgerview_crypto::keys::{EncryptionKeyPair, PublicKey};
use ledgerview_crypto::sha256::Digest;
use ledgerview_crypto::SymmetricKey;
use rand::RngCore;

use crate::error::ViewError;
use crate::manager::{AccessMode, SchemeKind, SecretScheme, ViewManager};
use crate::predicate::ViewDefinition;

/// The owner-side state of one view, in transferable form.
#[derive(Clone, Debug)]
pub struct OwnerState {
    /// View name.
    pub view: String,
    /// Which concealment scheme the records belong to.
    pub scheme: SchemeKind,
    /// Access mode.
    pub mode: AccessMode,
    /// The view definition.
    pub definition: ViewDefinition,
    /// Current view key `K_V`.
    pub key: SymmetricKey,
    /// Current members.
    pub members: Vec<PublicKey>,
    /// tid → record payload (`K_i` for encryption, secret for hash).
    pub records: Vec<(TxId, Vec<u8>)>,
    /// Next ViewStorage merge sequence number.
    pub merge_seq: u64,
}

impl OwnerState {
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.string(&self.view);
        w.u8(match self.scheme {
            SchemeKind::Encryption => 0,
            SchemeKind::Hash => 1,
        });
        w.u8(match self.mode {
            AccessMode::Revocable => 0,
            AccessMode::Irrevocable => 1,
        });
        w.bytes(&self.definition.to_bytes());
        w.array(self.key.as_bytes());
        w.u32(self.members.len() as u32);
        for m in &self.members {
            w.array(m.as_bytes());
        }
        w.u32(self.records.len() as u32);
        for (tid, payload) in &self.records {
            w.array(tid.0.as_bytes()).bytes(payload);
        }
        w.u64(self.merge_seq);
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<OwnerState, ViewError> {
        let mut r = Reader::new(bytes);
        let view = r.string().map_err(ViewError::Fabric)?;
        let scheme = match r.u8().map_err(ViewError::Fabric)? {
            0 => SchemeKind::Encryption,
            1 => SchemeKind::Hash,
            _ => return Err(ViewError::Malformed("bad scheme tag".into())),
        };
        let mode = match r.u8().map_err(ViewError::Fabric)? {
            0 => AccessMode::Revocable,
            1 => AccessMode::Irrevocable,
            _ => return Err(ViewError::Malformed("bad mode tag".into())),
        };
        let definition = ViewDefinition::from_bytes(&r.bytes().map_err(ViewError::Fabric)?)?;
        let key = SymmetricKey::from_bytes(r.array::<32>().map_err(ViewError::Fabric)?);
        let n_members = r.u32().map_err(ViewError::Fabric)? as usize;
        let mut members = Vec::with_capacity(n_members.min(1 << 16));
        for _ in 0..n_members {
            members.push(PublicKey(r.array::<32>().map_err(ViewError::Fabric)?));
        }
        let n_records = r.u32().map_err(ViewError::Fabric)? as usize;
        let mut records = Vec::with_capacity(n_records.min(1 << 20));
        for _ in 0..n_records {
            let tid = TxId(Digest(r.array::<32>().map_err(ViewError::Fabric)?));
            records.push((tid, r.bytes().map_err(ViewError::Fabric)?));
        }
        let merge_seq = r.u64().map_err(ViewError::Fabric)?;
        r.finish().map_err(ViewError::Fabric)?;
        Ok(OwnerState {
            view,
            scheme,
            mode,
            definition,
            key,
            members,
            records,
            merge_seq,
        })
    }
}

/// Export a view's owner state from `manager`, sealed to `co_owner`'s
/// public key.
pub fn export_view<S: SecretScheme, R: RngCore + ?Sized>(
    manager: &ViewManager<S>,
    view: &str,
    co_owner: &PublicKey,
    rng: &mut R,
) -> Result<Vec<u8>, ViewError> {
    let state = manager.export_owner_state(view)?;
    Ok(ledgerview_crypto::seal(co_owner, rng, &state.to_bytes()))
}

/// Import a sealed owner state into `manager`, becoming a co-owner of the
/// view. Fails if the manager's scheme does not match the exported state,
/// or if it already manages a view with that name.
pub fn import_view<S: SecretScheme>(
    manager: &mut ViewManager<S>,
    keypair: &EncryptionKeyPair,
    sealed: &[u8],
) -> Result<String, ViewError> {
    let bytes = ledgerview_crypto::open(keypair, sealed)?;
    let state = OwnerState::from_bytes(&bytes)?;
    if state.scheme != S::kind() {
        return Err(ViewError::ModeMismatch(format!(
            "exported state is {:?}, manager is {:?}",
            state.scheme,
            S::kind()
        )));
    }
    let name = state.view.clone();
    manager.import_owner_state(state)?;
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{EncryptionBasedManager, HashBasedManager};
    use crate::predicate::ViewPredicate;
    use crate::reader::ViewReader;
    use crate::testutil::test_chain;
    use crate::txmodel::{AttrValue, ClientTransaction};
    use ledgerview_crypto::rng::seeded;

    fn tx(i: i64) -> ClientTransaction {
        ClientTransaction::new(
            vec![("n", AttrValue::int(i)), ("to", AttrValue::str("W1"))],
            format!("secret-{i}").into_bytes(),
        )
    }

    #[test]
    fn co_owner_serves_queries_and_revokes() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(70);
        let mut mgr: HashBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        for i in 0..3 {
            mgr.invoke_with_secret(&mut chain, &client, &tx(i), &mut rng)
                .unwrap();
        }
        let bob_kp = EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, "V", bob_kp.public(), &mut rng)
            .unwrap();

        // Delegate to a co-owner.
        let co_owner_kp = EncryptionKeyPair::generate(&mut rng);
        let sealed = export_view(&mgr, "V", &co_owner_kp.public(), &mut rng).unwrap();
        let co_owner_identity = chain
            .enroll(
                &fabric_sim::identity::OrgId::new("Org1"),
                "co-owner",
                &mut rng,
            )
            .unwrap();
        let mut co_mgr: HashBasedManager = ViewManager::new(co_owner_identity, false);
        let imported = import_view(&mut co_mgr, &co_owner_kp, &sealed).unwrap();
        assert_eq!(imported, "V");
        assert_eq!(co_mgr.view_len("V").unwrap(), 3);
        assert_eq!(co_mgr.members("V").unwrap(), mgr.members("V").unwrap());

        // The co-owner answers Bob's query; Bob validates as usual.
        let mut bob = ViewReader::new(bob_kp);
        bob.obtain_view_key(&chain, "V").unwrap();
        let resp = co_mgr
            .query_view("V", &bob.public(), None, &mut rng)
            .unwrap();
        let revealed = bob.open_response(&chain, "V", &resp).unwrap();
        assert_eq!(revealed.len(), 3);

        // The co-owner can revoke: Bob loses access via the new on-chain
        // generation, and the ORIGINAL owner's key is now stale.
        co_mgr
            .revoke_access(&mut chain, "V", &bob.public(), &mut rng)
            .unwrap();
        assert!(bob.obtain_view_key(&chain, "V").is_err());
    }

    #[test]
    fn wrong_recipient_cannot_import() {
        let (mut chain, owner, _) = test_chain();
        let mut rng = seeded(71);
        let mut mgr: HashBasedManager = ViewManager::new(owner.clone(), false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        let intended = EncryptionKeyPair::generate(&mut rng);
        let eve = EncryptionKeyPair::generate(&mut rng);
        let sealed = export_view(&mgr, "V", &intended.public(), &mut rng).unwrap();
        let mut eve_mgr: HashBasedManager = ViewManager::new(owner, false);
        assert!(import_view(&mut eve_mgr, &eve, &sealed).is_err());
    }

    #[test]
    fn scheme_mismatch_rejected() {
        let (mut chain, owner, _) = test_chain();
        let mut rng = seeded(72);
        let mut mgr: HashBasedManager = ViewManager::new(owner.clone(), false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        let co = EncryptionKeyPair::generate(&mut rng);
        let sealed = export_view(&mgr, "V", &co.public(), &mut rng).unwrap();
        // Importing hash-scheme state into an encryption-based manager.
        let mut enc_mgr: EncryptionBasedManager = ViewManager::new(owner, false);
        assert!(matches!(
            import_view(&mut enc_mgr, &co, &sealed),
            Err(ViewError::ModeMismatch(_))
        ));
    }

    #[test]
    fn duplicate_view_rejected_on_import() {
        let (mut chain, owner, _) = test_chain();
        let mut rng = seeded(73);
        let mut mgr: HashBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        let co = EncryptionKeyPair::generate(&mut rng);
        let sealed = export_view(&mgr, "V", &co.public(), &mut rng).unwrap();
        // Importing into a manager that already owns "V" fails.
        assert!(matches!(
            import_view(&mut mgr, &co, &sealed),
            Err(ViewError::DuplicateView(_))
        ));
    }

    #[test]
    fn owner_state_round_trips() {
        let state = OwnerState {
            view: "V".into(),
            scheme: SchemeKind::Encryption,
            mode: AccessMode::Irrevocable,
            definition: ViewDefinition::PerTx(ViewPredicate::attr_eq("to", "W1")),
            key: SymmetricKey::from_bytes([9u8; 32]),
            members: vec![PublicKey([1u8; 32]), PublicKey([2u8; 32])],
            records: vec![(TxId(Digest([3u8; 32])), b"payload".to_vec())],
            merge_seq: 7,
        };
        let decoded = OwnerState::from_bytes(&state.to_bytes()).unwrap();
        assert_eq!(decoded.view, "V");
        assert_eq!(decoded.scheme, SchemeKind::Encryption);
        assert_eq!(decoded.mode, AccessMode::Irrevocable);
        assert_eq!(decoded.members, state.members);
        assert_eq!(decoded.records, state.records);
        assert_eq!(decoded.merge_seq, 7);
        assert!(OwnerState::from_bytes(&state.to_bytes()[..10]).is_err());
    }
}

//! The view-reader side (Bob in Fig 3).
//!
//! A reader obtains the view key `K_V` from the on-chain `V_access`
//! dissemination (or out of band), decrypts query responses from the view
//! owner, and *validates* everything against the blockchain — readers do
//! not trust view owners (§5.3: "view readers do not always trust view
//! owners").

use std::collections::BTreeMap;

use fabric_sim::ledger::TxId;
use fabric_sim::wire::Reader as WireReader;
use fabric_sim::FabricChain;
use ledgerview_crypto::aead;
use ledgerview_crypto::keys::EncryptionKeyPair;
use ledgerview_crypto::sha256::Digest;
use ledgerview_crypto::SymmetricKey;

use crate::contracts;
use crate::error::ViewError;
use crate::manager::{AccessMode, QueryResponse, SchemeKind};
use crate::txmodel::{Concealed, NonSecret, StoredTransaction};

/// A transaction as revealed to an authorized reader, with the material
/// needed to validate it against the chain.
#[derive(Clone, Debug)]
pub struct RevealedTx {
    /// Transaction id.
    pub tid: TxId,
    /// The visible attributes, as read from the ledger.
    pub non_secret: NonSecret,
    /// The revealed secret part.
    pub secret: Vec<u8>,
    /// The per-transaction key (encryption scheme only).
    pub tx_key: Option<SymmetricKey>,
}

/// Decoded response metadata + per-transaction payloads.
#[derive(Clone, Debug)]
pub struct DecodedResponse {
    /// Which concealment scheme produced the response.
    pub scheme: SchemeKind,
    /// The view's access mode.
    pub mode: AccessMode,
    /// Per transaction: the decrypted payload (`K_i` or the secret value).
    pub entries: Vec<(TxId, Vec<u8>)>,
}

/// A view reader bound to a decryption key pair (a user's own, or a role's
/// reconstructed pair, §4.6).
pub struct ViewReader {
    keypair: EncryptionKeyPair,
    /// View name → current `K_V` as known to this reader.
    view_keys: BTreeMap<String, SymmetricKey>,
}

impl ViewReader {
    /// A reader decrypting with `keypair`.
    pub fn new(keypair: EncryptionKeyPair) -> ViewReader {
        ViewReader {
            keypair,
            view_keys: BTreeMap::new(),
        }
    }

    /// The public key this reader is addressed by.
    pub fn public(&self) -> ledgerview_crypto::PublicKey {
        self.keypair.public()
    }

    /// Fetch the latest `V_access` generation from the chain and recover
    /// `K_V` for `view`. Fails if this reader is not among the recipients
    /// (revoked users find their entry gone after rotation).
    pub fn obtain_view_key(&mut self, chain: &FabricChain, view: &str) -> Result<(), ViewError> {
        let generation = contracts::read_access_generation(chain.state(), view)
            .ok_or_else(|| ViewError::UnknownView(view.to_string()))?;
        let entries = contracts::read_access_payload(chain.state(), view, generation)?;
        let me = self.keypair.public();
        let mine = entries.iter().find(|e| e.recipient == me).ok_or_else(|| {
            ViewError::AccessDenied(format!("no V_access entry for me in {view:?}"))
        })?;
        let key_bytes = ledgerview_crypto::open(&self.keypair, &mine.sealed_key)?;
        let arr: [u8; 32] = key_bytes
            .try_into()
            .map_err(|_| ViewError::Malformed("view key size".into()))?;
        self.view_keys
            .insert(view.to_string(), SymmetricKey::from_bytes(arr));
        Ok(())
    }

    /// Install a view key obtained out of band (secure channel, §4.1).
    pub fn install_view_key(&mut self, view: impl Into<String>, key: SymmetricKey) {
        self.view_keys.insert(view.into(), key);
    }

    /// The reader's current `K_V` for a view, if known.
    pub fn view_key(&self, view: &str) -> Option<&SymmetricKey> {
        self.view_keys.get(view)
    }

    /// Decrypt a [`QueryResponse`] from the view owner: open the outer
    /// seal with the reader's private key, then each entry with `K_V`.
    pub fn decode_response(
        &self,
        view: &str,
        response: &QueryResponse,
    ) -> Result<DecodedResponse, ViewError> {
        let kv = self
            .view_keys
            .get(view)
            .ok_or_else(|| ViewError::AccessDenied(format!("no K_V for {view:?}")))?;
        let outer = ledgerview_crypto::open(&self.keypair, &response.sealed)?;
        let mut r = WireReader::new(&outer);
        let scheme = match r.u8().map_err(ViewError::Fabric)? {
            0 => SchemeKind::Encryption,
            1 => SchemeKind::Hash,
            _ => return Err(ViewError::Malformed("bad scheme tag".into())),
        };
        let mode = match r.u8().map_err(ViewError::Fabric)? {
            0 => AccessMode::Revocable,
            1 => AccessMode::Irrevocable,
            _ => return Err(ViewError::Malformed("bad mode tag".into())),
        };
        let n = r.u32().map_err(ViewError::Fabric)? as usize;
        let mut entries = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let tid = TxId(Digest(r.array::<32>().map_err(ViewError::Fabric)?));
            let enc = r.bytes().map_err(ViewError::Fabric)?;
            let payload = aead::open_sym_aad(kv.as_bytes(), &enc, tid.0.as_bytes())?;
            entries.push((tid, payload));
        }
        r.finish().map_err(ViewError::Fabric)?;
        Ok(DecodedResponse {
            scheme,
            mode,
            entries,
        })
    }

    /// Decrypt the on-chain ViewStorage entries of an irrevocable view
    /// directly from the ledger (no interaction with the owner; §5.3
    /// *Validation*: "users retrieve the encrypted view data from the
    /// ViewStorage contract").
    pub fn decode_view_storage(
        &self,
        chain: &FabricChain,
        view: &str,
        scheme: SchemeKind,
    ) -> Result<DecodedResponse, ViewError> {
        let kv = self
            .view_keys
            .get(view)
            .ok_or_else(|| ViewError::AccessDenied(format!("no K_V for {view:?}")))?;
        let mut entries = Vec::new();
        for (_, value) in contracts::read_view_storage(chain.state(), view) {
            let mut r = WireReader::new(&value);
            let tid = TxId(Digest(r.array::<32>().map_err(ViewError::Fabric)?));
            let enc = r.bytes().map_err(ViewError::Fabric)?;
            r.finish().map_err(ViewError::Fabric)?;
            let payload = aead::open_sym_aad(kv.as_bytes(), &enc, tid.0.as_bytes())?;
            entries.push((tid, payload));
        }
        Ok(DecodedResponse {
            scheme,
            mode: AccessMode::Irrevocable,
            entries,
        })
    }

    /// Reveal and validate the secrets of a decoded response against the
    /// ledger: fetch each stored transaction and check the payload against
    /// its concealment (hash match, or decryption under the carried key).
    ///
    /// Any mismatch aborts with [`ViewError::VerificationFailed`] — a
    /// tampering owner is caught here (§4.7 case 2).
    pub fn reveal(
        &self,
        chain: &FabricChain,
        decoded: &DecodedResponse,
    ) -> Result<Vec<RevealedTx>, ViewError> {
        let mut out = Vec::with_capacity(decoded.entries.len());
        for (tid, payload) in &decoded.entries {
            let stored_bytes = contracts::read_stored_tx(chain.state(), tid).ok_or_else(|| {
                ViewError::VerificationFailed(format!("tx {tid} not on the ledger"))
            })?;
            let stored = StoredTransaction::from_bytes(&stored_bytes)?;
            let (secret, tx_key) = match decoded.scheme {
                SchemeKind::Encryption => {
                    let arr: [u8; 32] = payload
                        .as_slice()
                        .try_into()
                        .map_err(|_| ViewError::Malformed("tx key size".into()))?;
                    let key = SymmetricKey::from_bytes(arr);
                    let Concealed::Encrypted { ciphertext } = &stored.concealed else {
                        return Err(ViewError::VerificationFailed(format!(
                            "tx {tid} is not encryption-concealed"
                        )));
                    };
                    let secret = key.open(ciphertext).map_err(|_| {
                        ViewError::VerificationFailed(format!(
                            "provided key does not decrypt tx {tid}"
                        ))
                    })?;
                    (secret, Some(key))
                }
                SchemeKind::Hash => {
                    if !stored.matches_secret(payload, None) {
                        return Err(ViewError::VerificationFailed(format!(
                            "provided secret does not match on-chain hash for tx {tid}"
                        )));
                    }
                    (payload.clone(), None)
                }
            };
            out.push(RevealedTx {
                tid: *tid,
                non_secret: stored.non_secret,
                secret,
                tx_key,
            });
        }
        Ok(out)
    }

    /// Convenience: decode a response and reveal+validate in one call.
    pub fn open_response(
        &self,
        chain: &FabricChain,
        view: &str,
        response: &QueryResponse,
    ) -> Result<Vec<RevealedTx>, ViewError> {
        let decoded = self.decode_response(view, response)?;
        self.reveal(chain, &decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{EncryptionBasedManager, HashBasedManager, ViewManager};
    use crate::predicate::ViewPredicate;
    use crate::testutil::test_chain;
    use crate::txmodel::{AttrValue, ClientTransaction};
    use ledgerview_crypto::rng::seeded;

    fn tx(to: &str, secret: &[u8]) -> ClientTransaction {
        ClientTransaction::new(
            vec![("from", AttrValue::str("M1")), ("to", AttrValue::str(to))],
            secret.to_vec(),
        )
    }

    #[test]
    fn full_workflow_encryption_revocable() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(20);
        let mut mgr: EncryptionBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        let tid = mgr
            .invoke_with_secret(&mut chain, &client, &tx("W1", b"amount=200"), &mut rng)
            .unwrap();

        let bob_kp = EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, "V", bob_kp.public(), &mut rng)
            .unwrap();

        let mut bob = ViewReader::new(bob_kp);
        bob.obtain_view_key(&chain, "V").unwrap();
        let resp = mgr.query_view("V", &bob.public(), None, &mut rng).unwrap();
        let revealed = bob.open_response(&chain, "V", &resp).unwrap();
        assert_eq!(revealed.len(), 1);
        assert_eq!(revealed[0].tid, tid);
        assert_eq!(revealed[0].secret, b"amount=200");
        assert!(revealed[0].tx_key.is_some());
    }

    #[test]
    fn full_workflow_hash_revocable() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(21);
        let mut mgr: HashBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        mgr.invoke_with_secret(&mut chain, &client, &tx("W1", b"price=9.99"), &mut rng)
            .unwrap();

        let bob_kp = EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, "V", bob_kp.public(), &mut rng)
            .unwrap();
        let mut bob = ViewReader::new(bob_kp);
        bob.obtain_view_key(&chain, "V").unwrap();
        let resp = mgr.query_view("V", &bob.public(), None, &mut rng).unwrap();
        let revealed = bob.open_response(&chain, "V", &resp).unwrap();
        assert_eq!(revealed[0].secret, b"price=9.99");
        assert!(revealed[0].tx_key.is_none());
    }

    #[test]
    fn irrevocable_read_from_chain_without_owner() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(22);
        let mut mgr: HashBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Irrevocable,
            &mut rng,
        )
        .unwrap();
        mgr.invoke_with_secret(&mut chain, &client, &tx("W1", b"s-1"), &mut rng)
            .unwrap();
        mgr.invoke_with_secret(&mut chain, &client, &tx("W2", b"s-2"), &mut rng)
            .unwrap();
        let bob_kp = EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, "V", bob_kp.public(), &mut rng)
            .unwrap();

        // Bob reads the view data straight off the ledger: no owner query.
        let mut bob = ViewReader::new(bob_kp);
        bob.obtain_view_key(&chain, "V").unwrap();
        let decoded = bob
            .decode_view_storage(&chain, "V", SchemeKind::Hash)
            .unwrap();
        let revealed = bob.reveal(&chain, &decoded).unwrap();
        assert_eq!(revealed.len(), 2);
        let secrets: Vec<&[u8]> = revealed.iter().map(|r| r.secret.as_slice()).collect();
        assert!(secrets.contains(&&b"s-1"[..]) && secrets.contains(&&b"s-2"[..]));
    }

    #[test]
    fn revoked_reader_cannot_use_new_generation() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(23);
        let mut mgr: EncryptionBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        mgr.invoke_with_secret(&mut chain, &client, &tx("W1", b"s"), &mut rng)
            .unwrap();

        let bob_kp = EncryptionKeyPair::generate(&mut rng);
        let carol_kp = EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, "V", bob_kp.public(), &mut rng)
            .unwrap();
        mgr.grant_access(&mut chain, "V", carol_kp.public(), &mut rng)
            .unwrap();

        let mut bob = ViewReader::new(bob_kp);
        bob.obtain_view_key(&chain, "V").unwrap();

        // Revoke bob. He cannot obtain the rotated key...
        mgr.revoke_access(&mut chain, "V", &bob.public(), &mut rng)
            .unwrap();
        assert!(matches!(
            bob.obtain_view_key(&chain, "V"),
            Err(ViewError::AccessDenied(_))
        ));
        // ... and owner-side access control also rejects his queries.
        assert!(mgr.query_view("V", &bob.public(), None, &mut rng).is_err());
        // Even with a response addressed to carol, bob's old K_V cannot
        // decrypt entries sealed under the rotated key.
        let resp_for_carol = mgr
            .query_view("V", &carol_kp.public(), None, &mut rng)
            .unwrap();
        assert!(bob.decode_response("V", &resp_for_carol).is_err());

        // Carol still works end to end.
        let mut carol = ViewReader::new(carol_kp);
        carol.obtain_view_key(&chain, "V").unwrap();
        let resp = mgr
            .query_view("V", &carol.public(), None, &mut rng)
            .unwrap();
        assert_eq!(carol.open_response(&chain, "V", &resp).unwrap().len(), 1);
    }

    #[test]
    fn selective_query_reveals_only_requested() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(24);
        let mut mgr: EncryptionBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        let t1 = mgr
            .invoke_with_secret(&mut chain, &client, &tx("W1", b"s1"), &mut rng)
            .unwrap();
        let _t2 = mgr
            .invoke_with_secret(&mut chain, &client, &tx("W2", b"s2"), &mut rng)
            .unwrap();

        let bob_kp = EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, "V", bob_kp.public(), &mut rng)
            .unwrap();
        let mut bob = ViewReader::new(bob_kp);
        bob.obtain_view_key(&chain, "V").unwrap();
        let resp = mgr
            .query_view("V", &bob.public(), Some(&[t1]), &mut rng)
            .unwrap();
        let revealed = bob.open_response(&chain, "V", &resp).unwrap();
        assert_eq!(revealed.len(), 1);
        assert_eq!(revealed[0].tid, t1);
    }

    #[test]
    fn tampered_response_detected() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(25);
        let mut mgr: HashBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        mgr.invoke_with_secret(&mut chain, &client, &tx("W1", b"real"), &mut rng)
            .unwrap();
        let bob_kp = EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, "V", bob_kp.public(), &mut rng)
            .unwrap();
        let mut bob = ViewReader::new(bob_kp);
        bob.obtain_view_key(&chain, "V").unwrap();

        // A malicious owner serving a fabricated secret is caught because
        // the hash on the ledger does not match (§4.7 case 2).
        let kv = *mgr.view_key("V").unwrap();
        let tid = mgr.view_tids("V").unwrap()[0];
        let fake_entry = aead::seal_sym_aad(kv.as_bytes(), &mut rng, b"fake", tid.0.as_bytes());
        let forged = crate::manager::QueryResponse {
            sealed: ledgerview_crypto::seal(
                &bob.public(),
                &mut rng,
                &crate::manager::encode_response(
                    SchemeKind::Hash,
                    AccessMode::Revocable,
                    &[(tid, fake_entry)],
                ),
            ),
        };
        assert!(matches!(
            bob.open_response(&chain, "V", &forged),
            Err(ViewError::VerificationFailed(_))
        ));
    }

    #[test]
    fn response_for_other_user_unreadable() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(26);
        let mut mgr: EncryptionBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        mgr.invoke_with_secret(&mut chain, &client, &tx("W1", b"s"), &mut rng)
            .unwrap();
        let bob_kp = EncryptionKeyPair::generate(&mut rng);
        let eve_kp = EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, "V", bob_kp.public(), &mut rng)
            .unwrap();
        let resp = mgr
            .query_view("V", &bob_kp.public(), None, &mut rng)
            .unwrap();

        let mut eve = ViewReader::new(eve_kp);
        eve.install_view_key("V", *mgr.view_key("V").unwrap());
        // Even knowing K_V (say, leaked), the outer seal is to bob.
        assert!(eve.decode_response("V", &resp).is_err());
    }
}

//! Role-based access control (§4.6).
//!
//! Roles are assigned to users (`A_r`) and access permissions are given to
//! roles (`A_p`); both relations are stored transparently on-chain through
//! the [`crate::contracts::AccessContract`]. Each role gets its own key
//! pair: the role's *private* key is sealed to every member's public key
//! and disseminated on-chain, and views grant access to the role's
//! *public* key exactly as they would to a user — "the methods are
//! indifferent to whether the public key belongs to a single user or to a
//! group of users defined by a role".

use fabric_sim::identity::Identity;
use fabric_sim::statedb::VersionedState;
use fabric_sim::wire::{Reader, Writer};
use fabric_sim::FabricChain;
use ledgerview_crypto::keys::{EncryptionKeyPair, PublicKey};
use rand::RngCore;

use crate::contracts::{self, ACCESS_CC};
use crate::error::ViewError;

const ROLE_PRIVKEY_PREFIX: &str = "rbac~priv~";

/// Administers roles: creation, membership changes, view assignment.
/// Any user can act as a role administrator (§4.6: "this can be done by
/// any user") — authority comes from being the one who knows the role key.
pub struct RoleAdmin {
    identity: Identity,
}

impl RoleAdmin {
    /// Create an admin acting as `identity`.
    pub fn new(identity: Identity) -> RoleAdmin {
        RoleAdmin { identity }
    }

    /// Create a role: generate its key pair, record `A_r` (members) and the
    /// role public key on-chain, and disseminate the sealed private key to
    /// every member. Returns the role key pair (kept by the admin for
    /// later membership changes).
    pub fn create_role<R: RngCore + ?Sized>(
        &self,
        chain: &mut FabricChain,
        role: &str,
        members: &[PublicKey],
        rng: &mut R,
    ) -> Result<EncryptionKeyPair, ViewError> {
        let role_kp = EncryptionKeyPair::generate(rng);
        self.publish_role_state(chain, role, &role_kp, members, rng)?;
        Ok(role_kp)
    }

    /// Replace a role's membership. Per §4.6, "when the set of users
    /// changes for role r, a new key is created and disseminated": the
    /// role key pair is rotated, so removed members lose the ability to
    /// read anything granted to the role from now on.
    ///
    /// Returns the new role key pair. Views that granted access to the old
    /// role public key must re-grant to the new one (the registered view
    /// list in `A_p` tells which).
    pub fn update_role_members<R: RngCore + ?Sized>(
        &self,
        chain: &mut FabricChain,
        role: &str,
        members: &[PublicKey],
        rng: &mut R,
    ) -> Result<EncryptionKeyPair, ViewError> {
        let role_kp = EncryptionKeyPair::generate(rng);
        self.publish_role_state(chain, role, &role_kp, members, rng)?;
        Ok(role_kp)
    }

    fn publish_role_state<R: RngCore + ?Sized>(
        &self,
        chain: &mut FabricChain,
        role: &str,
        role_kp: &EncryptionKeyPair,
        members: &[PublicKey],
        rng: &mut R,
    ) -> Result<(), ViewError> {
        chain.invoke_commit(
            &self.identity,
            ACCESS_CC,
            "set_role_users",
            vec![
                role.as_bytes().to_vec(),
                contracts::encode_key_list(members),
            ],
            rng,
        )?;
        chain.invoke_commit(
            &self.identity,
            ACCESS_CC,
            "set_role_key",
            vec![
                role.as_bytes().to_vec(),
                role_kp.public().as_bytes().to_vec(),
            ],
            rng,
        )?;
        // Disseminate PrivK_r sealed to each member, via the generic
        // access-publication mechanism under a reserved pseudo-view name.
        let entries: Vec<contracts::AccessEntry> = members
            .iter()
            .map(|m| contracts::AccessEntry {
                recipient: *m,
                sealed_key: ledgerview_crypto::seal(m, rng, role_kp.secret_bytes()),
            })
            .collect();
        chain.invoke_commit(
            &self.identity,
            ACCESS_CC,
            "publish_access",
            vec![
                format!("{ROLE_PRIVKEY_PREFIX}{role}").into_bytes(),
                contracts::encode_access_payload(&entries),
            ],
            rng,
        )?;
        Ok(())
    }

    /// Record `A_p`: the views a role may access.
    pub fn assign_views<R: RngCore + ?Sized>(
        &self,
        chain: &mut FabricChain,
        role: &str,
        views: &[String],
        rng: &mut R,
    ) -> Result<(), ViewError> {
        chain.invoke_commit(
            &self.identity,
            ACCESS_CC,
            "set_role_views",
            vec![
                role.as_bytes().to_vec(),
                contracts::encode_string_list(views),
            ],
            rng,
        )?;
        Ok(())
    }
}

/// A member recovers the role's key pair from the on-chain dissemination.
pub fn recover_role_keypair(
    chain: &FabricChain,
    role: &str,
    member: &EncryptionKeyPair,
) -> Result<EncryptionKeyPair, ViewError> {
    let pseudo_view = format!("{ROLE_PRIVKEY_PREFIX}{role}");
    let generation = contracts::read_access_generation(chain.state(), &pseudo_view)
        .ok_or_else(|| ViewError::UnknownView(format!("role {role}")))?;
    let entries = contracts::read_access_payload(chain.state(), &pseudo_view, generation)?;
    let me = member.public();
    let mine = entries
        .iter()
        .find(|e| e.recipient == me)
        .ok_or_else(|| ViewError::AccessDenied(format!("not a member of role {role:?}")))?;
    let secret = ledgerview_crypto::open(member, &mine.sealed_key)?;
    let arr: [u8; 32] = secret
        .try_into()
        .map_err(|_| ViewError::Malformed("role key size".into()))?;
    let kp = EncryptionKeyPair::from_secret_bytes(arr);
    // Sanity: the reconstructed public key must match the registered one.
    let registered = contracts::read_role_key(chain.state(), role)?;
    if kp.public() != registered {
        return Err(ViewError::VerificationFailed(format!(
            "role {role:?}: reconstructed key does not match the registered public key"
        )));
    }
    Ok(kp)
}

/// The join `K_{A_r ⋈ A_p}(V)` of §4.6: all public keys of users that may
/// access `view` according to the transparent on-chain relations.
pub fn users_with_access(state: &dyn VersionedState, view: &str) -> Vec<PublicKey> {
    let mut out = Vec::new();
    for role in all_roles(state) {
        let Ok(views) = contracts::read_role_views(state, &role) else {
            continue;
        };
        if !views.iter().any(|v| v == view) {
            continue;
        }
        if let Ok(users) = contracts::read_role_users(state, &role) {
            for u in users {
                if !out.contains(&u) {
                    out.push(u);
                }
            }
        }
    }
    out.sort();
    out
}

/// The views a user may access through their roles
/// (`D_u = {V | ∃r. (u,r) ∈ A_r ∧ (r,V) ∈ A_p}`).
pub fn views_of_user(state: &dyn VersionedState, user: &PublicKey) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for role in all_roles(state) {
        let Ok(users) = contracts::read_role_users(state, &role) else {
            continue;
        };
        if !users.contains(user) {
            continue;
        }
        if let Ok(views) = contracts::read_role_views(state, &role) {
            for v in views {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
    }
    out.sort();
    out
}

/// All roles registered on-chain.
pub fn all_roles(state: &dyn VersionedState) -> Vec<String> {
    let prefix = "rbac~ar~";
    state
        .prefix_scan(prefix)
        .into_iter()
        .map(|(k, _)| k[prefix.len()..].to_string())
        .collect()
}

/// Canonical serialization of the join result, convenient for audits.
pub fn encode_access_matrix(state: &dyn VersionedState) -> Vec<u8> {
    let mut w = Writer::new();
    let roles = all_roles(state);
    w.u32(roles.len() as u32);
    for role in roles {
        w.string(&role);
        let users = contracts::read_role_users(state, &role).unwrap_or_default();
        w.u32(users.len() as u32);
        for u in users {
            w.array(u.as_bytes());
        }
        let views = contracts::read_role_views(state, &role).unwrap_or_default();
        w.u32(views.len() as u32);
        for v in views {
            w.string(&v);
        }
    }
    w.into_bytes()
}

/// One audit-matrix row: `(role, member public keys, readable views)`.
pub type AccessMatrixRow = (String, Vec<PublicKey>, Vec<String>);

/// Decode the audit matrix produced by [`encode_access_matrix`].
pub fn decode_access_matrix(bytes: &[u8]) -> Result<Vec<AccessMatrixRow>, ViewError> {
    let mut r = Reader::new(bytes);
    let n = r.u32().map_err(ViewError::Fabric)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let role = r.string().map_err(ViewError::Fabric)?;
        let nu = r.u32().map_err(ViewError::Fabric)? as usize;
        let mut users = Vec::with_capacity(nu.min(1 << 16));
        for _ in 0..nu {
            users.push(PublicKey(r.array::<32>().map_err(ViewError::Fabric)?));
        }
        let nv = r.u32().map_err(ViewError::Fabric)? as usize;
        let mut views = Vec::with_capacity(nv.min(1 << 16));
        for _ in 0..nv {
            views.push(r.string().map_err(ViewError::Fabric)?);
        }
        out.push((role, users, views));
    }
    r.finish().map_err(ViewError::Fabric)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{AccessMode, HashBasedManager, ViewManager};
    use crate::predicate::ViewPredicate;
    use crate::reader::ViewReader;
    use crate::testutil::test_chain;
    use crate::txmodel::{AttrValue, ClientTransaction};
    use ledgerview_crypto::rng::seeded;

    #[test]
    fn role_key_recovery_by_members_only() {
        let (mut chain, owner, _) = test_chain();
        let mut rng = seeded(40);
        let admin = RoleAdmin::new(owner);
        let alice = EncryptionKeyPair::generate(&mut rng);
        let bob = EncryptionKeyPair::generate(&mut rng);
        let eve = EncryptionKeyPair::generate(&mut rng);

        let role_kp = admin
            .create_role(
                &mut chain,
                "nurse",
                &[alice.public(), bob.public()],
                &mut rng,
            )
            .unwrap();

        let alice_kp = recover_role_keypair(&chain, "nurse", &alice).unwrap();
        assert_eq!(alice_kp.public(), role_kp.public());
        assert!(recover_role_keypair(&chain, "nurse", &eve).is_err());
        assert!(recover_role_keypair(&chain, "ghost-role", &alice).is_err());
    }

    #[test]
    fn join_of_relations() {
        let (mut chain, owner, _) = test_chain();
        let mut rng = seeded(41);
        let admin = RoleAdmin::new(owner);
        let alice = EncryptionKeyPair::generate(&mut rng).public();
        let bob = EncryptionKeyPair::generate(&mut rng).public();

        admin
            .create_role(&mut chain, "nurse", &[alice, bob], &mut rng)
            .unwrap();
        admin
            .create_role(&mut chain, "doctor", &[alice], &mut rng)
            .unwrap();
        admin
            .assign_views(&mut chain, "nurse", &["records".into()], &mut rng)
            .unwrap();
        admin
            .assign_views(
                &mut chain,
                "doctor",
                &["records".into(), "prescriptions".into()],
                &mut rng,
            )
            .unwrap();

        let mut who = users_with_access(chain.state(), "records");
        let mut expect = vec![alice, bob];
        expect.sort();
        who.sort();
        assert_eq!(who, expect);
        assert_eq!(
            users_with_access(chain.state(), "prescriptions"),
            vec![alice]
        );
        assert_eq!(
            views_of_user(chain.state(), &alice),
            vec!["prescriptions".to_string(), "records".to_string()]
        );
        assert_eq!(
            views_of_user(chain.state(), &bob),
            vec!["records".to_string()]
        );

        let matrix = decode_access_matrix(&encode_access_matrix(chain.state())).unwrap();
        assert_eq!(matrix.len(), 2);
    }

    #[test]
    fn role_based_view_access_end_to_end() {
        // Grant a view to a role public key; members read via the
        // reconstructed role key pair, exactly like a user would (§4.6).
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(42);
        let mut mgr: HashBasedManager = ViewManager::new(owner.clone(), false);
        mgr.create_view(
            &mut chain,
            "records",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        mgr.invoke_with_secret(
            &mut chain,
            &client,
            &ClientTransaction::new(
                vec![("patient", AttrValue::str("p1"))],
                b"diagnosis".to_vec(),
            ),
            &mut rng,
        )
        .unwrap();

        let admin = RoleAdmin::new(owner);
        let alice = EncryptionKeyPair::generate(&mut rng);
        let role_kp = admin
            .create_role(&mut chain, "nurse", &[alice.public()], &mut rng)
            .unwrap();
        admin
            .assign_views(&mut chain, "nurse", &["records".into()], &mut rng)
            .unwrap();
        // The view owner grants the ROLE, not individual users.
        mgr.grant_access(&mut chain, "records", role_kp.public(), &mut rng)
            .unwrap();

        // Alice: recover the role key pair, then act as the role.
        let recovered = recover_role_keypair(&chain, "nurse", &alice).unwrap();
        let mut reader = ViewReader::new(recovered);
        reader.obtain_view_key(&chain, "records").unwrap();
        let resp = mgr
            .query_view("records", &reader.public(), None, &mut rng)
            .unwrap();
        let revealed = reader.open_response(&chain, "records", &resp).unwrap();
        assert_eq!(revealed[0].secret, b"diagnosis");
    }

    #[test]
    fn membership_rotation_locks_out_removed_member() {
        let (mut chain, owner, _) = test_chain();
        let mut rng = seeded(43);
        let admin = RoleAdmin::new(owner);
        let alice = EncryptionKeyPair::generate(&mut rng);
        let bob = EncryptionKeyPair::generate(&mut rng);
        admin
            .create_role(
                &mut chain,
                "staff",
                &[alice.public(), bob.public()],
                &mut rng,
            )
            .unwrap();
        assert!(recover_role_keypair(&chain, "staff", &bob).is_ok());

        // Remove bob: the role key rotates.
        let new_kp = admin
            .update_role_members(&mut chain, "staff", &[alice.public()], &mut rng)
            .unwrap();
        assert!(recover_role_keypair(&chain, "staff", &bob).is_err());
        let alice_kp = recover_role_keypair(&chain, "staff", &alice).unwrap();
        assert_eq!(alice_kp.public(), new_kp.public());
    }

    #[test]
    fn empty_state_queries() {
        let (chain, _, _) = test_chain();
        assert!(all_roles(chain.state()).is_empty());
        assert!(users_with_access(chain.state(), "v").is_empty());
        let user = EncryptionKeyPair::generate(&mut seeded(44)).public();
        assert!(views_of_user(chain.state(), &user).is_empty());
        assert_eq!(
            decode_access_matrix(&encode_access_matrix(chain.state())).unwrap(),
            vec![]
        );
    }
}

//! View definitions: predicates over the non-secret part of transactions.
//!
//! A view is `V = { t | P_V(t[N]) }` (§3). Predicates are serializable so
//! the TxListContract can store them on-chain and any user can re-evaluate
//! them (this is what makes soundness *verifiable*). Recursive definitions
//! use the datalog engine via [`ViewPredicate::Datalog`]-style evaluation
//! in [`crate::verify`]; the structural predicates here cover the paper's
//! experiments (one view per supply-chain entity).

use fabric_sim::wire::{Reader, Writer};
use fabric_sim::FabricError;

use crate::error::ViewError;
use crate::txmodel::{AttrValue, NonSecret};

/// A serializable predicate over the non-secret part.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViewPredicate {
    /// Always true (the view of everything).
    True,
    /// Attribute equals a value, e.g. `to = "Warehouse 1"` (Example 3.2).
    AttrEquals(String, AttrValue),
    /// Attribute exists.
    AttrExists(String),
    /// Integer attribute comparison: `attr >= bound`.
    AttrAtLeast(String, i64),
    /// Conjunction.
    And(Vec<ViewPredicate>),
    /// Disjunction (the union-of-rules semantics of §3).
    Or(Vec<ViewPredicate>),
    /// Negation.
    Not(Box<ViewPredicate>),
}

impl ViewPredicate {
    /// Evaluate against a transaction's non-secret part.
    pub fn matches(&self, ns: &NonSecret) -> bool {
        match self {
            ViewPredicate::True => true,
            ViewPredicate::AttrEquals(k, v) => ns.get(k) == Some(v),
            ViewPredicate::AttrExists(k) => ns.contains_key(k),
            ViewPredicate::AttrAtLeast(k, bound) => {
                matches!(ns.get(k), Some(AttrValue::Int(i)) if i >= bound)
            }
            ViewPredicate::And(ps) => ps.iter().all(|p| p.matches(ns)),
            ViewPredicate::Or(ps) => ps.iter().any(|p| p.matches(ns)),
            ViewPredicate::Not(p) => !p.matches(ns),
        }
    }

    /// Convenience: `attr = string-value`.
    pub fn attr_eq(attr: impl Into<String>, value: impl Into<String>) -> ViewPredicate {
        ViewPredicate::AttrEquals(attr.into(), AttrValue::Str(value.into()))
    }

    /// Convenience: the supply-chain per-node view — transactions where the
    /// node is sender or receiver.
    pub fn touches_entity(entity: impl Into<String>) -> ViewPredicate {
        let e = entity.into();
        ViewPredicate::Or(vec![
            ViewPredicate::attr_eq("from", e.clone()),
            ViewPredicate::attr_eq("to", e.clone()),
            // Access granted to historical handlers: the workload generator
            // lists them in `handlers` as "h:<entity>" marker attributes.
            ViewPredicate::AttrExists(format!("handler~{e}")),
        ])
    }

    /// Canonical serialization (stored on-chain by the TxListContract).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    fn encode(&self, w: &mut Writer) {
        match self {
            ViewPredicate::True => {
                w.u8(0);
            }
            ViewPredicate::AttrEquals(k, v) => {
                w.u8(1).string(k);
                match v {
                    AttrValue::Str(s) => {
                        w.u8(0).string(s);
                    }
                    AttrValue::Int(i) => {
                        w.u8(1).u64(*i as u64);
                    }
                }
            }
            ViewPredicate::AttrExists(k) => {
                w.u8(2).string(k);
            }
            ViewPredicate::AttrAtLeast(k, b) => {
                w.u8(3).string(k).u64(*b as u64);
            }
            ViewPredicate::And(ps) => {
                w.u8(4).u32(ps.len() as u32);
                for p in ps {
                    p.encode(w);
                }
            }
            ViewPredicate::Or(ps) => {
                w.u8(5).u32(ps.len() as u32);
                for p in ps {
                    p.encode(w);
                }
            }
            ViewPredicate::Not(p) => {
                w.u8(6);
                p.encode(w);
            }
        }
    }

    /// Decode from canonical bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<ViewPredicate, ViewError> {
        let mut r = Reader::new(bytes);
        let p = Self::decode(&mut r).map_err(ViewError::Fabric)?;
        r.finish().map_err(ViewError::Fabric)?;
        Ok(p)
    }

    fn decode(r: &mut Reader<'_>) -> Result<ViewPredicate, FabricError> {
        Ok(match r.u8()? {
            0 => ViewPredicate::True,
            1 => {
                let k = r.string()?;
                let v = match r.u8()? {
                    0 => AttrValue::Str(r.string()?),
                    1 => AttrValue::Int(r.u64()? as i64),
                    _ => return Err(FabricError::Malformed("bad value tag".into())),
                };
                ViewPredicate::AttrEquals(k, v)
            }
            2 => ViewPredicate::AttrExists(r.string()?),
            3 => ViewPredicate::AttrAtLeast(r.string()?, r.u64()? as i64),
            4 => {
                let n = r.u32()? as usize;
                ViewPredicate::And((0..n).map(|_| Self::decode(r)).collect::<Result<_, _>>()?)
            }
            5 => {
                let n = r.u32()? as usize;
                ViewPredicate::Or((0..n).map(|_| Self::decode(r)).collect::<Result<_, _>>()?)
            }
            6 => ViewPredicate::Not(Box::new(Self::decode(r)?)),
            _ => return Err(FabricError::Malformed("bad predicate tag".into())),
        })
    }
}

/// A view definition: either a per-transaction predicate or a recursive
/// datalog program (§3's "datalog fashion" extension).
///
/// Recursive definitions are evaluated over the whole ledger: the EDB is
/// the generic triple relation `tx(tid, attr, value)` built from every
/// stored transaction's non-secret part (see
/// [`crate::verify::ledger_edb`]), and a transaction belongs to the view
/// iff the unary `query` relation derives its tid.
#[derive(Clone, Debug)]
pub enum ViewDefinition {
    /// Membership decided per transaction from `t[N]` alone.
    PerTx(ViewPredicate),
    /// Membership decided by a recursive datalog program over the ledger.
    Recursive {
        /// The rules.
        program: ledgerview_datalog::Program,
        /// The unary relation whose derived tids form the view.
        query: String,
    },
}

impl ViewDefinition {
    /// Canonical serialization (stored on-chain by the TxListContract).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            ViewDefinition::PerTx(p) => {
                w.u8(0).bytes(&p.to_bytes());
            }
            ViewDefinition::Recursive { program, query } => {
                w.u8(1).string(query).bytes(&encode_program(program));
            }
        }
        w.into_bytes()
    }

    /// Decode from canonical bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<ViewDefinition, ViewError> {
        let mut r = Reader::new(bytes);
        let def = match r.u8().map_err(ViewError::Fabric)? {
            0 => {
                let p = r.bytes().map_err(ViewError::Fabric)?;
                ViewDefinition::PerTx(ViewPredicate::from_bytes(&p)?)
            }
            1 => {
                let query = r.string().map_err(ViewError::Fabric)?;
                let p = r.bytes().map_err(ViewError::Fabric)?;
                ViewDefinition::Recursive {
                    program: decode_program(&p)?,
                    query,
                }
            }
            _ => return Err(ViewError::Malformed("bad definition tag".into())),
        };
        r.finish().map_err(ViewError::Fabric)?;
        Ok(def)
    }

    /// Streaming membership test, where possible: recursive definitions
    /// return `None` (they need the whole ledger).
    pub fn matches_streaming(&self, ns: &NonSecret) -> Option<bool> {
        match self {
            ViewDefinition::PerTx(p) => Some(p.matches(ns)),
            ViewDefinition::Recursive { .. } => None,
        }
    }
}

/// Serialize a datalog program canonically.
pub fn encode_program(program: &ledgerview_datalog::Program) -> Vec<u8> {
    use ledgerview_datalog::{Term, Value};
    let mut w = Writer::new();
    w.u32(program.rules.len() as u32);
    let write_atom = |w: &mut Writer, atom: &ledgerview_datalog::Atom| {
        w.string(&atom.relation).u32(atom.terms.len() as u32);
        for t in &atom.terms {
            match t {
                Term::Var(v) => {
                    w.u8(0).string(v);
                }
                Term::Const(Value::Str(s)) => {
                    w.u8(1).string(s);
                }
                Term::Const(Value::Int(i)) => {
                    w.u8(2).u64(*i as u64);
                }
            }
        }
    };
    for rule in &program.rules {
        write_atom(&mut w, &rule.head);
        w.u32(rule.body.len() as u32);
        for atom in &rule.body {
            write_atom(&mut w, atom);
        }
    }
    w.into_bytes()
}

/// Decode a datalog program.
pub fn decode_program(bytes: &[u8]) -> Result<ledgerview_datalog::Program, ViewError> {
    use ledgerview_datalog::{Atom, Program, Rule, Term, Value};
    let mut r = Reader::new(bytes);
    let read_atom = |r: &mut Reader<'_>| -> Result<Atom, FabricError> {
        let relation = r.string()?;
        let n = r.u32()? as usize;
        let mut terms = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            terms.push(match r.u8()? {
                0 => Term::Var(r.string()?),
                1 => Term::Const(Value::Str(r.string()?)),
                2 => Term::Const(Value::Int(r.u64()? as i64)),
                _ => return Err(FabricError::Malformed("bad term tag".into())),
            });
        }
        Ok(Atom { relation, terms })
    };
    let n_rules = r.u32().map_err(ViewError::Fabric)? as usize;
    let mut rules = Vec::with_capacity(n_rules.min(1 << 12));
    for _ in 0..n_rules {
        let head = read_atom(&mut r).map_err(ViewError::Fabric)?;
        let n_body = r.u32().map_err(ViewError::Fabric)? as usize;
        let mut body = Vec::with_capacity(n_body.min(64));
        for _ in 0..n_body {
            body.push(read_atom(&mut r).map_err(ViewError::Fabric)?);
        }
        rules.push(Rule { head, body });
    }
    r.finish().map_err(ViewError::Fabric)?;
    Ok(Program { rules })
}

/// The standard recursive definition for a supply-chain entity's view:
/// *all transfers of items the entity ever handled* — including transfers
/// that happened before the entity received the item (§6.2).
///
/// Rules over the generic `tx(tid, attr, value)` triples:
/// ```text
/// transfer(T, I)  :- tx(T, "item", I)
/// handles(I)      :- transfer(T, I), tx(T, "from", entity)
/// handles(I)      :- transfer(T, I), tx(T, "to", entity)
/// in_view(T)      :- transfer(T, I), handles(I)
/// ```
pub fn entity_history_definition(entity: &str) -> ViewDefinition {
    use ledgerview_datalog::{Atom, Program, Rule, Term, Value};
    let var = |s: &str| Term::Var(s.to_string());
    let cst = |s: &str| Term::Const(Value::Str(s.to_string()));
    let program = Program::new(vec![
        Rule::new(
            Atom::new("transfer", vec![var("T"), var("I")]),
            vec![Atom::new("tx", vec![var("T"), cst("item"), var("I")])],
        ),
        Rule::new(
            Atom::new("handles", vec![var("I")]),
            vec![
                Atom::new("transfer", vec![var("T"), var("I")]),
                Atom::new("tx", vec![var("T"), cst("from"), cst(entity)]),
            ],
        ),
        Rule::new(
            Atom::new("handles", vec![var("I")]),
            vec![
                Atom::new("transfer", vec![var("T"), var("I")]),
                Atom::new("tx", vec![var("T"), cst("to"), cst(entity)]),
            ],
        ),
        Rule::new(
            Atom::new("in_view", vec![var("T")]),
            vec![
                Atom::new("transfer", vec![var("T"), var("I")]),
                Atom::new("handles", vec![var("I")]),
            ],
        ),
    ]);
    ViewDefinition::Recursive {
        program,
        query: "in_view".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(pairs: &[(&str, AttrValue)]) -> NonSecret {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn attr_equals() {
        let p = ViewPredicate::attr_eq("to", "Warehouse 1");
        assert!(p.matches(&ns(&[("to", AttrValue::str("Warehouse 1"))])));
        assert!(!p.matches(&ns(&[("to", AttrValue::str("Warehouse 2"))])));
        assert!(!p.matches(&ns(&[])));
        // Type-sensitive: Int(1) ≠ Str("1").
        let q = ViewPredicate::AttrEquals("n".into(), AttrValue::int(1));
        assert!(!q.matches(&ns(&[("n", AttrValue::str("1"))])));
    }

    #[test]
    fn boolean_combinators() {
        let p = ViewPredicate::And(vec![
            ViewPredicate::attr_eq("from", "M1"),
            ViewPredicate::Not(Box::new(ViewPredicate::attr_eq("to", "S1"))),
        ]);
        assert!(p.matches(&ns(&[
            ("from", AttrValue::str("M1")),
            ("to", AttrValue::str("W1"))
        ])));
        assert!(!p.matches(&ns(&[
            ("from", AttrValue::str("M1")),
            ("to", AttrValue::str("S1"))
        ])));
        let empty_and = ViewPredicate::And(vec![]);
        assert!(empty_and.matches(&ns(&[])));
        let empty_or = ViewPredicate::Or(vec![]);
        assert!(!empty_or.matches(&ns(&[])));
    }

    #[test]
    fn at_least() {
        let p = ViewPredicate::AttrAtLeast("amount".into(), 10);
        assert!(p.matches(&ns(&[("amount", AttrValue::int(10))])));
        assert!(!p.matches(&ns(&[("amount", AttrValue::int(9))])));
        assert!(!p.matches(&ns(&[("amount", AttrValue::str("10"))])));
    }

    #[test]
    fn touches_entity_matches_sender_receiver_and_handler() {
        let p = ViewPredicate::touches_entity("W1");
        assert!(p.matches(&ns(&[("from", AttrValue::str("W1"))])));
        assert!(p.matches(&ns(&[("to", AttrValue::str("W1"))])));
        assert!(p.matches(&ns(&[("handler~W1", AttrValue::int(1))])));
        assert!(!p.matches(&ns(&[("from", AttrValue::str("W2"))])));
    }

    #[test]
    fn serialization_round_trip() {
        let predicates = vec![
            ViewPredicate::True,
            ViewPredicate::attr_eq("to", "Warehouse 1"),
            ViewPredicate::AttrEquals("n".into(), AttrValue::int(-5)),
            ViewPredicate::AttrExists("handler~X".into()),
            ViewPredicate::AttrAtLeast("amount".into(), 100),
            ViewPredicate::touches_entity("M1"),
            ViewPredicate::Not(Box::new(ViewPredicate::True)),
            ViewPredicate::And(vec![
                ViewPredicate::Or(vec![ViewPredicate::True, ViewPredicate::attr_eq("a", "b")]),
                ViewPredicate::AttrExists("x".into()),
            ]),
        ];
        for p in predicates {
            let decoded = ViewPredicate::from_bytes(&p.to_bytes()).unwrap();
            assert_eq!(decoded, p);
        }
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(ViewPredicate::from_bytes(&[]).is_err());
        assert!(ViewPredicate::from_bytes(&[99]).is_err());
        let mut bytes = ViewPredicate::True.to_bytes();
        bytes.push(0);
        assert!(ViewPredicate::from_bytes(&bytes).is_err());
    }

    #[test]
    fn view_definition_round_trips() {
        let per_tx = ViewDefinition::PerTx(ViewPredicate::touches_entity("W1"));
        let decoded = ViewDefinition::from_bytes(&per_tx.to_bytes()).unwrap();
        match decoded {
            ViewDefinition::PerTx(p) => assert_eq!(p, ViewPredicate::touches_entity("W1")),
            _ => panic!("wrong variant"),
        }

        let recursive = entity_history_definition("W1");
        let bytes = recursive.to_bytes();
        let decoded = ViewDefinition::from_bytes(&bytes).unwrap();
        let ViewDefinition::Recursive { program, query } = decoded else {
            panic!("wrong variant");
        };
        assert_eq!(query, "in_view");
        assert_eq!(program.rules.len(), 4);
        // Re-encoding is stable.
        assert_eq!(
            ViewDefinition::Recursive { program, query }.to_bytes(),
            bytes
        );
    }

    #[test]
    fn streaming_match_only_for_per_tx() {
        let per_tx = ViewDefinition::PerTx(ViewPredicate::attr_eq("to", "W1"));
        let attrs = ns(&[("to", AttrValue::str("W1"))]);
        assert_eq!(per_tx.matches_streaming(&attrs), Some(true));
        let rec = entity_history_definition("W1");
        assert_eq!(rec.matches_streaming(&attrs), None);
    }

    #[test]
    fn malformed_definitions_rejected() {
        assert!(ViewDefinition::from_bytes(&[]).is_err());
        assert!(ViewDefinition::from_bytes(&[9]).is_err());
        assert!(decode_program(&[1, 2, 3]).is_err());
    }

    #[test]
    fn negative_int_round_trips() {
        let p = ViewPredicate::AttrAtLeast("x".into(), -42);
        assert_eq!(ViewPredicate::from_bytes(&p.to_bytes()).unwrap(), p);
        assert!(p.matches(&ns(&[("x", AttrValue::int(-42))])));
        assert!(!p.matches(&ns(&[("x", AttrValue::int(-43))])));
    }
}

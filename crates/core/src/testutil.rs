//! Shared test fixtures.

use fabric_sim::endorsement::EndorsementPolicy;
use fabric_sim::identity::{Identity, OrgId};
use fabric_sim::FabricChain;
use ledgerview_crypto::rng::seeded;

use crate::contracts::{
    AccessContract, InvokeContract, TxListContract, ViewStorageContract, ACCESS_CC, INVOKE_CC,
    TX_LIST_CC, VIEW_STORAGE_CC,
};

/// A two-org chain with all four LedgerView contracts deployed, plus an
/// owner identity (Org1) and a client identity (Org2).
pub(crate) fn test_chain() -> (FabricChain, Identity, Identity) {
    let mut rng = seeded(100);
    let mut chain = FabricChain::new(&["Org1", "Org2"], &mut rng);
    let policy = EndorsementPolicy::MajorityOf(chain.org_ids());
    chain.deploy(INVOKE_CC, Box::new(InvokeContract), policy.clone());
    chain.deploy(
        VIEW_STORAGE_CC,
        Box::new(ViewStorageContract),
        policy.clone(),
    );
    chain.deploy(TX_LIST_CC, Box::new(TxListContract), policy.clone());
    chain.deploy(ACCESS_CC, Box::new(AccessContract), policy);
    let owner = chain
        .enroll(&OrgId::new("Org1"), "owner", &mut rng)
        .unwrap();
    let client = chain
        .enroll(&OrgId::new("Org2"), "alice", &mut rng)
        .unwrap();
    (chain, owner, client)
}

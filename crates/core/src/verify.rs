//! Verifiable soundness and completeness (§4.7, Proposition 4.1).
//!
//! *Soundness*: every transaction a view serves (1) exists and is valid on
//! the ledger, (2) satisfies the view's on-chain predicate, and (3) carries
//! a secret matching its on-chain concealment.
//!
//! *Completeness at T*: the view contains every qualifying transaction up
//! to time T. Two strategies, mirroring Fig 12: the cheap comparison
//! against the TxListContract's maintained list, and the exhaustive ledger
//! scan that re-evaluates the predicate over every stored transaction.

use std::collections::HashSet;

use fabric_sim::ledger::TxId;
use fabric_sim::FabricChain;
use ledgerview_datalog::{Database, Value};

use crate::contracts::{self, INVOKE_CC};
use crate::error::ViewError;
use crate::predicate::ViewDefinition;
use crate::reader::RevealedTx;
use crate::txmodel::{AttrValue, StoredTransaction};

/// Outcome of a verification pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerificationReport {
    /// Whether the property held.
    pub ok: bool,
    /// Number of transactions checked.
    pub checked: usize,
    /// Human-readable descriptions of each violation found.
    pub violations: Vec<String>,
}

impl VerificationReport {
    fn new() -> VerificationReport {
        VerificationReport {
            ok: true,
            checked: 0,
            violations: Vec::new(),
        }
    }

    fn violation(&mut self, msg: String) {
        self.ok = false;
        self.violations.push(msg);
    }
}

/// Build the generic extensional database over the ledger: one
/// `tx(tid_hex, attr, value)` triple per non-secret attribute of every
/// valid stored transaction. Recursive view definitions are evaluated
/// against this EDB.
pub fn ledger_edb(chain: &FabricChain) -> Database {
    let mut db = Database::new();
    for block in chain.store().iter() {
        for (i, tx) in block.transactions.iter().enumerate() {
            if !block.validity[i] || tx.chaincode != INVOKE_CC {
                continue;
            }
            let Some(arg) = tx.args.first() else { continue };
            let Ok(stored) = StoredTransaction::from_bytes(arg) else {
                continue;
            };
            let tid_hex = Value::Str(tx.tx_id.to_hex());
            for (k, v) in &stored.non_secret {
                let value = match v {
                    AttrValue::Str(s) => Value::Str(s.clone()),
                    AttrValue::Int(i) => Value::Int(*i),
                };
                db.insert("tx", vec![tid_hex.clone(), Value::Str(k.clone()), value]);
            }
        }
    }
    db
}

/// The tids a recursive definition derives over the current ledger.
fn recursive_membership(
    chain: &FabricChain,
    definition: &ViewDefinition,
) -> Result<Option<HashSet<TxId>>, ViewError> {
    let ViewDefinition::Recursive { program, query } = definition else {
        return Ok(None);
    };
    let derived = program
        .evaluate(&ledger_edb(chain))
        .map_err(|e| ViewError::Malformed(format!("datalog evaluation failed: {e}")))?;
    let mut out = HashSet::new();
    for tuple in derived.tuples(query) {
        if let Some(Value::Str(hex)) = tuple.first() {
            if let Some(d) = ledgerview_crypto::sha256::Digest::from_hex(hex) {
                out.insert(TxId(d));
            }
        }
    }
    Ok(Some(out))
}

/// Verify soundness of revealed view contents against the chain.
///
/// Checks, per transaction: ledger membership and validity, the on-chain
/// view definition (case 1 of §4.7 — per-transaction predicates are
/// checked directly, recursive definitions by datalog evaluation over the
/// ledger), agreement of the served non-secret part with the ledger, and
/// the secret/concealment match (case 2).
pub fn verify_soundness(
    chain: &FabricChain,
    view: &str,
    revealed: &[RevealedTx],
) -> Result<VerificationReport, ViewError> {
    let definition = contracts::read_view_definition(chain.state(), view)?;
    let recursive_members = recursive_membership(chain, &definition)?;
    let mut report = VerificationReport::new();
    for tx in revealed {
        report.checked += 1;
        // Ledger membership + validity flag (per-transaction ledger access
        // is what makes soundness the expensive direction in Fig 12).
        let Some((_ledger_tx, valid)) = chain.store().find_tx(&tx.tid) else {
            report.violation(format!("tx {} not found on the ledger", tx.tid));
            continue;
        };
        if !valid {
            report.violation(format!("tx {} was invalidated at commit", tx.tid));
            continue;
        }
        let Some(stored_bytes) = contracts::read_stored_tx(chain.state(), &tx.tid) else {
            report.violation(format!("tx {} has no stored state", tx.tid));
            continue;
        };
        let stored = StoredTransaction::from_bytes(&stored_bytes)?;
        if stored.non_secret != tx.non_secret {
            report.violation(format!(
                "tx {}: served non-secret part differs from the ledger",
                tx.tid
            ));
            continue;
        }
        let satisfies = match (&definition, &recursive_members) {
            (ViewDefinition::PerTx(p), _) => p.matches(&stored.non_secret),
            (_, Some(members)) => members.contains(&tx.tid),
            _ => false,
        };
        if !satisfies {
            report.violation(format!(
                "tx {}: does not satisfy the view definition (case 1)",
                tx.tid
            ));
            continue;
        }
        if !stored.matches_secret(&tx.secret, tx.tx_key.as_ref()) {
            report.violation(format!(
                "tx {}: secret does not match on-chain concealment (case 2)",
                tx.tid
            ));
        }
    }
    Ok(report)
}

/// Verify completeness against the TxListContract's maintained list
/// (§5.4): every listed transaction with timestamp ≤ `horizon_us` must be
/// present in the view.
pub fn verify_completeness_txlist(
    chain: &FabricChain,
    view: &str,
    view_tids: &HashSet<TxId>,
    horizon_us: u64,
) -> Result<VerificationReport, ViewError> {
    let list = contracts::read_view_txlist(chain.state(), view)?;
    let mut report = VerificationReport::new();
    for (tid, ts) in list {
        if ts > horizon_us {
            continue;
        }
        report.checked += 1;
        if !view_tids.contains(&tid) {
            report.violation(format!(
                "tx {tid} (t={ts}µs) is listed for {view:?} but missing from the view (case 3)"
            ));
        }
    }
    Ok(report)
}

/// Verify completeness by scanning the entire ledger (the expensive
/// strategy of Fig 12): re-evaluate the on-chain predicate over every
/// stored transaction committed up to `horizon_us`.
pub fn verify_completeness_scan(
    chain: &FabricChain,
    view: &str,
    view_tids: &HashSet<TxId>,
    horizon_us: u64,
) -> Result<VerificationReport, ViewError> {
    let definition = contracts::read_view_definition(chain.state(), view)?;
    let recursive_members = recursive_membership(chain, &definition)?;
    let mut report = VerificationReport::new();
    for block in chain.store().iter() {
        if block.header.timestamp_us > horizon_us {
            continue;
        }
        for (i, tx) in block.transactions.iter().enumerate() {
            if !block.validity[i] || tx.chaincode != INVOKE_CC {
                continue;
            }
            let Some(arg) = tx.args.first() else { continue };
            let Ok(stored) = StoredTransaction::from_bytes(arg) else {
                continue;
            };
            let qualifies = match (&definition, &recursive_members) {
                (ViewDefinition::PerTx(p), _) => p.matches(&stored.non_secret),
                (_, Some(members)) => members.contains(&tx.tx_id),
                _ => false,
            };
            if !qualifies {
                continue;
            }
            report.checked += 1;
            if !view_tids.contains(&tx.tx_id) {
                report.violation(format!(
                    "qualifying tx {} (block {}) missing from view {view:?} (case 3)",
                    tx.tx_id, block.header.number
                ));
            }
        }
    }
    Ok(report)
}

/// Proposition 4.1 in one call: verify both soundness and completeness of
/// served view contents at `horizon_us`, using the TxListContract when
/// `use_txlist` or the full scan otherwise.
pub fn verify_view(
    chain: &FabricChain,
    view: &str,
    revealed: &[RevealedTx],
    horizon_us: u64,
    use_txlist: bool,
) -> Result<(VerificationReport, VerificationReport), ViewError> {
    let soundness = verify_soundness(chain, view, revealed)?;
    let tids: HashSet<TxId> = revealed.iter().map(|r| r.tid).collect();
    let completeness = if use_txlist {
        verify_completeness_txlist(chain, view, &tids, horizon_us)?
    } else {
        verify_completeness_scan(chain, view, &tids, horizon_us)?
    };
    Ok((soundness, completeness))
}

/// [`verify_view`] with the pass timed into `telemetry`: duration lands in
/// `lv_views_verify_seconds{strategy=txlist|scan}` and a `view.verify`
/// span, which is how Fig 12's txlist-vs-scan gap shows up in a live
/// exposition rather than a bespoke benchmark.
pub fn verify_view_timed(
    chain: &FabricChain,
    view: &str,
    revealed: &[RevealedTx],
    horizon_us: u64,
    use_txlist: bool,
    telemetry: &ledgerview_telemetry::Telemetry,
) -> Result<(VerificationReport, VerificationReport), ViewError> {
    let strategy = if use_txlist { "txlist" } else { "scan" };
    let histogram = telemetry
        .registry()
        .histogram("lv_views_verify_seconds", &[("strategy", strategy)]);
    let span = telemetry.span("view.verify");
    let start = std::time::Instant::now();
    let result = verify_view(chain, view, revealed, horizon_us, use_txlist);
    histogram.observe_duration(start.elapsed());
    drop(span);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{AccessMode, EncryptionBasedManager, HashBasedManager, ViewManager};
    use crate::predicate::ViewPredicate;
    use crate::reader::ViewReader;
    use crate::testutil::test_chain;
    use crate::txmodel::{AttrValue, ClientTransaction};
    use ledgerview_crypto::keys::EncryptionKeyPair;
    use ledgerview_crypto::rng::seeded;
    use ledgerview_crypto::SymmetricKey;

    fn tx(to: &str, secret: &[u8]) -> ClientTransaction {
        ClientTransaction::new(
            vec![("from", AttrValue::str("M1")), ("to", AttrValue::str(to))],
            secret.to_vec(),
        )
    }

    /// Set up a hash-based revocable view "V_W1" with 3 matching and 2
    /// non-matching transactions, a granted reader, and return the
    /// revealed contents.
    fn setup_hash_view() -> (
        fabric_sim::FabricChain,
        HashBasedManager,
        ViewReader,
        Vec<crate::reader::RevealedTx>,
    ) {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(30);
        let mut mgr: HashBasedManager = ViewManager::new(owner, true);
        mgr.create_view(
            &mut chain,
            "V_W1",
            ViewPredicate::attr_eq("to", "W1"),
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        for i in 0..3u8 {
            mgr.invoke_with_secret(&mut chain, &client, &tx("W1", &[b's', i]), &mut rng)
                .unwrap();
        }
        for i in 0..2u8 {
            mgr.invoke_with_secret(&mut chain, &client, &tx("W2", &[b'x', i]), &mut rng)
                .unwrap();
        }
        mgr.flush(&mut chain, &mut rng).unwrap();

        let bob_kp = EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, "V_W1", bob_kp.public(), &mut rng)
            .unwrap();
        let mut bob = ViewReader::new(bob_kp);
        bob.obtain_view_key(&chain, "V_W1").unwrap();
        let resp = mgr
            .query_view("V_W1", &bob.public(), None, &mut rng)
            .unwrap();
        let revealed = bob.open_response(&chain, "V_W1", &resp).unwrap();
        (chain, mgr, bob, revealed)
    }

    #[test]
    fn honest_view_is_sound_and_complete() {
        let (chain, _mgr, _bob, revealed) = setup_hash_view();
        assert_eq!(revealed.len(), 3);
        let (sound, complete) = verify_view(&chain, "V_W1", &revealed, u64::MAX, true).unwrap();
        assert!(sound.ok, "violations: {:?}", sound.violations);
        assert_eq!(sound.checked, 3);
        assert!(complete.ok, "violations: {:?}", complete.violations);
        assert_eq!(complete.checked, 3);
        // The scan strategy agrees.
        let tids: HashSet<TxId> = revealed.iter().map(|r| r.tid).collect();
        let scan = verify_completeness_scan(&chain, "V_W1", &tids, u64::MAX).unwrap();
        assert!(scan.ok);
        assert_eq!(scan.checked, 3);
    }

    #[test]
    fn timed_verification_matches_and_records_duration() {
        let (chain, _mgr, _bob, revealed) = setup_hash_view();
        let telemetry = ledgerview_telemetry::Telemetry::wall_clock();
        let (sound, complete) =
            verify_view_timed(&chain, "V_W1", &revealed, u64::MAX, true, &telemetry).unwrap();
        let (sound2, complete2) = verify_view(&chain, "V_W1", &revealed, u64::MAX, true).unwrap();
        assert_eq!(sound, sound2);
        assert_eq!(complete, complete2);
        let h = telemetry
            .registry()
            .histogram("lv_views_verify_seconds", &[("strategy", "txlist")]);
        assert_eq!(h.histogram().count(), 1);
        assert!(telemetry
            .tracer()
            .recent()
            .iter()
            .any(|s| s.name == "view.verify"));
    }

    #[test]
    fn case1_extraneous_transaction_detected() {
        let (chain, _mgr, _bob, mut revealed) = setup_hash_view();
        // Maliciously include a W2 transaction in the served view: its
        // non-secret part does not satisfy the predicate.
        let w2_tid = chain
            .store()
            .iter()
            .flat_map(|b| &b.transactions)
            .find_map(|t| {
                if t.chaincode != INVOKE_CC {
                    return None;
                }
                let stored = StoredTransaction::from_bytes(&t.args[0]).ok()?;
                (stored.non_secret.get("to") == Some(&AttrValue::str("W2")))
                    .then_some((t.tx_id, stored))
            })
            .expect("a W2 tx exists");
        revealed.push(crate::reader::RevealedTx {
            tid: w2_tid.0,
            non_secret: w2_tid.1.non_secret,
            secret: b"x\x00".to_vec(),
            tx_key: None,
        });
        let report = verify_soundness(&chain, "V_W1", &revealed).unwrap();
        assert!(!report.ok);
        assert!(
            report.violations[0].contains("case 1")
                || report.violations.iter().any(|v| v.contains("predicate"))
        );
    }

    #[test]
    fn case2_corrupted_secret_detected() {
        let (chain, _mgr, _bob, mut revealed) = setup_hash_view();
        revealed[1].secret = b"corrupted".to_vec();
        let report = verify_soundness(&chain, "V_W1", &revealed).unwrap();
        assert!(!report.ok);
        assert!(report.violations.iter().any(|v| v.contains("concealment")));
    }

    #[test]
    fn case2_corrupted_non_secret_detected() {
        let (chain, _mgr, _bob, mut revealed) = setup_hash_view();
        revealed[0]
            .non_secret
            .insert("to".into(), AttrValue::str("W1-forged"));
        let report = verify_soundness(&chain, "V_W1", &revealed).unwrap();
        assert!(!report.ok);
        assert!(report.violations.iter().any(|v| v.contains("differs")));
    }

    #[test]
    fn case3_omitted_transaction_detected() {
        let (chain, _mgr, _bob, mut revealed) = setup_hash_view();
        // The owner hides one transaction from the reader.
        revealed.pop();
        let tids: HashSet<TxId> = revealed.iter().map(|r| r.tid).collect();
        let via_list = verify_completeness_txlist(&chain, "V_W1", &tids, u64::MAX).unwrap();
        assert!(!via_list.ok);
        assert_eq!(via_list.violations.len(), 1);
        let via_scan = verify_completeness_scan(&chain, "V_W1", &tids, u64::MAX).unwrap();
        assert!(!via_scan.ok);
    }

    #[test]
    fn fabricated_tid_detected() {
        let (chain, _mgr, _bob, mut revealed) = setup_hash_view();
        revealed[0].tid = TxId(ledgerview_crypto::sha256::sha256(b"ghost"));
        let report = verify_soundness(&chain, "V_W1", &revealed).unwrap();
        assert!(!report.ok);
        assert!(report.violations[0].contains("not found"));
    }

    #[test]
    fn completeness_horizon_excludes_later_txs() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(31);
        let mut mgr: HashBasedManager = ViewManager::new(owner, true);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        mgr.invoke_with_secret(&mut chain, &client, &tx("W1", b"early"), &mut rng)
            .unwrap();
        mgr.flush(&mut chain, &mut rng).unwrap();
        let list = contracts::read_view_txlist(chain.state(), "V").unwrap();
        let horizon = list[0].1;
        // A later transaction past the horizon.
        chain.set_time_us(horizon + 10_000_000);
        mgr.invoke_with_secret(&mut chain, &client, &tx("W1", b"late"), &mut rng)
            .unwrap();
        mgr.flush(&mut chain, &mut rng).unwrap();

        // A view snapshot containing only the early tx is complete at the
        // horizon, but incomplete at MAX.
        let tids: HashSet<TxId> = [list[0].0].into_iter().collect();
        let at_horizon = verify_completeness_txlist(&chain, "V", &tids, horizon).unwrap();
        assert!(at_horizon.ok);
        let at_max = verify_completeness_txlist(&chain, "V", &tids, u64::MAX).unwrap();
        assert!(!at_max.ok);
    }

    #[test]
    fn encryption_scheme_wrong_key_detected() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(32);
        let mut mgr: EncryptionBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        mgr.invoke_with_secret(&mut chain, &client, &tx("W1", b"s"), &mut rng)
            .unwrap();
        let bob_kp = EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, "V", bob_kp.public(), &mut rng)
            .unwrap();
        let mut bob = ViewReader::new(bob_kp);
        bob.obtain_view_key(&chain, "V").unwrap();
        let resp = mgr.query_view("V", &bob.public(), None, &mut rng).unwrap();
        let mut revealed = bob.open_response(&chain, "V", &resp).unwrap();
        // Corrupt the transaction key: soundness case 2 (corrupted keys).
        revealed[0].tx_key = Some(SymmetricKey::generate(&mut rng));
        let report = verify_soundness(&chain, "V", &revealed).unwrap();
        assert!(!report.ok);
    }
}

//! LedgerView: access-control views on a permissioned blockchain.
//!
//! This crate implements the contribution of *LedgerView: Access-Control
//! Views on Hyperledger Fabric* (SIGMOD 2022): views over blockchain
//! transactions whose secret parts are concealed by encryption or salted
//! hashing, with revocable or irrevocable access permissions, role-based
//! access control, and verifiable soundness and completeness.
//!
//! # The four methods (§4)
//!
//! | | Encryption-based | Hash-based |
//! |---|---|---|
//! | **Irrevocable** | EI: secret stored encrypted on-chain; view = `enc([tid, K_i, …], K_V)` in contract state | HI: only `h(secret‖salt)` on-chain; view = `enc((tid, secret), K_V)` in contract state |
//! | **Revocable** | ER: view keys served per request, encrypted under the rotatable `K_V` | HR: secret values served per request, encrypted under the rotatable `K_V` |
//!
//! # Module map (§5's architecture)
//!
//! * [`txmodel`] — transactions `(tid, t[N], t[S])` and concealment.
//! * [`predicate`] — view definitions over the non-secret part.
//! * [`contracts`] — the on-chain side: `Invoke`, `ViewStorage`
//!   (Init/Merge), `TxListContract`, and the access/RBAC registry.
//! * [`manager`] — the `ViewManager` run by view owners
//!   (`EncryptionBasedManager` / `HashBasedManager`, revocable and
//!   irrevocable modes, `CreateView` / `InvokeWithSecret` / `QueryView`,
//!   grant and revoke).
//! * [`reader`] — the view-reader side: obtaining `K_V`, decrypting query
//!   results, validating them against the chain.
//! * [`rbac`] — role-based access control (§4.6).
//! * [`verify`] — verifiable soundness and completeness (§4.7, Fig 12).
//!
//! # Quick start
//!
//! See `examples/quickstart.rs` at the workspace root for the Alice/Bob
//! workflow of Fig 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contracts;
pub mod delegation;
pub mod error;
pub mod manager;
pub mod predicate;
pub mod rbac;
pub mod reader;
#[cfg(test)]
pub(crate) mod testutil;
pub mod txmodel;
pub mod verify;

pub use error::ViewError;
pub use manager::{AccessMode, EncryptionBasedManager, HashBasedManager, ViewManager};
pub use predicate::ViewPredicate;
pub use reader::ViewReader;
pub use txmodel::{AttrValue, ClientTransaction, NonSecret};

//! The transaction model: `(tid, t[N], t[S])` and on-chain concealment.
//!
//! Every client transaction has a non-secret part — attributes visible to
//! all peers and usable in view predicates — and a secret part that is
//! concealed before it reaches the blockchain (§3): encrypted under a
//! fresh per-transaction key (encryption-based methods) or replaced by
//! `h(secret ‖ salt)` (hash-based methods).

use std::collections::BTreeMap;

use fabric_sim::wire::{Reader, Writer};
use fabric_sim::FabricError;
use ledgerview_crypto::sha256::{sha256_concat, Digest};
use ledgerview_crypto::SymmetricKey;
use rand::RngCore;

use crate::error::ViewError;

/// An attribute value in the non-secret part.
#[derive(Clone, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum AttrValue {
    /// String attribute (entities, item ids, …).
    Str(String),
    /// Integer attribute (amounts, timestamps, …).
    Int(i64),
}

impl AttrValue {
    /// Shorthand string constructor.
    pub fn str(s: impl Into<String>) -> AttrValue {
        AttrValue::Str(s.into())
    }

    /// Shorthand integer constructor.
    pub fn int(i: i64) -> AttrValue {
        AttrValue::Int(i)
    }

    /// The string payload, if this is a string attribute.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            AttrValue::Int(_) => None,
        }
    }
}

/// The non-secret part `t[N]`: an ordered attribute map.
pub type NonSecret = BTreeMap<String, AttrValue>;

/// Encode a non-secret part canonically.
pub fn encode_non_secret(ns: &NonSecret) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(ns.len() as u32);
    for (k, v) in ns {
        w.string(k);
        match v {
            AttrValue::Str(s) => {
                w.u8(0).string(s);
            }
            AttrValue::Int(i) => {
                w.u8(1).u64(*i as u64);
            }
        }
    }
    w.into_bytes()
}

fn decode_non_secret(r: &mut Reader<'_>) -> Result<NonSecret, FabricError> {
    let n = r.u32()? as usize;
    let mut ns = NonSecret::new();
    for _ in 0..n {
        let key = r.string()?;
        let tag = r.u8()?;
        let value = match tag {
            0 => AttrValue::Str(r.string()?),
            1 => AttrValue::Int(r.u64()? as i64),
            _ => return Err(FabricError::Malformed("bad attr tag".into())),
        };
        ns.insert(key, value);
    }
    Ok(ns)
}

/// A transaction as the client composes it, before concealment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientTransaction {
    /// Visible attributes (`t[N]`).
    pub non_secret: NonSecret,
    /// The confidential payload (`t[S]`).
    pub secret: Vec<u8>,
}

impl ClientTransaction {
    /// Build from attribute pairs and a secret payload.
    pub fn new(attrs: Vec<(&str, AttrValue)>, secret: impl Into<Vec<u8>>) -> ClientTransaction {
        ClientTransaction {
            non_secret: attrs.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            secret: secret.into(),
        }
    }
}

/// The concealed secret as stored on-chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Concealed {
    /// Encryption-based (§4.1): `enc(t[S], K_i)` under a fresh key.
    Encrypted {
        /// The AEAD ciphertext.
        ciphertext: Vec<u8>,
    },
    /// Hash-based (§4.3): salt and `h(t[S] ‖ salt)`.
    Hashed {
        /// The random salt (dictionary-attack defence).
        salt: [u8; 16],
        /// `SHA-256(secret ‖ salt)`.
        digest: Digest,
    },
}

/// A transaction as stored on the ledger: visible attributes + concealed
/// secret.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredTransaction {
    /// Visible attributes.
    pub non_secret: NonSecret,
    /// Concealed secret part.
    pub concealed: Concealed,
}

impl StoredTransaction {
    /// Canonical bytes (the invoke contract's state value).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&encode_non_secret(&self.non_secret));
        match &self.concealed {
            Concealed::Encrypted { ciphertext } => {
                w.u8(0).bytes(ciphertext);
            }
            Concealed::Hashed { salt, digest } => {
                w.u8(1).array(salt).array(digest.as_bytes());
            }
        }
        w.into_bytes()
    }

    /// Decode from state bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<StoredTransaction, ViewError> {
        let mut r = Reader::new(bytes);
        let ns_bytes = r.bytes().map_err(ViewError::Fabric)?;
        let mut ns_reader = Reader::new(&ns_bytes);
        let non_secret = decode_non_secret(&mut ns_reader).map_err(ViewError::Fabric)?;
        let tag = r.u8().map_err(ViewError::Fabric)?;
        let concealed = match tag {
            0 => Concealed::Encrypted {
                ciphertext: r.bytes().map_err(ViewError::Fabric)?,
            },
            1 => Concealed::Hashed {
                salt: r.array::<16>().map_err(ViewError::Fabric)?,
                digest: Digest(r.array::<32>().map_err(ViewError::Fabric)?),
            },
            _ => return Err(ViewError::Malformed("bad concealment tag".into())),
        };
        r.finish().map_err(ViewError::Fabric)?;
        Ok(StoredTransaction {
            non_secret,
            concealed,
        })
    }

    /// Check a revealed secret against the concealment (soundness case 2,
    /// §4.7): hash must match, or the provided key must decrypt the stored
    /// ciphertext to the claimed secret.
    pub fn matches_secret(&self, secret: &[u8], tx_key: Option<&SymmetricKey>) -> bool {
        match &self.concealed {
            Concealed::Hashed { salt, digest } => sha256_concat(&[secret, salt]) == *digest,
            Concealed::Encrypted { ciphertext } => match tx_key {
                Some(k) => k.open(ciphertext).is_ok_and(|pt| pt == secret),
                None => false,
            },
        }
    }
}

/// Conceal a secret by hashing with a fresh salt (hash-based methods).
pub fn conceal_by_hash<R: RngCore + ?Sized>(secret: &[u8], rng: &mut R) -> Concealed {
    let mut salt = [0u8; 16];
    rng.fill_bytes(&mut salt);
    Concealed::Hashed {
        salt,
        digest: sha256_concat(&[secret, &salt]),
    }
}

/// Conceal a secret by encryption under a fresh per-transaction key
/// (encryption-based methods). Returns the concealment and the key.
pub fn conceal_by_encryption<R: RngCore + ?Sized>(
    secret: &[u8],
    rng: &mut R,
) -> (Concealed, SymmetricKey) {
    let key = SymmetricKey::generate(rng);
    let ciphertext = key.seal(rng, secret);
    (Concealed::Encrypted { ciphertext }, key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ledgerview_crypto::rng::seeded;

    fn sample_tx() -> ClientTransaction {
        ClientTransaction::new(
            vec![
                ("item", AttrValue::str("i42")),
                ("from", AttrValue::str("Manufacturer 1")),
                ("to", AttrValue::str("Warehouse 1")),
                ("shipment", AttrValue::int(1001)),
            ],
            b"type=battery; amount=200; price=9.99".to_vec(),
        )
    }

    #[test]
    fn stored_tx_round_trip_encrypted() {
        let mut rng = seeded(1);
        let tx = sample_tx();
        let (concealed, _k) = conceal_by_encryption(&tx.secret, &mut rng);
        let stored = StoredTransaction {
            non_secret: tx.non_secret.clone(),
            concealed,
        };
        let decoded = StoredTransaction::from_bytes(&stored.to_bytes()).unwrap();
        assert_eq!(decoded, stored);
    }

    #[test]
    fn stored_tx_round_trip_hashed() {
        let mut rng = seeded(2);
        let tx = sample_tx();
        let stored = StoredTransaction {
            non_secret: tx.non_secret.clone(),
            concealed: conceal_by_hash(&tx.secret, &mut rng),
        };
        let decoded = StoredTransaction::from_bytes(&stored.to_bytes()).unwrap();
        assert_eq!(decoded, stored);
    }

    #[test]
    fn hash_concealment_verifies_secret() {
        let mut rng = seeded(3);
        let tx = sample_tx();
        let stored = StoredTransaction {
            non_secret: tx.non_secret.clone(),
            concealed: conceal_by_hash(&tx.secret, &mut rng),
        };
        assert!(stored.matches_secret(&tx.secret, None));
        assert!(!stored.matches_secret(b"wrong secret", None));
    }

    #[test]
    fn encryption_concealment_verifies_with_key() {
        let mut rng = seeded(4);
        let tx = sample_tx();
        let (concealed, key) = conceal_by_encryption(&tx.secret, &mut rng);
        let stored = StoredTransaction {
            non_secret: tx.non_secret.clone(),
            concealed,
        };
        assert!(stored.matches_secret(&tx.secret, Some(&key)));
        assert!(!stored.matches_secret(b"wrong", Some(&key)));
        let other = SymmetricKey::generate(&mut rng);
        assert!(!stored.matches_secret(&tx.secret, Some(&other)));
        assert!(!stored.matches_secret(&tx.secret, None));
    }

    #[test]
    fn salting_hides_equal_secrets() {
        // Dictionary-attack defence (§4.3): equal secrets must conceal to
        // different digests.
        let mut rng = seeded(5);
        let a = conceal_by_hash(b"same secret", &mut rng);
        let b = conceal_by_hash(b"same secret", &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn per_tx_keys_are_unique() {
        let mut rng = seeded(6);
        let (_, k1) = conceal_by_encryption(b"s", &mut rng);
        let (_, k2) = conceal_by_encryption(b"s", &mut rng);
        assert_ne!(k1.as_bytes(), k2.as_bytes());
    }

    #[test]
    fn malformed_stored_tx_rejected() {
        assert!(StoredTransaction::from_bytes(&[]).is_err());
        let mut rng = seeded(7);
        let tx = sample_tx();
        let stored = StoredTransaction {
            non_secret: tx.non_secret,
            concealed: conceal_by_hash(&tx.secret, &mut rng),
        };
        let mut bytes = stored.to_bytes();
        bytes.push(0); // trailing garbage
        assert!(StoredTransaction::from_bytes(&bytes).is_err());
        // Unknown concealment tag.
        let mut bad = stored.to_bytes();
        let ns_len = 4 + u32::from_be_bytes(bad[..4].try_into().unwrap()) as usize;
        bad[ns_len] = 9;
        assert!(StoredTransaction::from_bytes(&bad).is_err());
    }

    #[test]
    fn non_secret_encoding_is_canonical() {
        // BTreeMap ordering makes attribute order irrelevant.
        let a = ClientTransaction::new(
            vec![("b", AttrValue::int(2)), ("a", AttrValue::str("x"))],
            b"".to_vec(),
        );
        let b = ClientTransaction::new(
            vec![("a", AttrValue::str("x")), ("b", AttrValue::int(2))],
            b"".to_vec(),
        );
        assert_eq!(
            encode_non_secret(&a.non_secret),
            encode_non_secret(&b.non_secret)
        );
    }
}

//! Error type for the LedgerView layer.

use std::fmt;

use fabric_sim::FabricError;
use ledgerview_crypto::CryptoError;

/// Errors surfaced by view management, reading and verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// Underlying blockchain error.
    Fabric(FabricError),
    /// Cryptographic failure (decryption, signature).
    Crypto(CryptoError),
    /// The named view does not exist at this manager.
    UnknownView(String),
    /// A view with this name already exists.
    DuplicateView(String),
    /// The operation is not allowed for the view's access mode
    /// (e.g. revoking an irrevocable view).
    ModeMismatch(String),
    /// The requesting user has no access permission.
    AccessDenied(String),
    /// Verification found the view unsound or incomplete.
    VerificationFailed(String),
    /// Malformed on-chain or response payload.
    Malformed(String),
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::Fabric(e) => write!(f, "fabric error: {e}"),
            ViewError::Crypto(e) => write!(f, "crypto error: {e}"),
            ViewError::UnknownView(v) => write!(f, "unknown view {v:?}"),
            ViewError::DuplicateView(v) => write!(f, "view {v:?} already exists"),
            ViewError::ModeMismatch(m) => write!(f, "access-mode mismatch: {m}"),
            ViewError::AccessDenied(m) => write!(f, "access denied: {m}"),
            ViewError::VerificationFailed(m) => write!(f, "verification failed: {m}"),
            ViewError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for ViewError {}

impl From<FabricError> for ViewError {
    fn from(e: FabricError) -> Self {
        ViewError::Fabric(e)
    }
}

impl From<CryptoError> for ViewError {
    fn from(e: CryptoError) -> Self {
        ViewError::Crypto(e)
    }
}

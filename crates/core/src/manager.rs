//! The view manager run by view owners (§5.3).
//!
//! A [`ViewManager`] intercepts client requests, conceals secret parts
//! (`ProcessSecret`), stores transactions through the invoke contract,
//! determines view inclusion (`InsertIntoView`), regulates access
//! (grant / revoke with `K_V` rotation), answers queries (`QueryView`) and
//! maintains the on-chain structures (ViewStorage for irrevocable views,
//! TxListContract batches).
//!
//! The two concealment schemes of the paper are the two instantiations
//! [`EncryptionBasedManager`] (§4.1 EI / §4.2 ER) and [`HashBasedManager`]
//! (§4.3 HI / §4.4 HR); the access mode is chosen per view at
//! `CreateView` time.

use std::collections::BTreeMap;

use fabric_sim::identity::Identity;
use fabric_sim::ledger::TxId;
use fabric_sim::FabricChain;
use ledgerview_crypto::aead;
use ledgerview_crypto::keys::PublicKey;
use ledgerview_crypto::SymmetricKey;
use ledgerview_telemetry::{Counter, HistogramHandle, Telemetry};
use rand::RngCore;

use crate::contracts::{
    self, AccessEntry, TxListUpdate, ACCESS_CC, INVOKE_CC, TX_LIST_CC, VIEW_STORAGE_CC,
};
use crate::error::ViewError;
use crate::predicate::{ViewDefinition, ViewPredicate};
use crate::txmodel::{
    conceal_by_encryption, conceal_by_hash, ClientTransaction, Concealed, StoredTransaction,
};

/// Whether access permissions to a view can later be revoked (§3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessMode {
    /// Access can be revoked by rotating `K_V` (§4.2 / §4.4).
    Revocable,
    /// Access is permanent; view data lives in the ViewStorage contract
    /// under blockchain integrity (§4.1 / §4.3).
    Irrevocable,
}

/// Which concealment scheme a manager uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchemeKind {
    /// Secrets stored encrypted on-chain; views carry transaction keys.
    Encryption,
    /// Only salted hashes on-chain; views carry the secret values.
    Hash,
}

/// A concealment scheme: how `ProcessSecret` conceals, what the owner
/// retains, and what a view entry carries.
pub trait SecretScheme {
    /// What the view owner keeps per transaction (`ViewData` values):
    /// the transaction key `K_i` (encryption) or the secret itself (hash).
    type Record: Clone;

    /// Scheme discriminator carried in query responses.
    fn kind() -> SchemeKind;

    /// Conceal a secret for on-chain storage (`ProcessSecret`).
    fn conceal<R: RngCore + ?Sized>(secret: &[u8], rng: &mut R) -> (Concealed, Self::Record);

    /// The bytes a view entry carries for this transaction: `K_i` for EI/ER
    /// (§4.1), the secret value for HI/HR (§4.3).
    fn entry_payload(record: &Self::Record) -> Vec<u8>;

    /// Reconstruct a record from its payload bytes (owner delegation,
    /// §4.2: "a view can have many view owners").
    fn record_from_payload(payload: Vec<u8>) -> Result<Self::Record, ViewError>;
}

/// Encryption-based concealment (EI / ER).
pub struct EncryptionScheme;

impl SecretScheme for EncryptionScheme {
    type Record = SymmetricKey;

    fn kind() -> SchemeKind {
        SchemeKind::Encryption
    }

    fn conceal<R: RngCore + ?Sized>(secret: &[u8], rng: &mut R) -> (Concealed, SymmetricKey) {
        conceal_by_encryption(secret, rng)
    }

    fn entry_payload(record: &SymmetricKey) -> Vec<u8> {
        record.as_bytes().to_vec()
    }

    fn record_from_payload(payload: Vec<u8>) -> Result<SymmetricKey, ViewError> {
        let arr: [u8; 32] = payload
            .try_into()
            .map_err(|_| ViewError::Malformed("transaction key size".into()))?;
        Ok(SymmetricKey::from_bytes(arr))
    }
}

/// Hash-based concealment (HI / HR).
pub struct HashScheme;

impl SecretScheme for HashScheme {
    type Record = Vec<u8>;

    fn kind() -> SchemeKind {
        SchemeKind::Hash
    }

    fn conceal<R: RngCore + ?Sized>(secret: &[u8], rng: &mut R) -> (Concealed, Vec<u8>) {
        (conceal_by_hash(secret, rng), secret.to_vec())
    }

    fn entry_payload(record: &Vec<u8>) -> Vec<u8> {
        record.clone()
    }

    fn record_from_payload(payload: Vec<u8>) -> Result<Vec<u8>, ViewError> {
        Ok(payload)
    }
}

/// Per-view owner-side state (the paper's `ViewBuffer`: `ViewKeys` +
/// `ViewData`).
struct ViewInfo<S: SecretScheme> {
    mode: AccessMode,
    definition: ViewDefinition,
    /// Current view key `K_V`.
    key: SymmetricKey,
    /// Users (or roles) currently granted access.
    members: Vec<PublicKey>,
    /// tid → record (`ViewData`).
    data: BTreeMap<TxId, S::Record>,
    /// Next ViewStorage entry sequence number.
    merge_seq: u64,
    /// Irrevocable entries not yet merged on-chain (TxListContract
    /// batching defers them to the next flush).
    pending_merge: Vec<(String, Vec<u8>)>,
}

/// A query answer: the response payload sealed to the requester's public
/// key. Decode with [`crate::reader::ViewReader`].
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// `enc(response, PubK_requester)`.
    pub sealed: Vec<u8>,
}

/// The decoded (but still `K_V`-protected) form of a response; produced by
/// the manager, consumed by the reader.
pub(crate) fn encode_response(
    kind: SchemeKind,
    mode: AccessMode,
    entries: &[(TxId, Vec<u8>)],
) -> Vec<u8> {
    let mut w = fabric_sim::wire::Writer::new();
    w.u8(match kind {
        SchemeKind::Encryption => 0,
        SchemeKind::Hash => 1,
    });
    w.u8(match mode {
        AccessMode::Revocable => 0,
        AccessMode::Irrevocable => 1,
    });
    w.u32(entries.len() as u32);
    for (tid, enc) in entries {
        w.array(tid.0.as_bytes()).bytes(enc);
    }
    w.into_bytes()
}

/// Registry handles for one manager, resolved at attach time. The
/// `scheme` label carries the concealment scheme, so one registry holds
/// both EI/ER and HI/HR managers side by side (the Fig 5/6 comparison).
#[derive(Clone)]
struct ViewMetrics {
    telemetry: Telemetry,
    create_seconds: HistogramHandle,
    invoke_seconds: HistogramHandle,
    query_seconds: HistogramHandle,
    conceal_total: Counter,
    flush_txs: Counter,
}

impl ViewMetrics {
    fn new(telemetry: &Telemetry, scheme: SchemeKind) -> ViewMetrics {
        let scheme = match scheme {
            SchemeKind::Encryption => "encryption",
            SchemeKind::Hash => "hash",
        };
        let r = telemetry.registry();
        let labels = [("scheme", scheme)];
        ViewMetrics {
            create_seconds: r.histogram("lv_views_create_seconds", &labels),
            invoke_seconds: r.histogram("lv_views_invoke_seconds", &labels),
            query_seconds: r.histogram("lv_views_query_seconds", &labels),
            conceal_total: r.counter("lv_views_conceal_total", &labels),
            flush_txs: r.counter("lv_views_flush_txs_total", &labels),
            telemetry: telemetry.clone(),
        }
    }
}

/// The view manager of one view owner.
pub struct ViewManager<S: SecretScheme> {
    owner: Identity,
    views: BTreeMap<String, ViewInfo<S>>,
    /// Every record this owner has processed, keyed by tid — the source
    /// for retroactive view insertions (granting access to historical
    /// transactions, as when a supply-chain node receives an item).
    records: BTreeMap<TxId, S::Record>,
    /// Whether the TxListContract maintains per-view id lists with batched
    /// flushes (§5.4). When enabled, irrevocable merges are batched too.
    use_txlist: bool,
    txlist_pending: Vec<TxListUpdate>,
    /// Virtual flush interval in microseconds (the paper suggests 30 s).
    flush_interval_us: u64,
    last_flush_us: u64,
    metrics: Option<ViewMetrics>,
}

/// The encryption-based manager of §5.3.1 (methods EI and ER).
pub type EncryptionBasedManager = ViewManager<EncryptionScheme>;
/// The hash-based manager of §5.3.2 (methods HI and HR).
pub type HashBasedManager = ViewManager<HashScheme>;

impl<S: SecretScheme> ViewManager<S> {
    /// Create a manager for `owner`. `use_txlist` enables the
    /// TxListContract (batched id lists, batched merges).
    pub fn new(owner: Identity, use_txlist: bool) -> ViewManager<S> {
        ViewManager {
            owner,
            views: BTreeMap::new(),
            records: BTreeMap::new(),
            use_txlist,
            txlist_pending: Vec::new(),
            flush_interval_us: 30_000_000,
            last_flush_us: 0,
            metrics: None,
        }
    }

    /// Attach telemetry: view create/invoke/query durations and conceal
    /// counters, all labeled with this manager's concealment scheme.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = Some(ViewMetrics::new(telemetry, S::kind()));
    }

    /// Change the TxListContract flush interval (virtual microseconds).
    pub fn set_flush_interval_us(&mut self, us: u64) {
        self.flush_interval_us = us;
    }

    /// The owner identity this manager acts as.
    pub fn owner(&self) -> &Identity {
        &self.owner
    }

    /// Names of views managed here.
    pub fn view_names(&self) -> Vec<&str> {
        self.views.keys().map(|s| s.as_str()).collect()
    }

    /// The current `K_V` of a view (owner-side; tests and delegation).
    pub fn view_key(&self, view: &str) -> Result<&SymmetricKey, ViewError> {
        Ok(&self.view(view)?.key)
    }

    /// Current members of a view.
    pub fn members(&self, view: &str) -> Result<&[PublicKey], ViewError> {
        Ok(&self.view(view)?.members)
    }

    /// Number of transactions currently in a view.
    pub fn view_len(&self, view: &str) -> Result<usize, ViewError> {
        Ok(self.view(view)?.data.len())
    }

    /// Transaction ids of a view (`V_ids`, §4.2), in tid order.
    pub fn view_tids(&self, view: &str) -> Result<Vec<TxId>, ViewError> {
        Ok(self.view(view)?.data.keys().copied().collect())
    }

    fn view(&self, name: &str) -> Result<&ViewInfo<S>, ViewError> {
        self.views
            .get(name)
            .ok_or_else(|| ViewError::UnknownView(name.to_string()))
    }

    fn view_mut(&mut self, name: &str) -> Result<&mut ViewInfo<S>, ViewError> {
        self.views
            .get_mut(name)
            .ok_or_else(|| ViewError::UnknownView(name.to_string()))
    }

    /// `CreateView` with a per-transaction predicate. See
    /// [`ViewManager::create_view_with_definition`].
    pub fn create_view<R: RngCore + ?Sized>(
        &mut self,
        chain: &mut FabricChain,
        name: impl Into<String>,
        predicate: ViewPredicate,
        mode: AccessMode,
        rng: &mut R,
    ) -> Result<(), ViewError> {
        self.create_view_with_definition(chain, name, ViewDefinition::PerTx(predicate), mode, rng)
    }

    /// `CreateView`: register a view with a definition and an access mode.
    ///
    /// Registers the definition with the TxListContract (public view
    /// registration, the basis of verifiable soundness) and, for
    /// irrevocable views, initialises the ViewStorage contract. Recursive
    /// definitions are not matched incrementally — call
    /// [`ViewManager::refresh_view`] to (re)compute their membership over
    /// the ledger.
    pub fn create_view_with_definition<R: RngCore + ?Sized>(
        &mut self,
        chain: &mut FabricChain,
        name: impl Into<String>,
        definition: ViewDefinition,
        mode: AccessMode,
        rng: &mut R,
    ) -> Result<(), ViewError> {
        let metrics = self.metrics.clone();
        let _span = metrics.as_ref().map(|m| m.telemetry.span("view.create"));
        let start = std::time::Instant::now();
        let result = self.create_view_inner(chain, name.into(), definition, mode, rng);
        if let Some(m) = &metrics {
            m.create_seconds.observe_duration(start.elapsed());
        }
        result
    }

    fn create_view_inner<R: RngCore + ?Sized>(
        &mut self,
        chain: &mut FabricChain,
        name: String,
        definition: ViewDefinition,
        mode: AccessMode,
        rng: &mut R,
    ) -> Result<(), ViewError> {
        if self.views.contains_key(&name) {
            return Err(ViewError::DuplicateView(name));
        }
        chain.invoke_commit(
            &self.owner,
            TX_LIST_CC,
            "create_view",
            vec![name.as_bytes().to_vec(), definition.to_bytes()],
            rng,
        )?;
        if mode == AccessMode::Irrevocable {
            chain.invoke_commit(
                &self.owner,
                VIEW_STORAGE_CC,
                "init",
                vec![name.as_bytes().to_vec()],
                rng,
            )?;
        }
        self.views.insert(
            name,
            ViewInfo {
                mode,
                definition,
                key: SymmetricKey::generate(rng),
                members: Vec::new(),
                data: BTreeMap::new(),
                merge_seq: 0,
                pending_merge: Vec::new(),
            },
        );
        Ok(())
    }

    /// `InvokeWithSecret`: conceal the client transaction, store it
    /// on-chain, and insert it into every matching view.
    ///
    /// Returns the transaction id. The number of extra on-chain
    /// transactions depends on the modes involved: revocable views add
    /// none; irrevocable views without the TxListContract add one `merge`
    /// per view; with the TxListContract everything is batched into the
    /// periodic flush (Fig 6).
    pub fn invoke_with_secret<R: RngCore + ?Sized>(
        &mut self,
        chain: &mut FabricChain,
        client: &Identity,
        tx: &ClientTransaction,
        rng: &mut R,
    ) -> Result<TxId, ViewError> {
        let metrics = self.metrics.clone();
        let _span = metrics.as_ref().map(|m| m.telemetry.span("view.invoke"));
        let start = std::time::Instant::now();
        let result = self.invoke_with_secret_inner(chain, client, tx, rng);
        if let Some(m) = &metrics {
            m.invoke_seconds.observe_duration(start.elapsed());
            m.conceal_total.inc();
        }
        result
    }

    fn invoke_with_secret_inner<R: RngCore + ?Sized>(
        &mut self,
        chain: &mut FabricChain,
        client: &Identity,
        tx: &ClientTransaction,
        rng: &mut R,
    ) -> Result<TxId, ViewError> {
        // ProcessSecret (scheme-specific).
        let (concealed, record) = S::conceal(&tx.secret, rng);
        let stored = StoredTransaction {
            non_secret: tx.non_secret.clone(),
            concealed,
        };
        let result = chain.invoke_commit(
            client,
            INVOKE_CC,
            "invoke_with_secret",
            vec![stored.to_bytes()],
            rng,
        )?;
        let tid = result.tx_id;
        let now_us = chain
            .store()
            .tip()
            .map(|b| b.header.timestamp_us)
            .unwrap_or(0);
        self.records.insert(tid, record.clone());

        // InsertIntoView for every view whose definition can be decided
        // per transaction; recursive views are refreshed explicitly.
        let matching: Vec<String> = self
            .views
            .iter()
            .filter(|(_, v)| v.definition.matches_streaming(&tx.non_secret) == Some(true))
            .map(|(n, _)| n.clone())
            .collect();
        let mut immediate_merges: Vec<contracts::MergeBatch> = Vec::new();
        for name in matching {
            if let Some(entry) = self.insert_into_view(&name, tid, record.clone(), now_us, rng)? {
                immediate_merges.push((name, vec![entry]));
            }
        }
        // All views' merge entries travel in ONE view-storage transaction:
        // an irrevocable request costs exactly one extra on-chain
        // transaction, however many views it joins (§6.3).
        self.submit_merges(chain, immediate_merges, rng)?;
        Ok(tid)
    }

    fn submit_merges<R: RngCore + ?Sized>(
        &self,
        chain: &mut FabricChain,
        merges: Vec<contracts::MergeBatch>,
        rng: &mut R,
    ) -> Result<(), ViewError> {
        if merges.is_empty() {
            return Ok(());
        }
        chain.invoke_commit(
            &self.owner,
            VIEW_STORAGE_CC,
            "merge_multi",
            vec![contracts::encode_multi_merge(&merges)],
            rng,
        )?;
        Ok(())
    }

    /// `InsertIntoView` (§5.3): record the transaction in the view buffer
    /// and stage the on-chain maintenance. For irrevocable views without
    /// the TxListContract, returns the merge entry the caller must submit
    /// (batched per invocation into one view-storage transaction).
    fn insert_into_view<R: RngCore + ?Sized>(
        &mut self,
        name: &str,
        tid: TxId,
        record: S::Record,
        now_us: u64,
        rng: &mut R,
    ) -> Result<Option<(String, Vec<u8>)>, ViewError> {
        let use_txlist = self.use_txlist;
        let info = self.view_mut(name)?;
        info.data.insert(tid, record);

        let mut immediate = None;
        if info.mode == AccessMode::Irrevocable {
            // Entry: enc((tid, payload), K_V) under the view key.
            let payload = S::entry_payload(&info.data[&tid]);
            let entry_value =
                aead::seal_sym_aad(info.key.as_bytes(), rng, &payload, tid.0.as_bytes());
            let entry_key = format!("{:016x}", info.merge_seq);
            info.merge_seq += 1;
            let mut entry_bytes = fabric_sim::wire::Writer::new();
            entry_bytes.array(tid.0.as_bytes()).bytes(&entry_value);
            let entry = (entry_key, entry_bytes.into_bytes());
            if use_txlist {
                info.pending_merge.push(entry);
            } else {
                immediate = Some(entry);
            }
        }

        if use_txlist {
            self.txlist_pending.push(TxListUpdate {
                view: name.to_string(),
                tid,
                timestamp_us: now_us,
            });
        }
        Ok(immediate)
    }

    /// Retroactively add an already-processed transaction to a view —
    /// granting access to *historical* transactions, e.g. when a
    /// supply-chain node receives an item and must see its prior transfers
    /// (§6.2: "the view of node n₃ is updated by adding the historical
    /// transfers of item i to it"). Idempotent for transactions already in
    /// the view.
    pub fn add_to_view<R: RngCore + ?Sized>(
        &mut self,
        chain: &mut FabricChain,
        view: &str,
        tid: TxId,
        rng: &mut R,
    ) -> Result<(), ViewError> {
        if self.view(view)?.data.contains_key(&tid) {
            return Ok(());
        }
        let record = self
            .records
            .get(&tid)
            .cloned()
            .ok_or_else(|| ViewError::Malformed(format!("no record for tx {tid}")))?;
        let now_us = chain
            .store()
            .tip()
            .map(|b| b.header.timestamp_us)
            .unwrap_or(0);
        if let Some(entry) = self.insert_into_view(view, tid, record, now_us, rng)? {
            self.submit_merges(chain, vec![(view.to_string(), vec![entry])], rng)?;
        }
        Ok(())
    }

    /// Pending (unflushed) TxListContract updates.
    pub fn txlist_pending_len(&self) -> usize {
        self.txlist_pending.len()
    }

    /// Flush batched TxListContract updates and deferred irrevocable
    /// merges if the flush interval elapsed (call with the current virtual
    /// time). Returns the number of on-chain transactions issued.
    pub fn maybe_flush<R: RngCore + ?Sized>(
        &mut self,
        chain: &mut FabricChain,
        now_us: u64,
        rng: &mut R,
    ) -> Result<u32, ViewError> {
        if now_us.saturating_sub(self.last_flush_us) < self.flush_interval_us {
            return Ok(0);
        }
        self.last_flush_us = now_us;
        self.flush(chain, rng)
    }

    /// Force a flush of all batched updates.
    pub fn flush<R: RngCore + ?Sized>(
        &mut self,
        chain: &mut FabricChain,
        rng: &mut R,
    ) -> Result<u32, ViewError> {
        if !self.use_txlist {
            return Ok(0);
        }
        let mut txs = 0u32;
        if !self.txlist_pending.is_empty() {
            let batch = std::mem::take(&mut self.txlist_pending);
            chain.invoke_commit(
                &self.owner,
                TX_LIST_CC,
                "add_batch",
                vec![contracts::encode_txlist_batch(&batch)],
                rng,
            )?;
            txs += 1;
        }
        let mut merges: Vec<contracts::MergeBatch> = Vec::new();
        for (name, info) in self.views.iter_mut() {
            if !info.pending_merge.is_empty() {
                merges.push((name.clone(), std::mem::take(&mut info.pending_merge)));
            }
        }
        if !merges.is_empty() {
            self.submit_merges(chain, merges, rng)?;
            txs += 1;
        }
        if let Some(m) = &self.metrics {
            m.flush_txs.add(txs as u64);
        }
        Ok(txs)
    }

    /// Grant `user` access to `view`: seal the current `K_V` to the user's
    /// public key and publish a new `V_access` generation on-chain.
    pub fn grant_access<R: RngCore + ?Sized>(
        &mut self,
        chain: &mut FabricChain,
        view: &str,
        user: PublicKey,
        rng: &mut R,
    ) -> Result<(), ViewError> {
        let owner = self.owner.clone();
        let info = self.view_mut(view)?;
        if !info.members.contains(&user) {
            info.members.push(user);
        }
        let payload = Self::access_payload(info, rng);
        chain.invoke_commit(
            &owner,
            ACCESS_CC,
            "publish_access",
            vec![view.as_bytes().to_vec(), payload],
            rng,
        )?;
        Ok(())
    }

    /// Revoke `user`'s access to a *revocable* view: rotate `K_V` and
    /// re-disseminate the new key to the remaining members (§4.2/§4.4).
    /// The revoked user keeps anything already downloaded but cannot
    /// decrypt future responses.
    pub fn revoke_access<R: RngCore + ?Sized>(
        &mut self,
        chain: &mut FabricChain,
        view: &str,
        user: &PublicKey,
        rng: &mut R,
    ) -> Result<(), ViewError> {
        let owner = self.owner.clone();
        let info = self.view_mut(view)?;
        if info.mode == AccessMode::Irrevocable {
            return Err(ViewError::ModeMismatch(format!(
                "view {view:?} is irrevocable"
            )));
        }
        let before = info.members.len();
        info.members.retain(|m| m != user);
        if info.members.len() == before {
            return Err(ViewError::AccessDenied(format!(
                "user is not a member of {view:?}"
            )));
        }
        // Rotate K_V and publish the new generation.
        info.key = SymmetricKey::generate(rng);
        let payload = Self::access_payload(info, rng);
        chain.invoke_commit(
            &owner,
            ACCESS_CC,
            "publish_access",
            vec![view.as_bytes().to_vec(), payload],
            rng,
        )?;
        Ok(())
    }

    fn access_payload<R: RngCore + ?Sized>(info: &ViewInfo<S>, rng: &mut R) -> Vec<u8> {
        let entries: Vec<AccessEntry> = info
            .members
            .iter()
            .map(|m| AccessEntry {
                recipient: *m,
                sealed_key: ledgerview_crypto::seal(m, rng, info.key.as_bytes()),
            })
            .collect();
        contracts::encode_access_payload(&entries)
    }

    /// `QueryView`: answer a reader's query.
    ///
    /// The response contains, per transaction, `enc(payload, K_V)` bound to
    /// the tid — transaction keys for the encryption scheme (§4.2), secret
    /// values for the hash scheme (§4.4) — and the whole response is sealed
    /// to the requester's public key. `tids = None` returns the full view;
    /// `Some(..)` only the requested transactions (a revocable-view request
    /// never reveals keys that were not requested).
    pub fn query_view<R: RngCore + ?Sized>(
        &self,
        view: &str,
        requester: &PublicKey,
        tids: Option<&[TxId]>,
        rng: &mut R,
    ) -> Result<QueryResponse, ViewError> {
        let _span = self
            .metrics
            .as_ref()
            .map(|m| m.telemetry.span("view.query"));
        let start = std::time::Instant::now();
        let result = self.query_view_inner(view, requester, tids, rng);
        if let Some(m) = &self.metrics {
            m.query_seconds.observe_duration(start.elapsed());
        }
        result
    }

    fn query_view_inner<R: RngCore + ?Sized>(
        &self,
        view: &str,
        requester: &PublicKey,
        tids: Option<&[TxId]>,
        rng: &mut R,
    ) -> Result<QueryResponse, ViewError> {
        let info = self.view(view)?;
        if !info.members.contains(requester) {
            return Err(ViewError::AccessDenied(format!(
                "requester has no access to {view:?}"
            )));
        }
        let selected: Vec<(TxId, &S::Record)> = match tids {
            Some(ids) => ids
                .iter()
                .filter_map(|t| info.data.get(t).map(|r| (*t, r)))
                .collect(),
            None => info.data.iter().map(|(t, r)| (*t, r)).collect(),
        };
        let entries: Vec<(TxId, Vec<u8>)> = selected
            .into_iter()
            .map(|(tid, record)| {
                let payload = S::entry_payload(record);
                let enc = aead::seal_sym_aad(info.key.as_bytes(), rng, &payload, tid.0.as_bytes());
                (tid, enc)
            })
            .collect();
        let response = encode_response(S::kind(), info.mode, &entries);
        Ok(QueryResponse {
            sealed: ledgerview_crypto::seal(requester, rng, &response),
        })
    }

    /// The view's definition.
    pub fn definition(&self, view: &str) -> Result<&ViewDefinition, ViewError> {
        Ok(&self.view(view)?.definition)
    }

    /// Export the full owner-side state of a view, for delegation to a
    /// co-owner (§4.2). Seal it with [`crate::delegation::export_view`].
    pub fn export_owner_state(
        &self,
        view: &str,
    ) -> Result<crate::delegation::OwnerState, ViewError> {
        let info = self.view(view)?;
        Ok(crate::delegation::OwnerState {
            view: view.to_string(),
            scheme: S::kind(),
            mode: info.mode,
            definition: info.definition.clone(),
            key: info.key,
            members: info.members.clone(),
            records: info
                .data
                .iter()
                .map(|(t, r)| (*t, S::entry_payload(r)))
                .collect(),
            merge_seq: info.merge_seq,
        })
    }

    /// Install an exported owner state, becoming a co-owner of the view.
    pub fn import_owner_state(
        &mut self,
        state: crate::delegation::OwnerState,
    ) -> Result<(), ViewError> {
        if self.views.contains_key(&state.view) {
            return Err(ViewError::DuplicateView(state.view));
        }
        let mut data = BTreeMap::new();
        for (tid, payload) in state.records {
            let record = S::record_from_payload(payload)?;
            self.records.insert(tid, record.clone());
            data.insert(tid, record);
        }
        self.views.insert(
            state.view,
            ViewInfo {
                mode: state.mode,
                definition: state.definition,
                key: state.key,
                members: state.members,
                data,
                merge_seq: state.merge_seq,
                pending_merge: Vec::new(),
            },
        );
        Ok(())
    }

    /// Recompute a recursive view's membership over the current ledger and
    /// insert any missing transactions (per-tx views are already complete;
    /// refreshing them is a no-op). Returns the number of added
    /// transactions.
    ///
    /// This is how "the view of node n₃ is updated by adding the
    /// historical transfers" (§6.2) happens for datalog views.
    pub fn refresh_view<R: RngCore + ?Sized>(
        &mut self,
        chain: &mut FabricChain,
        view: &str,
        rng: &mut R,
    ) -> Result<usize, ViewError> {
        let ViewDefinition::Recursive { program, query } = self.view(view)?.definition.clone()
        else {
            return Ok(0);
        };
        let edb = crate::verify::ledger_edb(chain);
        let derived = program
            .evaluate(&edb)
            .map_err(|e| ViewError::Malformed(format!("datalog evaluation failed: {e}")))?;
        let mut to_add = Vec::new();
        for tuple in derived.tuples(&query) {
            let Some(ledgerview_datalog::Value::Str(tid_hex)) = tuple.first() else {
                continue;
            };
            let Some(digest) = ledgerview_crypto::sha256::Digest::from_hex(tid_hex) else {
                continue;
            };
            let tid = TxId(digest);
            if !self.view(view)?.data.contains_key(&tid) && self.records.contains_key(&tid) {
                to_add.push(tid);
            }
        }
        let added = to_add.len();
        for tid in to_add {
            self.add_to_view(chain, view, tid, rng)?;
        }
        Ok(added)
    }

    /// The view's access mode.
    pub fn mode(&self, view: &str) -> Result<AccessMode, ViewError> {
        Ok(self.view(view)?.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_chain;
    use crate::txmodel::AttrValue;
    use ledgerview_crypto::rng::seeded;

    fn shipment(to: &str, secret: &[u8]) -> ClientTransaction {
        ClientTransaction::new(
            vec![("from", AttrValue::str("M1")), ("to", AttrValue::str(to))],
            secret.to_vec(),
        )
    }

    #[test]
    fn create_view_registers_on_chain() {
        let (mut chain, owner, _) = test_chain();
        let mut rng = seeded(1);
        let mut mgr: EncryptionBasedManager = ViewManager::new(owner, false);
        let pred = ViewPredicate::attr_eq("to", "W1");
        mgr.create_view(
            &mut chain,
            "V_W1",
            pred.clone(),
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        assert_eq!(
            contracts::read_view_predicate(chain.state(), "V_W1").unwrap(),
            pred
        );
        // Duplicate rejected locally.
        assert!(matches!(
            mgr.create_view(&mut chain, "V_W1", pred, AccessMode::Revocable, &mut rng),
            Err(ViewError::DuplicateView(_))
        ));
    }

    #[test]
    fn invoke_inserts_into_matching_views_only() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(2);
        let mut mgr: HashBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V_W1",
            ViewPredicate::attr_eq("to", "W1"),
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        mgr.create_view(
            &mut chain,
            "V_W2",
            ViewPredicate::attr_eq("to", "W2"),
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();

        let tid = mgr
            .invoke_with_secret(&mut chain, &client, &shipment("W1", b"s1"), &mut rng)
            .unwrap();
        assert_eq!(mgr.view_len("V_W1").unwrap(), 1);
        assert_eq!(mgr.view_len("V_W2").unwrap(), 0);
        assert_eq!(mgr.view_tids("V_W1").unwrap(), vec![tid]);
        // The stored transaction is on-chain, concealed.
        let stored_bytes = contracts::read_stored_tx(chain.state(), &tid).unwrap();
        let stored = StoredTransaction::from_bytes(&stored_bytes).unwrap();
        assert!(matches!(stored.concealed, Concealed::Hashed { .. }));
        assert!(!stored_bytes.windows(2).any(|w| w == b"s1"));
    }

    #[test]
    fn irrevocable_views_merge_on_chain_per_tx() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(3);
        let mut mgr: EncryptionBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Irrevocable,
            &mut rng,
        )
        .unwrap();
        let h0 = chain.height();
        mgr.invoke_with_secret(&mut chain, &client, &shipment("W1", b"s"), &mut rng)
            .unwrap();
        // Two blocks: the invoke and the merge (Fig 6: 2 on-chain txs per
        // request for irrevocable views without the TxListContract).
        assert_eq!(chain.height(), h0 + 2);
        assert_eq!(contracts::read_view_storage(chain.state(), "V").len(), 1);
    }

    #[test]
    fn txlist_batches_defer_onchain_work() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(4);
        let mut mgr: EncryptionBasedManager = ViewManager::new(owner, true);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Irrevocable,
            &mut rng,
        )
        .unwrap();
        let h0 = chain.height();
        for i in 0..5u8 {
            mgr.invoke_with_secret(&mut chain, &client, &shipment("W1", &[i]), &mut rng)
                .unwrap();
        }
        // Only the 5 invoke transactions hit the chain so far.
        assert_eq!(chain.height(), h0 + 5);
        assert_eq!(mgr.txlist_pending_len(), 5);
        // Flush: one add_batch + one merge.
        let txs = mgr.flush(&mut chain, &mut rng).unwrap();
        assert_eq!(txs, 2);
        assert_eq!(mgr.txlist_pending_len(), 0);
        assert_eq!(
            contracts::read_view_txlist(chain.state(), "V")
                .unwrap()
                .len(),
            5
        );
        assert_eq!(contracts::read_view_storage(chain.state(), "V").len(), 5);
    }

    #[test]
    fn maybe_flush_respects_interval() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(5);
        let mut mgr: HashBasedManager = ViewManager::new(owner, true);
        mgr.set_flush_interval_us(30_000_000);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        mgr.invoke_with_secret(&mut chain, &client, &shipment("W1", b"x"), &mut rng)
            .unwrap();
        // 10 s: too early.
        assert_eq!(
            mgr.maybe_flush(&mut chain, 10_000_000, &mut rng).unwrap(),
            0
        );
        assert_eq!(mgr.txlist_pending_len(), 1);
        // 31 s: flush happens.
        assert_eq!(
            mgr.maybe_flush(&mut chain, 31_000_000, &mut rng).unwrap(),
            1
        );
        assert_eq!(mgr.txlist_pending_len(), 0);
    }

    #[test]
    fn grant_publishes_sealed_key() {
        let (mut chain, owner, _) = test_chain();
        let mut rng = seeded(6);
        let mut mgr: EncryptionBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        let bob = ledgerview_crypto::EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, "V", bob.public(), &mut rng)
            .unwrap();

        let gen = contracts::read_access_generation(chain.state(), "V").unwrap();
        let entries = contracts::read_access_payload(chain.state(), "V", gen).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].recipient, bob.public());
        // Bob can unseal K_V; it matches the manager's.
        let kv = ledgerview_crypto::open(&bob, &entries[0].sealed_key).unwrap();
        assert_eq!(kv, mgr.view_key("V").unwrap().as_bytes());
    }

    #[test]
    fn revoke_rotates_key_and_excludes_user() {
        let (mut chain, owner, _) = test_chain();
        let mut rng = seeded(7);
        let mut mgr: HashBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        let bob = ledgerview_crypto::EncryptionKeyPair::generate(&mut rng);
        let carol = ledgerview_crypto::EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, "V", bob.public(), &mut rng)
            .unwrap();
        mgr.grant_access(&mut chain, "V", carol.public(), &mut rng)
            .unwrap();
        let old_key = *mgr.view_key("V").unwrap();

        mgr.revoke_access(&mut chain, "V", &bob.public(), &mut rng)
            .unwrap();
        let new_key = *mgr.view_key("V").unwrap();
        assert_ne!(old_key.as_bytes(), new_key.as_bytes());
        assert_eq!(mgr.members("V").unwrap(), &[carol.public()]);

        // The latest generation only reaches carol, with the new key.
        let gen = contracts::read_access_generation(chain.state(), "V").unwrap();
        let entries = contracts::read_access_payload(chain.state(), "V", gen).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].recipient, carol.public());
        assert!(ledgerview_crypto::open(&bob, &entries[0].sealed_key).is_err());
        assert_eq!(
            ledgerview_crypto::open(&carol, &entries[0].sealed_key).unwrap(),
            new_key.as_bytes()
        );
    }

    #[test]
    fn revoking_irrevocable_fails() {
        let (mut chain, owner, _) = test_chain();
        let mut rng = seeded(8);
        let mut mgr: EncryptionBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Irrevocable,
            &mut rng,
        )
        .unwrap();
        let bob = ledgerview_crypto::EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, "V", bob.public(), &mut rng)
            .unwrap();
        assert!(matches!(
            mgr.revoke_access(&mut chain, "V", &bob.public(), &mut rng),
            Err(ViewError::ModeMismatch(_))
        ));
    }

    #[test]
    fn query_denied_for_non_members() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(9);
        let mut mgr: EncryptionBasedManager = ViewManager::new(owner, false);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        mgr.invoke_with_secret(&mut chain, &client, &shipment("W1", b"s"), &mut rng)
            .unwrap();
        let eve = ledgerview_crypto::EncryptionKeyPair::generate(&mut rng);
        assert!(matches!(
            mgr.query_view("V", &eve.public(), None, &mut rng),
            Err(ViewError::AccessDenied(_))
        ));
    }

    #[test]
    fn telemetry_times_view_lifecycle_per_scheme() {
        let (mut chain, owner, client) = test_chain();
        let mut rng = seeded(11);
        let telemetry = Telemetry::wall_clock();
        let mut mgr: EncryptionBasedManager = ViewManager::new(owner, false);
        mgr.set_telemetry(&telemetry);
        mgr.create_view(
            &mut chain,
            "V",
            ViewPredicate::True,
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
        mgr.invoke_with_secret(&mut chain, &client, &shipment("W1", b"s"), &mut rng)
            .unwrap();
        let bob = ledgerview_crypto::EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, "V", bob.public(), &mut rng)
            .unwrap();
        mgr.query_view("V", &bob.public(), None, &mut rng).unwrap();

        let r = telemetry.registry();
        let labels = [("scheme", "encryption")];
        for name in [
            "lv_views_create_seconds",
            "lv_views_invoke_seconds",
            "lv_views_query_seconds",
        ] {
            let h = r.histogram(name, &labels);
            assert_eq!(h.histogram().count(), 1, "{name}");
        }
        assert_eq!(r.counter("lv_views_conceal_total", &labels).get(), 1);
        let spans = telemetry.tracer().recent();
        for name in ["view.create", "view.invoke", "view.query"] {
            assert!(spans.iter().any(|s| s.name == name), "missing span {name}");
        }
    }

    #[test]
    fn unknown_view_operations_fail() {
        let (mut chain, owner, _) = test_chain();
        let mut rng = seeded(10);
        let mut mgr: EncryptionBasedManager = ViewManager::new(owner, false);
        let user = ledgerview_crypto::EncryptionKeyPair::generate(&mut rng);
        assert!(matches!(
            mgr.grant_access(&mut chain, "ghost", user.public(), &mut rng),
            Err(ViewError::UnknownView(_))
        ));
        assert!(mgr.view_key("ghost").is_err());
        assert!(mgr.view_tids("ghost").is_err());
    }
}

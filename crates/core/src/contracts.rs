//! The on-chain side of LedgerView: four chaincodes.
//!
//! * [`InvokeContract`] — `InvokeWithSecret`: stores concealed client
//!   transactions under their transaction id (§5.3).
//! * [`ViewStorageContract`] — `Init` / `Merge` over per-view encrypted
//!   entries; used by irrevocable views so the blockchain protects view
//!   integrity (§5.3, *View Storage Contract*).
//! * [`TxListContract`] — the per-view transaction-id lists with batched
//!   updates used for efficient completeness verification (§5.4).
//! * [`AccessContract`] — on-chain dissemination: `V_access` generations
//!   (sealed view keys) and the transparent RBAC relations `A_r`, `A_p`
//!   (§4.6).
//!
//! All state keys use `~`-separated prefixes so membership and integrity
//! can be checked with range scans.

use fabric_sim::chaincode::{Chaincode, TxContext};
use fabric_sim::ledger::TxId;
use fabric_sim::statedb::VersionedState;
use fabric_sim::wire::{Reader, Writer};
use fabric_sim::FabricError;
use ledgerview_crypto::keys::PublicKey;
use ledgerview_crypto::sha256::Digest;

use crate::error::ViewError;
use crate::predicate::{ViewDefinition, ViewPredicate};

/// Chaincode name for [`InvokeContract`].
pub const INVOKE_CC: &str = "lv.invoke";
/// Chaincode name for [`ViewStorageContract`].
pub const VIEW_STORAGE_CC: &str = "lv.viewstorage";
/// Chaincode name for [`TxListContract`].
pub const TX_LIST_CC: &str = "lv.txlist";
/// Chaincode name for [`AccessContract`].
pub const ACCESS_CC: &str = "lv.access";

/// State key of a stored client transaction.
pub fn tx_state_key(tid: &TxId) -> String {
    format!("tx~{}", tid.to_hex())
}

fn arg(args: &[Vec<u8>], i: usize) -> Result<&[u8], FabricError> {
    args.get(i)
        .map(|a| a.as_slice())
        .ok_or_else(|| FabricError::Malformed(format!("missing argument {i}")))
}

fn arg_str(args: &[Vec<u8>], i: usize) -> Result<String, FabricError> {
    String::from_utf8(arg(args, i)?.to_vec())
        .map_err(|_| FabricError::Malformed(format!("argument {i} not UTF-8")))
}

// ---------------------------------------------------------------------
// InvokeContract
// ---------------------------------------------------------------------

/// Stores concealed client transactions on the ledger.
pub struct InvokeContract;

impl Chaincode for InvokeContract {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, FabricError> {
        match function {
            "invoke_with_secret" => {
                let stored = arg(args, 0)?.to_vec();
                let key = tx_state_key(&ctx.tx_id());
                ctx.put_state(key, stored);
                Ok(ctx.tx_id().0.as_bytes().to_vec())
            }
            other => Err(FabricError::ChaincodeError(format!(
                "InvokeContract: unknown function {other}"
            ))),
        }
    }
}

/// Read a stored transaction's bytes from committed state.
pub fn read_stored_tx(state: &dyn VersionedState, tid: &TxId) -> Option<Vec<u8>> {
    state.get(&tx_state_key(tid))
}

// ---------------------------------------------------------------------
// ViewStorageContract
// ---------------------------------------------------------------------

/// Per-view encrypted entries for irrevocable views.
pub struct ViewStorageContract;

fn vs_meta_key(view: &str) -> String {
    format!("vs~meta~{view}")
}

fn vs_entry_key(view: &str, entry: &str) -> String {
    format!("vs~data~{view}~{entry}")
}

/// Encode a batch of `(entry_key, value)` pairs for `merge`.
pub fn encode_merge_entries(entries: &[(String, Vec<u8>)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(entries.len() as u32);
    for (k, v) in entries {
        w.string(k).bytes(v);
    }
    w.into_bytes()
}

fn decode_merge_entries(bytes: &[u8]) -> Result<Vec<(String, Vec<u8>)>, FabricError> {
    let mut r = Reader::new(bytes);
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push((r.string()?, r.bytes()?));
    }
    r.finish()?;
    Ok(out)
}

fn merge_into(
    ctx: &mut TxContext<'_>,
    view: &str,
    entries: Vec<(String, Vec<u8>)>,
) -> Result<u32, FabricError> {
    if ctx.get_state(&vs_meta_key(view)).is_none() {
        return Err(FabricError::ChaincodeError(format!(
            "view {view:?} not initialised"
        )));
    }
    let mut added = 0u32;
    for (entry, value) in entries {
        let key = vs_entry_key(view, &entry);
        // Merge semantics: only missing keys are added (§5.3).
        if ctx.get_state(&key).is_none() {
            ctx.put_state(key, value);
            added += 1;
        }
    }
    Ok(added)
}

/// One view's merge batch: `(view name, [(state key, sealed entry)])`.
pub type MergeBatch = (String, Vec<(String, Vec<u8>)>);

/// Encode per-view merge batches for `merge_multi`.
pub fn encode_multi_merge(batches: &[MergeBatch]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(batches.len() as u32);
    for (view, entries) in batches {
        w.string(view).bytes(&encode_merge_entries(entries));
    }
    w.into_bytes()
}

fn decode_multi_merge(bytes: &[u8]) -> Result<Vec<MergeBatch>, FabricError> {
    let mut r = Reader::new(bytes);
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let view = r.string()?;
        let entries = decode_merge_entries(&r.bytes()?)?;
        out.push((view, entries));
    }
    r.finish()?;
    Ok(out)
}

impl Chaincode for ViewStorageContract {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, FabricError> {
        match function {
            "init" => {
                let view = arg_str(args, 0)?;
                let key = vs_meta_key(&view);
                if ctx.get_state(&key).is_some() {
                    return Err(FabricError::ChaincodeError(format!(
                        "view {view:?} already initialised"
                    )));
                }
                ctx.put_state(key, vec![1]);
                Ok(vec![])
            }
            "merge" => {
                let view = arg_str(args, 0)?;
                let added = merge_into(ctx, &view, decode_merge_entries(arg(args, 1)?)?)?;
                Ok(added.to_be_bytes().to_vec())
            }
            // One transaction carrying the merge entries of *several* views
            // — this is why an irrevocable request costs exactly one extra
            // on-chain transaction regardless of how many views it joins
            // (§6.3: "the number of on-chain transactions is doubled").
            "merge_multi" => {
                let batches = decode_multi_merge(arg(args, 0)?)?;
                let mut added = 0u32;
                for (view, entries) in batches {
                    added += merge_into(ctx, &view, entries)?;
                }
                Ok(added.to_be_bytes().to_vec())
            }
            other => Err(FabricError::ChaincodeError(format!(
                "ViewStorageContract: unknown function {other}"
            ))),
        }
    }
}

/// Read all entries of an irrevocable view from committed state, in entry
/// key order.
pub fn read_view_storage(state: &dyn VersionedState, view: &str) -> Vec<(String, Vec<u8>)> {
    let prefix = format!("vs~data~{view}~");
    state
        .prefix_scan(&prefix)
        .into_iter()
        .map(|(k, v)| (k[prefix.len()..].to_string(), v))
        .collect()
}

/// Whether an irrevocable view was initialised on-chain.
pub fn view_storage_initialised(state: &dyn VersionedState, view: &str) -> bool {
    state.get(&vs_meta_key(view)).is_some()
}

// ---------------------------------------------------------------------
// TxListContract
// ---------------------------------------------------------------------

/// Maintains per-view transaction-id lists plus the view predicates
/// (completeness support, §5.4).
pub struct TxListContract;

fn tl_pred_key(view: &str) -> String {
    format!("tl~pred~{view}")
}

fn tl_count_key(view: &str) -> String {
    format!("tl~cnt~{view}")
}

fn tl_id_key(view: &str, seq: u64) -> String {
    format!("tl~ids~{view}~{seq:016x}")
}

fn tl_flush_key() -> String {
    "tl~lastflush".to_string()
}

/// One batched update: a transaction id recorded for a view at a time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxListUpdate {
    /// The view name.
    pub view: String,
    /// The included transaction.
    pub tid: TxId,
    /// Insertion timestamp (µs of virtual time).
    pub timestamp_us: u64,
}

/// Encode a flush batch.
pub fn encode_txlist_batch(updates: &[TxListUpdate]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(updates.len() as u32);
    for u in updates {
        w.string(&u.view)
            .array(u.tid.0.as_bytes())
            .u64(u.timestamp_us);
    }
    w.into_bytes()
}

fn decode_txlist_batch(bytes: &[u8]) -> Result<Vec<TxListUpdate>, FabricError> {
    let mut r = Reader::new(bytes);
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(TxListUpdate {
            view: r.string()?,
            tid: TxId(Digest(r.array::<32>()?)),
            timestamp_us: r.u64()?,
        });
    }
    r.finish()?;
    Ok(out)
}

impl Chaincode for TxListContract {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, FabricError> {
        match function {
            "create_view" => {
                let view = arg_str(args, 0)?;
                let pred = arg(args, 1)?.to_vec();
                let key = tl_pred_key(&view);
                if ctx.get_state(&key).is_some() {
                    return Err(FabricError::ChaincodeError(format!(
                        "view {view:?} already registered"
                    )));
                }
                ctx.put_state(key, pred);
                ctx.put_state(tl_count_key(&view), 0u64.to_be_bytes().to_vec());
                Ok(vec![])
            }
            "add_batch" => {
                let updates = decode_txlist_batch(arg(args, 0)?)?;
                let mut max_ts = 0u64;
                for u in &updates {
                    let cnt_key = tl_count_key(&u.view);
                    let count = match ctx.get_state(&cnt_key) {
                        Some(bytes) => u64::from_be_bytes(
                            bytes
                                .try_into()
                                .map_err(|_| FabricError::Malformed("bad count".into()))?,
                        ),
                        None => {
                            return Err(FabricError::ChaincodeError(format!(
                                "view {:?} not registered",
                                u.view
                            )))
                        }
                    };
                    let mut w = Writer::new();
                    w.array(u.tid.0.as_bytes()).u64(u.timestamp_us);
                    ctx.put_state(tl_id_key(&u.view, count), w.into_bytes());
                    ctx.put_state(cnt_key, (count + 1).to_be_bytes().to_vec());
                    max_ts = max_ts.max(u.timestamp_us);
                }
                ctx.put_state(tl_flush_key(), max_ts.to_be_bytes().to_vec());
                Ok((updates.len() as u32).to_be_bytes().to_vec())
            }
            other => Err(FabricError::ChaincodeError(format!(
                "TxListContract: unknown function {other}"
            ))),
        }
    }
}

/// Read a view's registered definition from committed state.
pub fn read_view_definition(
    state: &dyn VersionedState,
    view: &str,
) -> Result<ViewDefinition, ViewError> {
    let bytes = state
        .get(&tl_pred_key(view))
        .ok_or_else(|| ViewError::UnknownView(view.to_string()))?;
    ViewDefinition::from_bytes(&bytes)
}

/// Read a view's per-transaction predicate; errors if the view has a
/// recursive definition (use [`read_view_definition`] then).
pub fn read_view_predicate(
    state: &dyn VersionedState,
    view: &str,
) -> Result<ViewPredicate, ViewError> {
    match read_view_definition(state, view)? {
        ViewDefinition::PerTx(p) => Ok(p),
        ViewDefinition::Recursive { .. } => Err(ViewError::Malformed(format!(
            "view {view:?} has a recursive definition"
        ))),
    }
}

/// Read a view's transaction-id list `(tid, timestamp)` in insertion order.
pub fn read_view_txlist(
    state: &dyn VersionedState,
    view: &str,
) -> Result<Vec<(TxId, u64)>, ViewError> {
    if state.get(&tl_pred_key(view)).is_none() {
        return Err(ViewError::UnknownView(view.to_string()));
    }
    let prefix = format!("tl~ids~{view}~");
    let mut out = Vec::new();
    for (_, v) in state.prefix_scan(&prefix) {
        let mut r = Reader::new(&v);
        let tid = TxId(Digest(r.array::<32>().map_err(ViewError::Fabric)?));
        let ts = r.u64().map_err(ViewError::Fabric)?;
        out.push((tid, ts));
    }
    Ok(out)
}

/// The timestamp of the last flush (completeness horizon T, §5.4).
pub fn read_last_flush(state: &dyn VersionedState) -> Option<u64> {
    state
        .get(&tl_flush_key())
        .and_then(|b| b.try_into().ok().map(u64::from_be_bytes))
}

/// All views registered with the TxListContract.
pub fn read_registered_views(state: &dyn VersionedState) -> Vec<String> {
    let prefix = "tl~pred~";
    state
        .prefix_scan(prefix)
        .into_iter()
        .map(|(k, _)| k[prefix.len()..].to_string())
        .collect()
}

// ---------------------------------------------------------------------
// AccessContract
// ---------------------------------------------------------------------

/// On-chain dissemination of view keys and the RBAC relations.
pub struct AccessContract;

fn va_gen_key(view: &str) -> String {
    format!("va~gen~{view}")
}

fn va_payload_key(view: &str, generation: u64) -> String {
    format!("va~data~{view}~{generation:016x}")
}

fn rbac_users_key(role: &str) -> String {
    format!("rbac~ar~{role}")
}

fn rbac_views_key(role: &str) -> String {
    format!("rbac~ap~{role}")
}

fn rbac_rolekey_key(role: &str) -> String {
    format!("rbac~key~{role}")
}

/// One sealed view-key entry of a `V_access` generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessEntry {
    /// The grantee's public key (or a role public key, §4.6).
    pub recipient: PublicKey,
    /// `enc(K_V, PubK_recipient)` — hybrid-sealed view key.
    pub sealed_key: Vec<u8>,
}

/// Encode a `V_access` payload.
pub fn encode_access_payload(entries: &[AccessEntry]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(entries.len() as u32);
    for e in entries {
        w.array(e.recipient.as_bytes()).bytes(&e.sealed_key);
    }
    w.into_bytes()
}

/// Decode a `V_access` payload.
pub fn decode_access_payload(bytes: &[u8]) -> Result<Vec<AccessEntry>, ViewError> {
    let mut r = Reader::new(bytes);
    let n = r.u32().map_err(ViewError::Fabric)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(AccessEntry {
            recipient: PublicKey(r.array::<32>().map_err(ViewError::Fabric)?),
            sealed_key: r.bytes().map_err(ViewError::Fabric)?,
        });
    }
    r.finish().map_err(ViewError::Fabric)?;
    Ok(out)
}

/// Encode a list of strings (role→views) or keys (role→users).
pub fn encode_string_list(items: &[String]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(items.len() as u32);
    for s in items {
        w.string(s);
    }
    w.into_bytes()
}

fn decode_string_list(bytes: &[u8]) -> Result<Vec<String>, FabricError> {
    let mut r = Reader::new(bytes);
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(r.string()?);
    }
    r.finish()?;
    Ok(out)
}

/// Encode a list of public keys.
pub fn encode_key_list(keys: &[PublicKey]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(keys.len() as u32);
    for k in keys {
        w.array(k.as_bytes());
    }
    w.into_bytes()
}

fn decode_key_list(bytes: &[u8]) -> Result<Vec<PublicKey>, FabricError> {
    let mut r = Reader::new(bytes);
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(PublicKey(r.array::<32>()?));
    }
    r.finish()?;
    Ok(out)
}

impl Chaincode for AccessContract {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, FabricError> {
        match function {
            "publish_access" => {
                let view = arg_str(args, 0)?;
                let payload = arg(args, 1)?.to_vec();
                // Sanity: payload must decode.
                decode_access_payload(&payload)
                    .map_err(|_| FabricError::Malformed("bad access payload".into()))?;
                let gen = match ctx.get_state(&va_gen_key(&view)) {
                    Some(bytes) => {
                        u64::from_be_bytes(
                            bytes
                                .try_into()
                                .map_err(|_| FabricError::Malformed("bad generation".into()))?,
                        ) + 1
                    }
                    None => 0,
                };
                ctx.put_state(va_gen_key(&view), gen.to_be_bytes().to_vec());
                ctx.put_state(va_payload_key(&view, gen), payload);
                Ok(gen.to_be_bytes().to_vec())
            }
            "set_role_users" => {
                let role = arg_str(args, 0)?;
                let payload = arg(args, 1)?.to_vec();
                decode_key_list(&payload)?;
                ctx.put_state(rbac_users_key(&role), payload);
                Ok(vec![])
            }
            "set_role_views" => {
                let role = arg_str(args, 0)?;
                let payload = arg(args, 1)?.to_vec();
                decode_string_list(&payload)?;
                ctx.put_state(rbac_views_key(&role), payload);
                Ok(vec![])
            }
            "set_role_key" => {
                let role = arg_str(args, 0)?;
                let key = arg(args, 1)?;
                if key.len() != 32 {
                    return Err(FabricError::Malformed("role key must be 32 bytes".into()));
                }
                ctx.put_state(rbac_rolekey_key(&role), key.to_vec());
                Ok(vec![])
            }
            other => Err(FabricError::ChaincodeError(format!(
                "AccessContract: unknown function {other}"
            ))),
        }
    }
}

/// Latest `V_access` generation number of a view.
pub fn read_access_generation(state: &dyn VersionedState, view: &str) -> Option<u64> {
    state
        .get(&va_gen_key(view))
        .and_then(|b| b.try_into().ok().map(u64::from_be_bytes))
}

/// The `V_access` payload of a specific generation.
pub fn read_access_payload(
    state: &dyn VersionedState,
    view: &str,
    generation: u64,
) -> Result<Vec<AccessEntry>, ViewError> {
    let bytes = state
        .get(&va_payload_key(view, generation))
        .ok_or_else(|| ViewError::UnknownView(format!("{view} gen {generation}")))?;
    decode_access_payload(&bytes)
}

/// The transparent role→users relation `A_r` entry for a role.
pub fn read_role_users(
    state: &dyn VersionedState,
    role: &str,
) -> Result<Vec<PublicKey>, ViewError> {
    let bytes = state
        .get(&rbac_users_key(role))
        .ok_or_else(|| ViewError::UnknownView(format!("role {role}")))?;
    decode_key_list(&bytes).map_err(ViewError::Fabric)
}

/// The transparent role→views relation `A_p` entry for a role.
pub fn read_role_views(state: &dyn VersionedState, role: &str) -> Result<Vec<String>, ViewError> {
    let bytes = state
        .get(&rbac_views_key(role))
        .ok_or_else(|| ViewError::UnknownView(format!("role {role}")))?;
    decode_string_list(&bytes).map_err(ViewError::Fabric)
}

/// The public key registered for a role.
pub fn read_role_key(state: &dyn VersionedState, role: &str) -> Result<PublicKey, ViewError> {
    let bytes = state
        .get(&rbac_rolekey_key(role))
        .ok_or_else(|| ViewError::UnknownView(format!("role {role}")))?;
    let arr: [u8; 32] = bytes
        .try_into()
        .map_err(|_| ViewError::Malformed("role key size".into()))?;
    Ok(PublicKey(arr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::endorsement::EndorsementPolicy;
    use fabric_sim::identity::OrgId;
    use fabric_sim::FabricChain;
    use ledgerview_crypto::rng::seeded;

    fn chain() -> (FabricChain, fabric_sim::Identity) {
        let mut rng = seeded(1);
        let mut chain = FabricChain::new(&["Org1"], &mut rng);
        let policy = EndorsementPolicy::AnyOf(chain.org_ids());
        chain.deploy(INVOKE_CC, Box::new(InvokeContract), policy.clone());
        chain.deploy(
            VIEW_STORAGE_CC,
            Box::new(ViewStorageContract),
            policy.clone(),
        );
        chain.deploy(TX_LIST_CC, Box::new(TxListContract), policy.clone());
        chain.deploy(ACCESS_CC, Box::new(AccessContract), policy);
        let alice = chain
            .enroll(&OrgId::new("Org1"), "alice", &mut rng)
            .unwrap();
        (chain, alice)
    }

    #[test]
    fn invoke_contract_stores_under_tid() {
        let (mut chain, alice) = chain();
        let mut rng = seeded(2);
        let res = chain
            .invoke_commit(
                &alice,
                INVOKE_CC,
                "invoke_with_secret",
                vec![b"payload".to_vec()],
                &mut rng,
            )
            .unwrap();
        assert_eq!(
            read_stored_tx(chain.state(), &res.tx_id).unwrap(),
            b"payload"
        );
        assert_eq!(res.response, res.tx_id.0.as_bytes());
    }

    #[test]
    fn view_storage_init_and_merge() {
        let (mut chain, alice) = chain();
        let mut rng = seeded(3);
        chain
            .invoke_commit(
                &alice,
                VIEW_STORAGE_CC,
                "init",
                vec![b"V1".to_vec()],
                &mut rng,
            )
            .unwrap();
        assert!(view_storage_initialised(chain.state(), "V1"));
        assert!(!view_storage_initialised(chain.state(), "V2"));

        // Double init fails.
        assert!(chain
            .invoke(
                &alice,
                VIEW_STORAGE_CC,
                "init",
                vec![b"V1".to_vec()],
                &mut rng
            )
            .is_err());

        let entries = vec![
            ("0001".to_string(), b"enc-entry-1".to_vec()),
            ("0002".to_string(), b"enc-entry-2".to_vec()),
        ];
        chain
            .invoke_commit(
                &alice,
                VIEW_STORAGE_CC,
                "merge",
                vec![b"V1".to_vec(), encode_merge_entries(&entries)],
                &mut rng,
            )
            .unwrap();
        assert_eq!(read_view_storage(chain.state(), "V1"), entries);

        // Merge is idempotent on existing keys.
        let overwrite = vec![("0001".to_string(), b"evil".to_vec())];
        chain
            .invoke_commit(
                &alice,
                VIEW_STORAGE_CC,
                "merge",
                vec![b"V1".to_vec(), encode_merge_entries(&overwrite)],
                &mut rng,
            )
            .unwrap();
        assert_eq!(read_view_storage(chain.state(), "V1")[0].1, b"enc-entry-1");
    }

    #[test]
    fn merge_requires_init() {
        let (mut chain, alice) = chain();
        let mut rng = seeded(4);
        let err = chain.invoke(
            &alice,
            VIEW_STORAGE_CC,
            "merge",
            vec![b"nope".to_vec(), encode_merge_entries(&[])],
            &mut rng,
        );
        assert!(err.is_err());
    }

    #[test]
    fn txlist_create_and_batches() {
        let (mut chain, alice) = chain();
        let mut rng = seeded(5);
        let pred = ViewPredicate::attr_eq("to", "W1");
        let def = ViewDefinition::PerTx(pred.clone());
        chain
            .invoke_commit(
                &alice,
                TX_LIST_CC,
                "create_view",
                vec![b"V1".to_vec(), def.to_bytes()],
                &mut rng,
            )
            .unwrap();
        assert_eq!(read_view_predicate(chain.state(), "V1").unwrap(), pred);
        assert_eq!(read_registered_views(chain.state()), vec!["V1".to_string()]);

        let tid = |n: u8| TxId(ledgerview_crypto::sha256::sha256(&[n]));
        let batch = vec![
            TxListUpdate {
                view: "V1".into(),
                tid: tid(1),
                timestamp_us: 100,
            },
            TxListUpdate {
                view: "V1".into(),
                tid: tid(2),
                timestamp_us: 200,
            },
        ];
        chain
            .invoke_commit(
                &alice,
                TX_LIST_CC,
                "add_batch",
                vec![encode_txlist_batch(&batch)],
                &mut rng,
            )
            .unwrap();
        let list = read_view_txlist(chain.state(), "V1").unwrap();
        assert_eq!(list, vec![(tid(1), 100), (tid(2), 200)]);
        assert_eq!(read_last_flush(chain.state()), Some(200));

        // Second batch appends in order.
        let batch2 = vec![TxListUpdate {
            view: "V1".into(),
            tid: tid(3),
            timestamp_us: 300,
        }];
        chain
            .invoke_commit(
                &alice,
                TX_LIST_CC,
                "add_batch",
                vec![encode_txlist_batch(&batch2)],
                &mut rng,
            )
            .unwrap();
        assert_eq!(read_view_txlist(chain.state(), "V1").unwrap().len(), 3);
    }

    #[test]
    fn txlist_unknown_view_rejected() {
        let (mut chain, alice) = chain();
        let mut rng = seeded(6);
        let batch = vec![TxListUpdate {
            view: "ghost".into(),
            tid: TxId(ledgerview_crypto::sha256::sha256(b"x")),
            timestamp_us: 1,
        }];
        assert!(chain
            .invoke(
                &alice,
                TX_LIST_CC,
                "add_batch",
                vec![encode_txlist_batch(&batch)],
                &mut rng
            )
            .is_err());
        assert!(read_view_txlist(chain.state(), "ghost").is_err());
    }

    #[test]
    fn access_generations_advance() {
        let (mut chain, alice) = chain();
        let mut rng = seeded(7);
        let user = ledgerview_crypto::EncryptionKeyPair::generate(&mut rng);
        let entry = AccessEntry {
            recipient: user.public(),
            sealed_key: b"sealed".to_vec(),
        };
        let payload = encode_access_payload(std::slice::from_ref(&entry));
        chain
            .invoke_commit(
                &alice,
                ACCESS_CC,
                "publish_access",
                vec![b"V1".to_vec(), payload.clone()],
                &mut rng,
            )
            .unwrap();
        assert_eq!(read_access_generation(chain.state(), "V1"), Some(0));
        assert_eq!(
            read_access_payload(chain.state(), "V1", 0).unwrap(),
            vec![entry.clone()]
        );

        chain
            .invoke_commit(
                &alice,
                ACCESS_CC,
                "publish_access",
                vec![b"V1".to_vec(), payload],
                &mut rng,
            )
            .unwrap();
        assert_eq!(read_access_generation(chain.state(), "V1"), Some(1));
        // Old generations remain (append-only ledger).
        assert!(read_access_payload(chain.state(), "V1", 0).is_ok());
    }

    #[test]
    fn rbac_relations_round_trip() {
        let (mut chain, alice) = chain();
        let mut rng = seeded(8);
        let u1 = ledgerview_crypto::EncryptionKeyPair::generate(&mut rng).public();
        let u2 = ledgerview_crypto::EncryptionKeyPair::generate(&mut rng).public();
        chain
            .invoke_commit(
                &alice,
                ACCESS_CC,
                "set_role_users",
                vec![b"nurse".to_vec(), encode_key_list(&[u1, u2])],
                &mut rng,
            )
            .unwrap();
        chain
            .invoke_commit(
                &alice,
                ACCESS_CC,
                "set_role_views",
                vec![
                    b"nurse".to_vec(),
                    encode_string_list(&["records".to_string(), "meds".to_string()]),
                ],
                &mut rng,
            )
            .unwrap();
        chain
            .invoke_commit(
                &alice,
                ACCESS_CC,
                "set_role_key",
                vec![b"nurse".to_vec(), u1.as_bytes().to_vec()],
                &mut rng,
            )
            .unwrap();
        assert_eq!(
            read_role_users(chain.state(), "nurse").unwrap(),
            vec![u1, u2]
        );
        assert_eq!(
            read_role_views(chain.state(), "nurse").unwrap(),
            vec!["records".to_string(), "meds".to_string()]
        );
        assert_eq!(read_role_key(chain.state(), "nurse").unwrap(), u1);
        assert!(read_role_users(chain.state(), "ghost").is_err());
    }

    #[test]
    fn malformed_payloads_rejected() {
        let (mut chain, alice) = chain();
        let mut rng = seeded(9);
        assert!(chain
            .invoke(
                &alice,
                ACCESS_CC,
                "publish_access",
                vec![b"V".to_vec(), b"garbage".to_vec()],
                &mut rng
            )
            .is_err());
        assert!(chain
            .invoke(
                &alice,
                ACCESS_CC,
                "set_role_key",
                vec![b"r".to_vec(), vec![0u8; 31]],
                &mut rng
            )
            .is_err());
        assert!(chain
            .invoke(&alice, INVOKE_CC, "nonexistent", vec![], &mut rng)
            .is_err());
    }
}

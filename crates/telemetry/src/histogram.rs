//! Lock-free log-linear-bucket histograms.
//!
//! Values are `u64` in whatever unit the caller picks (the stack records
//! durations in microseconds). Buckets are *log-linear*: each power-of-two
//! magnitude is split into [`SUB_BUCKETS`] linear sub-buckets, so a
//! recorded value lands in a bucket whose width is at most `1/16` of the
//! value — quantile estimates carry ≤ 6.25 % relative error while the
//! whole table stays under 1000 `AtomicU64`s. `count`, `sum`, `min` and
//! `max` are tracked exactly, so `mean()` and `max()` are precise and only
//! intermediate quantiles are approximate (property-tested against the
//! exact nearest-rank quantile in this crate's tests).
//!
//! Every operation is a handful of relaxed atomic ops: recording from many
//! worker threads never takes a lock, and a histogram that nobody records
//! into costs nothing but memory.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two magnitude (`2^SUB_BITS`).
pub const SUB_BUCKETS: u64 = 16;
const SUB_BITS: u32 = 4;
/// Total buckets: values `0..16` get unit-width buckets, then 60 magnitude
/// groups of 16 sub-buckets cover the rest of the `u64` range.
const N_BUCKETS: usize = SUB_BUCKETS as usize + (SUB_BUCKETS as usize) * (64 - SUB_BITS as usize);

/// Bucket index of a value. Exact for `v < 16`, ≤ 6.25 % wide above.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let mag = 63 - v.leading_zeros(); // mag >= SUB_BITS
    let group = (mag - SUB_BITS) as usize;
    let sub = ((v >> (mag - SUB_BITS)) & (SUB_BUCKETS - 1)) as usize;
    SUB_BUCKETS as usize + group * SUB_BUCKETS as usize + sub
}

/// Smallest value that lands in bucket `index` (inverse of
/// [`bucket_index`]). Saturates at `u64::MAX` past the last bucket.
fn bucket_lower_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        return index as u64;
    }
    let group = (index - SUB_BUCKETS as usize) / SUB_BUCKETS as usize;
    let sub = ((index - SUB_BUCKETS as usize) % SUB_BUCKETS as usize) as u64;
    (SUB_BUCKETS + sub)
        .checked_shl(group as u32)
        .unwrap_or(u64::MAX)
}

/// Exclusive upper edge of bucket `index` (used for Prometheus `le`
/// boundaries). Saturates at `u64::MAX`.
pub(crate) fn bucket_upper_edge(index: usize) -> u64 {
    if index + 1 >= N_BUCKETS {
        u64::MAX
    } else {
        bucket_lower_bound(index + 1)
    }
}

/// A concurrent log-linear histogram.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating sum: a u64::MAX outlier must not wrap the mean of
        // everything recorded after it.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (saturating; exact unless it overflows u64).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest recorded value (0 if empty). Exact.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean (0 if empty). Exact (up to sum saturation).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum() as f64 / count as f64
    }

    /// The `q`-quantile by nearest rank over the buckets, clamped into
    /// `[min, max]` so degenerate cases (single sample, all-equal samples)
    /// are exact. 0 if empty.
    ///
    /// # Panics
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        if rank == count {
            return self.max(); // the top rank is tracked exactly
        }
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_lower_bound(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// A point-in-time copy for exposition.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// A frozen copy of a [`Histogram`], used by the exposition formats.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_index`]).
    buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Saturating sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 if empty).
    pub min: u64,
    /// Largest recorded value (0 if empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Non-empty buckets as `(exclusive upper edge, cumulative count)`, in
    /// increasing edge order — the shape Prometheus `le` buckets need.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cumulative += n;
            out.push((bucket_upper_edge(i), cumulative));
        }
        out
    }

    /// Mean of the snapshot (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank bucket quantile, clamped into `[min, max]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return self.max; // the top rank is tracked exactly
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_lower_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_invertible() {
        let mut last = None;
        for v in (0..2048u64).chain([1 << 20, 1 << 40, u64::MAX / 2, u64::MAX]) {
            let i = bucket_index(v);
            if let Some((lv, li)) = last {
                assert!(i >= li, "index not monotonic at {lv}->{v}");
            }
            let lower = bucket_lower_bound(i);
            assert!(lower <= v, "lower bound {lower} above value {v}");
            assert!(
                bucket_upper_edge(i) > v || bucket_upper_edge(i) == u64::MAX,
                "upper edge below value {v}"
            );
            // Relative bucket width bound: width <= v / 16 above 16.
            if v >= SUB_BUCKETS && bucket_upper_edge(i) != u64::MAX {
                let width = bucket_upper_edge(i) - lower;
                assert!(width <= v / SUB_BUCKETS + 1, "bucket too wide at {v}");
            }
            last = Some((v, i));
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert!(h.snapshot().cumulative_buckets().is_empty());
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let h = Histogram::new();
        h.record(12_345);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 12_345, "q={q}");
        }
        assert_eq!(h.mean(), 12_345.0);
        assert_eq!(h.min(), 12_345);
        assert_eq!(h.max(), 12_345);
    }

    #[test]
    fn values_straddling_bucket_boundaries() {
        // 16 is the first log-linear bucket, 15 the last exact one; 31/32
        // straddle a magnitude-group boundary.
        let h = Histogram::new();
        for v in [15u64, 16, 31, 32] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.25), 15);
        assert_eq!(h.quantile(0.5), 16);
        assert_eq!(h.quantile(0.75), 31);
        assert_eq!(h.quantile(1.0), 32);
        // Buckets are distinct: 4 non-empty buckets.
        assert_eq!(h.snapshot().cumulative_buckets().len(), 4);
    }

    #[test]
    fn u64_max_is_representable() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile(0.01), 0);
        // The sum saturates instead of wrapping.
        assert_eq!(h.sum(), u64::MAX);
        let buckets = h.snapshot().cumulative_buckets();
        assert_eq!(buckets.last().unwrap(), &(u64::MAX, 3));
    }

    #[test]
    fn quantiles_track_a_uniform_ramp_within_bucket_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - exact).abs() / exact;
            assert!(
                rel <= 1.0 / SUB_BUCKETS as f64,
                "q={q}: got {got}, rel {rel}"
            );
        }
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 5_000.5).abs() < 1e-9);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.max(), 39_999);
        assert_eq!(h.min(), 0);
    }
}

//! A small lint over Prometheus text expositions, run by CI against the
//! telemetry example's output.
//!
//! Checks the repo's naming contract rather than the full Prometheus
//! grammar: every metric is declared once, names follow
//! `lv_<subsystem>_<name>_<unit>`, counters end in `_total`, duration
//! histograms end in `_seconds` (or carry an explicit `_us`/`_bytes`-style
//! unit), gauges don't masquerade as counters, and no series line appears
//! twice.

use std::collections::{HashMap, HashSet};

/// Metric families the repo exports, i.e. the `<subsystem>` segment of
/// `lv_<subsystem>_<name>_<unit>`. A new crate-level family must be
/// registered here so a typo'd prefix (`lv_statdb_…`) fails the lint
/// instead of silently forking a family.
const KNOWN_SUBSYSTEMS: &[&str] = &[
    "bench", "chain", "cluster", "gateway", "pool", "shard", "simnet", "statedb", "storage",
    "trace", "validate", "views", "workload",
];

/// Lint `exposition` (Prometheus text format); returns one message per
/// problem, empty when clean.
pub fn lint_prometheus(exposition: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut seen_series: HashSet<String> = HashSet::new();

    for (lineno, line) in exposition.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                problems.push(format!("line {lineno}: malformed TYPE line"));
                continue;
            };
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                problems.push(format!("line {lineno}: metric `{name}` declared twice"));
            }
            lint_name(name, kind, lineno, &mut problems);
            continue;
        }
        if line.starts_with('#') {
            continue; // comments (quantile annotations etc.)
        }
        // Sample line: name{labels} value
        let series = match line.rfind(' ') {
            Some(i) => &line[..i],
            None => {
                problems.push(format!("line {lineno}: sample line without a value"));
                continue;
            }
        };
        if !seen_series.insert(series.to_string()) {
            problems.push(format!("line {lineno}: duplicate series `{series}`"));
        }
        let name = series.split('{').next().unwrap_or(series);
        let declared = base_name(name, &types);
        match declared {
            Some(base) => {
                let kind = &types[&base];
                if kind == "histogram" && base == name {
                    problems.push(format!(
                        "line {lineno}: histogram `{name}` sampled without _bucket/_sum/_count"
                    ));
                }
            }
            None => problems.push(format!(
                "line {lineno}: series `{name}` has no preceding TYPE declaration"
            )),
        }
    }
    problems
}

/// Resolve a sample name to its declared family, accounting for histogram
/// `_bucket`/`_sum`/`_count` suffixes.
fn base_name(name: &str, types: &HashMap<String, String>) -> Option<String> {
    if types.contains_key(name) {
        return Some(name.to_string());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base.to_string());
            }
        }
    }
    None
}

fn lint_name(name: &str, kind: &str, lineno: usize, problems: &mut Vec<String>) {
    if !name.starts_with("lv_") {
        problems.push(format!(
            "line {lineno}: metric `{name}` does not start with `lv_`"
        ));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    {
        problems.push(format!(
            "line {lineno}: metric `{name}` has characters outside [a-z0-9_]"
        ));
    }
    if let Some(rest) = name.strip_prefix("lv_") {
        let subsystem = rest.split('_').next().unwrap_or("");
        if !KNOWN_SUBSYSTEMS.contains(&subsystem) {
            problems.push(format!(
                "line {lineno}: metric `{name}` uses unknown subsystem `{subsystem}` \
                 (register new families in promlint::KNOWN_SUBSYSTEMS)"
            ));
        }
    }
    match kind {
        "counter" => {
            if !name.ends_with("_total") {
                problems.push(format!(
                    "line {lineno}: counter `{name}` must end in `_total`"
                ));
            }
        }
        "gauge" => {
            if name.ends_with("_total") {
                problems.push(format!(
                    "line {lineno}: gauge `{name}` must not end in `_total`"
                ));
            }
        }
        "histogram" => {
            let has_unit = ["_seconds", "_us", "_bytes", "_txs", "_ratio"]
                .iter()
                .any(|u| name.ends_with(u));
            if !has_unit {
                problems.push(format!(
                    "line {lineno}: histogram `{name}` needs a unit suffix (e.g. `_seconds`)"
                ));
            }
        }
        other => problems.push(format!("line {lineno}: unknown metric kind `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn clean_registry_output_passes() {
        let r = MetricsRegistry::new();
        r.counter("lv_chain_txs_total", &[("channel", "a")]).inc();
        r.gauge("lv_pool_workers", &[]).set(4);
        let h = r.histogram("lv_chain_commit_seconds", &[]);
        h.observe(150);
        h.observe(90_000);
        let problems = lint_prometheus(&r.prometheus_text());
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn catches_suffix_violations() {
        let text = "\
# TYPE lv_bad_counter counter
lv_bad_counter 1
# TYPE lv_bad_gauge_total gauge
lv_bad_gauge_total 2
# TYPE lv_bad_hist histogram
lv_bad_hist_sum 0
lv_bad_hist_count 0
";
        let problems = lint_prometheus(text);
        assert!(
            problems.iter().any(|p| p.contains("must end in `_total`")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|p| p.contains("must not end in `_total`")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("unit suffix")),
            "{problems:?}"
        );
    }

    #[test]
    fn catches_duplicates_and_undeclared_names() {
        let text = "\
# TYPE lv_a_total counter
lv_a_total 1
lv_a_total 2
lv_mystery_total 3
# TYPE lv_a_total counter
";
        let problems = lint_prometheus(text);
        assert!(
            problems.iter().any(|p| p.contains("duplicate series")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("no preceding TYPE")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("declared twice")),
            "{problems:?}"
        );
    }

    #[test]
    fn statedb_and_trace_families_pass_but_unknown_subsystems_fail() {
        let r = MetricsRegistry::new();
        r.counter("lv_statedb_bloom_negatives_total", &[]).inc();
        r.gauge("lv_statedb_level_tables", &[("level", "0")]).set(3);
        r.histogram("lv_statedb_compaction_seconds", &[])
            .observe(12);
        r.counter("lv_trace_spans_total", &[]).inc();
        r.counter("lv_workload_submitted_total", &[("profile", "new_order")])
            .inc();
        r.histogram("lv_workload_invariant_check_us", &[])
            .observe(7);
        let problems = lint_prometheus(&r.prometheus_text());
        assert!(problems.is_empty(), "{problems:?}");

        let text = "# TYPE lv_statdb_flushes_total counter\nlv_statdb_flushes_total 1\n";
        let problems = lint_prometheus(text);
        assert!(
            problems
                .iter()
                .any(|p| p.contains("unknown subsystem `statdb`")),
            "{problems:?}"
        );
    }

    #[test]
    fn catches_non_lv_prefix() {
        let text = "# TYPE requests_total counter\nrequests_total 1\n";
        let problems = lint_prometheus(text);
        assert!(
            problems
                .iter()
                .any(|p| p.contains("does not start with `lv_`")),
            "{problems:?}"
        );
    }
}

//! End-to-end telemetry for the LedgerView stack: a lock-cheap metrics
//! registry, a span-based tracer, and flamegraph-ready exporters.
//!
//! The paper's whole evaluation is a story about *where time goes* —
//! endorsement vs. ordering vs. validation vs. view maintenance — and this
//! crate is how the running system answers that question without a new
//! ad-hoc benchmark per figure:
//!
//! * [`MetricsRegistry`] — named families of atomic [`Counter`]s,
//!   [`Gauge`]s and log-linear-bucket [`Histogram`]s (p50/p95/p99/max),
//!   with labels (per-channel, per-phase), exposed as Prometheus text
//!   ([`MetricsRegistry::prometheus_text`]) or JSON
//!   ([`MetricsRegistry::json_snapshot`]).
//! * [`Tracer`] — `tracer.span("validate.block")` guards with
//!   parent/child nesting, a bounded ring buffer of recent spans, and a
//!   Chrome `trace_event` exporter ([`Tracer::chrome_trace_json`]) whose
//!   output opens directly in `chrome://tracing` / Perfetto.
//! * [`ClockSource`] — spans are timed against either the wall clock
//!   ([`WallClock`]) or an externally driven virtual clock
//!   ([`VirtualClock`], fed by `simnet`'s `SimTime`), so traces of
//!   discrete-event runs show *virtual* phase timelines.
//! * [`promlint`] — the small in-repo lint CI runs over every exposition
//!   (unique names, `_total`/`_seconds` suffix conventions, known
//!   subsystem families).
//! * [`profiler`] — deterministic folded-stack (`flamegraph.pl`-ready)
//!   profiles and per-phase cost tables computed from the tracer's span
//!   buffer ([`profile_spans`]), plus [`TraceContext`] for cross-node
//!   causal traces whose ids derive from seeds rather than clocks.
//!
//! All hooks in the stack are gated on `Option<Telemetry>`: a chain or
//! channel built without telemetry pays a branch on a `None` and nothing
//! else, and recording never feeds back into commit outcomes — state roots
//! are bit-identical with telemetry on or off (property-tested in
//! `tests/telemetry.rs` at the workspace root).
//!
//! Metric names follow `lv_<subsystem>_<name>_<unit>`: counters end in
//! `_total`, duration histograms end in `_seconds` (recorded internally as
//! integer microseconds and scaled at exposition), and raw-microsecond
//! counters end in `_us_total`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod histogram;
pub mod profiler;
pub mod promlint;
pub mod registry;
pub mod tracer;

pub use clock::{ClockSource, VirtualClock, WallClock};
pub use histogram::{Histogram, HistogramSnapshot};
pub use profiler::{profile_spans, PhaseCost, Profile};
pub use registry::{Counter, Gauge, HistogramHandle, MetricsRegistry};
pub use tracer::{splitmix64, SpanGuard, SpanRecord, TraceContext, Tracer};

use std::sync::Arc;

/// The registry + tracer bundle threaded through the stack.
///
/// Cloning is cheap (two `Arc`s); clones share the same metrics and span
/// buffer, which is exactly what per-channel/per-subsystem wiring wants.
#[derive(Clone)]
pub struct Telemetry {
    registry: Arc<MetricsRegistry>,
    tracer: Arc<Tracer>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("metrics", &self.registry.len())
            .field("spans", &self.tracer.len())
            .finish()
    }
}

impl Telemetry {
    /// Default span ring-buffer capacity.
    pub const DEFAULT_SPAN_CAPACITY: usize = 16 * 1024;

    /// Telemetry timing spans against the wall clock.
    pub fn wall_clock() -> Telemetry {
        Telemetry::with_clock(Arc::new(WallClock::new()))
    }

    /// Telemetry timing spans against an explicit clock source (pass a
    /// [`VirtualClock`] to trace discrete-event runs in virtual time).
    pub fn with_clock(clock: Arc<dyn ClockSource>) -> Telemetry {
        Telemetry {
            registry: Arc::new(MetricsRegistry::new()),
            tracer: Arc::new(Tracer::new(clock, Self::DEFAULT_SPAN_CAPACITY)),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Open a timed span (convenience for `tracer().span(name)`).
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.tracer.span(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_shares_registry_and_tracer_across_clones() {
        let t = Telemetry::wall_clock();
        let clone = t.clone();
        t.registry().counter("lv_test_total", &[]).inc();
        drop(clone.span("x"));
        assert_eq!(clone.registry().counter("lv_test_total", &[]).get(), 1);
        assert_eq!(t.tracer().len(), 1);
        let dbg = format!("{t:?}");
        assert!(dbg.contains("Telemetry"), "{dbg}");
    }
}

//! Clock sources for span timing: wall clock or externally driven virtual
//! time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Where "now" comes from, in microseconds.
///
/// The tracer is clock-agnostic: under the wall clock a span's duration is
/// real elapsed time; under a [`VirtualClock`] driven by the discrete-event
/// simulator it is *virtual* elapsed time, so traces of simulated runs show
/// the same timeline the latency figures report.
pub trait ClockSource: Send + Sync {
    /// Current time in microseconds since the clock's epoch.
    fn now_us(&self) -> u64;
}

/// Monotonic wall clock, anchored at construction time.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    pub fn new() -> WallClock {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ClockSource for WallClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// An externally driven clock: whoever owns the simulation advances it.
///
/// `advance_to` is monotonic (it never moves time backwards), so event
/// handlers can set it unconditionally from `Simulation::now()`.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_us: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Advance the clock to `us` (no-op if time already passed it).
    pub fn advance_to(&self, us: u64) {
        self.now_us.fetch_max(us, Ordering::Relaxed);
    }
}

impl ClockSource for VirtualClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_moves_forward() {
        let clock = WallClock::new();
        let a = clock.now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(clock.now_us() > a);
    }

    #[test]
    fn virtual_clock_is_monotonic() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_us(), 0);
        clock.advance_to(500);
        clock.advance_to(200); // ignored: time never rewinds
        assert_eq!(clock.now_us(), 500);
        clock.advance_to(900);
        assert_eq!(clock.now_us(), 900);
    }
}

//! The metrics registry: named, labeled families of counters, gauges and
//! histograms with Prometheus-text and JSON exposition.
//!
//! Handle lookup (`registry.counter(...)`) takes a short mutex on the
//! registry map; the *hot path* — `inc`/`set`/`observe` on a handle held by
//! the caller — is a single atomic op with no lock. Instrumented code
//! resolves its handles once (at chain/channel construction) and records
//! through them forever after.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter handle (cheap to clone).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can go up and down (cheap to clone).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle (cheap to clone). Durations are recorded as integer
/// microseconds; name the metric `*_seconds` and exposition scales it.
#[derive(Clone, Debug)]
pub struct HistogramHandle(Arc<Histogram>);

impl HistogramHandle {
    /// Record one value.
    pub fn observe(&self, v: u64) {
        self.0.record(v);
    }

    /// Record a wall-clock duration as microseconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.0.record(d.as_micros() as u64);
    }

    /// The underlying histogram (for quantile queries).
    pub fn histogram(&self) -> &Histogram {
        &self.0
    }

    /// Shared ownership of the underlying histogram.
    pub fn shared(&self) -> Arc<Histogram> {
        Arc::clone(&self.0)
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// `(name, sorted labels)` — the identity of one time series.
type SeriesKey = (String, Vec<(String, String)>);

/// A registry of named metric families.
///
/// Families are keyed by metric name; within a family, label sets
/// distinguish series (e.g. `lv_chain_commit_seconds{channel="supply"}`).
/// Asking for an existing name with a different metric kind panics — that
/// is a wiring bug, caught the first time the code path runs.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<SeriesKey, Metric>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("series", &self.len())
            .finish()
    }
}

fn key_of(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.metrics.lock().unwrap().len()
    }

    /// True if nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get_or_insert(&self, name: &str, labels: &[(&str, &str)], make: fn() -> Metric) -> Metric {
        let key = key_of(name, labels);
        let mut metrics = self.metrics.lock().unwrap();
        let entry = metrics.entry(key).or_insert_with(make);
        let fresh = make();
        assert_eq!(
            entry.kind(),
            fresh.kind(),
            "metric `{name}` already registered as a {}",
            entry.kind()
        );
        entry.clone()
    }

    /// The counter `name{labels}` (registered on first use).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || {
            Metric::Counter(Arc::new(AtomicU64::new(0)))
        }) {
            Metric::Counter(c) => Counter(c),
            _ => unreachable!(),
        }
    }

    /// The gauge `name{labels}` (registered on first use).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, || Metric::Gauge(Arc::new(AtomicI64::new(0)))) {
            Metric::Gauge(g) => Gauge(g),
            _ => unreachable!(),
        }
    }

    /// The histogram `name{labels}` (registered on first use).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        match self.get_or_insert(name, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => HistogramHandle(h),
            _ => unreachable!(),
        }
    }

    /// Snapshot of every series, sorted by name then labels.
    fn snapshot(&self) -> Vec<(SeriesKey, MetricSnapshot)> {
        let metrics = self.metrics.lock().unwrap();
        metrics
            .iter()
            .map(|(key, metric)| {
                let snap = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.load(Ordering::Relaxed)),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.load(Ordering::Relaxed)),
                    Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                };
                (key.clone(), snap)
            })
            .collect()
    }

    /// Prometheus text exposition (format version 0.0.4).
    ///
    /// Histogram series whose name ends in `_seconds` are recorded as
    /// integer microseconds internally and scaled by `1e-6` here, so their
    /// `le` edges, `_sum` and quantile comments come out in seconds.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_name = String::new();
        for ((name, labels), snap) in self.snapshot() {
            if name != last_name {
                let kind = match &snap {
                    MetricSnapshot::Counter(_) => "counter",
                    MetricSnapshot::Gauge(_) => "gauge",
                    MetricSnapshot::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_name = name.clone();
            }
            let label_str = render_labels(&labels, None);
            match snap {
                MetricSnapshot::Counter(v) => {
                    out.push_str(&format!("{name}{label_str} {v}\n"));
                }
                MetricSnapshot::Gauge(v) => {
                    out.push_str(&format!("{name}{label_str} {v}\n"));
                }
                MetricSnapshot::Histogram(h) => {
                    let scale = if name.ends_with("_seconds") {
                        1e-6
                    } else {
                        1.0
                    };
                    out.push_str(&format!(
                        "# p50={} p95={} p99={} max={}\n",
                        fmt_scaled(h.quantile(0.50), scale),
                        fmt_scaled(h.quantile(0.95), scale),
                        fmt_scaled(h.quantile(0.99), scale),
                        fmt_scaled(h.max, scale),
                    ));
                    for (edge, cumulative) in h.cumulative_buckets() {
                        let le = render_labels(&labels, Some(&fmt_scaled(edge, scale)));
                        out.push_str(&format!("{name}_bucket{le} {cumulative}\n"));
                    }
                    let inf = render_labels(&labels, Some("+Inf"));
                    out.push_str(&format!("{name}_bucket{inf} {}\n", h.count));
                    out.push_str(&format!(
                        "{name}_sum{label_str} {}\n",
                        fmt_scaled(h.sum, scale)
                    ));
                    out.push_str(&format!("{name}_count{label_str} {}\n", h.count));
                }
            }
        }
        out
    }

    /// JSON snapshot of every series (stable key order, no dependencies).
    pub fn json_snapshot(&self) -> String {
        let mut out = String::from("{\n");
        let series = self.snapshot();
        for (i, ((name, labels), snap)) in series.iter().enumerate() {
            let mut key = name.clone();
            if !labels.is_empty() {
                key.push_str(&render_labels(labels, None));
            }
            out.push_str(&format!("  {}: ", json_string(&key)));
            match snap {
                MetricSnapshot::Counter(v) => out.push_str(&format!("{v}")),
                MetricSnapshot::Gauge(v) => out.push_str(&format!("{v}")),
                MetricSnapshot::Histogram(h) => {
                    let scale = if name.ends_with("_seconds") {
                        1e-6
                    } else {
                        1.0
                    };
                    out.push_str(&format!(
                        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                        h.count,
                        fmt_scaled(h.sum, scale),
                        fmt_scaled(h.min, scale),
                        fmt_f64(h.mean() * scale),
                        fmt_scaled(h.quantile(0.50), scale),
                        fmt_scaled(h.quantile(0.95), scale),
                        fmt_scaled(h.quantile(0.99), scale),
                        fmt_scaled(h.max, scale),
                    ))
                }
            }
            out.push_str(if i + 1 < series.len() { ",\n" } else { "\n" });
        }
        out.push_str("}\n");
        out
    }
}

enum MetricSnapshot {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

/// `{a="x",b="y"}` (empty string for no labels); `le` appends the bucket
/// edge label Prometheus histograms require.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}={}", prom_quote(v)))
        .collect();
    if let Some(edge) = le {
        parts.push(format!("le={}", prom_quote(edge)));
    }
    format!("{{{}}}", parts.join(","))
}

fn prom_quote(v: &str) -> String {
    format!(
        "\"{}\"",
        v.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    )
}

fn fmt_scaled(v: u64, scale: f64) -> String {
    if scale == 1.0 {
        v.to_string()
    } else {
        fmt_f64(v as f64 * scale)
    }
}

/// Shortest-ish float rendering that is always valid JSON (no `inf`/`NaN`).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v}");
    s
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = MetricsRegistry::new();
        let c = r.counter("lv_test_events_total", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name + labels resolves to the same series.
        assert_eq!(r.counter("lv_test_events_total", &[]).get(), 5);

        let g = r.gauge("lv_test_depth", &[]);
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn labels_distinguish_series_regardless_of_order() {
        let r = MetricsRegistry::new();
        r.counter("lv_test_total", &[("channel", "a"), ("phase", "x")])
            .inc();
        r.counter("lv_test_total", &[("phase", "x"), ("channel", "a")])
            .inc();
        r.counter("lv_test_total", &[("channel", "b"), ("phase", "x")])
            .inc();
        assert_eq!(
            r.counter("lv_test_total", &[("channel", "a"), ("phase", "x")])
                .get(),
            2
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = MetricsRegistry::new();
        r.counter("lv_test_total", &[]);
        r.histogram("lv_test_total", &[]);
    }

    #[test]
    fn prometheus_text_has_type_buckets_sum_count() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lv_test_latency_seconds", &[("phase", "validate")]);
        h.observe(1_000); // 1ms as microseconds
        h.observe(2_000);
        r.counter("lv_test_events_total", &[]).add(3);
        let text = r.prometheus_text();
        assert!(
            text.contains("# TYPE lv_test_events_total counter"),
            "{text}"
        );
        assert!(text.contains("lv_test_events_total 3"), "{text}");
        assert!(
            text.contains("# TYPE lv_test_latency_seconds histogram"),
            "{text}"
        );
        assert!(
            text.contains("lv_test_latency_seconds_count{phase=\"validate\"} 2"),
            "{text}"
        );
        // _seconds scaling: the 3000us sum renders as 0.003 seconds.
        assert!(
            text.contains("lv_test_latency_seconds_sum{phase=\"validate\"} 0.003"),
            "{text}"
        );
        assert!(text.contains("le=\"+Inf\"} 2"), "{text}");
    }

    #[test]
    fn json_snapshot_is_parseable_shape() {
        let r = MetricsRegistry::new();
        r.counter("lv_a_total", &[]).inc();
        r.histogram("lv_b_us", &[]).observe(10);
        let json = r.json_snapshot();
        assert!(json.starts_with("{\n"), "{json}");
        assert!(json.trim_end().ends_with('}'), "{json}");
        assert!(json.contains("\"lv_a_total\": 1"), "{json}");
        assert!(json.contains("\"count\": 1"), "{json}");
        // No trailing comma before the closing brace.
        assert!(!json.contains(",\n}"), "{json}");
    }
}

//! Deterministic self-profiler: hierarchical phase cost accounting over
//! the span tracer's ring buffer.
//!
//! [`profile_spans`] folds a slice of [`SpanRecord`]s into a tree of
//! *phases* keyed by the span-name path from the root (`cut.block` →
//! `cut.block;validate.block` → …), charging each span's duration to its
//! path and its *self time* (duration minus direct children) to the
//! leaf. The result answers "where does a committed tx spend its time"
//! without external tooling:
//!
//! * [`Profile::folded`] — `flamegraph.pl`-compatible folded stacks
//!   (`a;b;c <self_us>` per line), self-time-weighted.
//! * [`Profile::table`] — an aligned per-phase cost table with count,
//!   total/self microseconds, p50/p99, and optional attributed bytes.
//!
//! The profiler is pure aggregation: given the same spans it produces
//! byte-identical output (phases sort by path, quantiles come from the
//! deterministic [`Histogram`](crate::histogram::Histogram)), so profiles
//! taken from a seeded simulation run are reproducible artifacts.

use std::collections::{BTreeMap, HashMap};

use crate::histogram::Histogram;
use crate::tracer::SpanRecord;

/// Aggregate cost of one phase (a unique span-name path).
#[derive(Clone, Debug)]
pub struct PhaseCost {
    /// Semicolon-joined name path from the root, e.g.
    /// `cut.block;validate.block`.
    pub path: String,
    /// Leaf span name.
    pub name: String,
    /// Number of path components minus one (roots are depth 0).
    pub depth: usize,
    /// Spans aggregated into this phase.
    pub count: u64,
    /// Total microseconds across those spans.
    pub total_us: u64,
    /// Microseconds not covered by direct children (flamegraph weight).
    pub self_us: u64,
    /// Median span duration.
    pub p50_us: u64,
    /// 99th-percentile span duration.
    pub p99_us: u64,
    /// Bytes attributed to this phase via [`Profile::attribute_bytes`].
    pub bytes: u64,
}

/// A folded profile: phases sorted by path plus the root total.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// All phases, sorted by `path` (parents sort before children).
    pub phases: Vec<PhaseCost>,
    /// Sum of root-span durations (spans with no buffered parent).
    pub root_total_us: u64,
}

struct Agg {
    name: String,
    depth: usize,
    count: u64,
    total_us: u64,
    self_us: u64,
    hist: Histogram,
}

/// Maximum parent-chain depth followed when building paths; bounds work
/// on malformed (cyclic) parent links, which truncate to a root at this
/// depth instead of looping.
const MAX_DEPTH: usize = 64;

/// Fold `spans` into a hierarchical [`Profile`]. Parent links that point
/// outside the slice (evicted or cross-buffer) make the span a root.
pub fn profile_spans(spans: &[SpanRecord]) -> Profile {
    // Last span wins for duplicate ids (deterministic: slice order).
    let mut by_id: HashMap<u64, usize> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        by_id.insert(s.id, i);
    }
    // Direct-children time per parent id, for self-time accounting.
    let mut child_us: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            if by_id.contains_key(&p) {
                *child_us.entry(p).or_insert(0) += s.dur_us;
            }
        }
    }

    let mut phases: BTreeMap<String, Agg> = BTreeMap::new();
    let mut root_total_us = 0u64;
    for s in spans {
        let mut names: Vec<&str> = vec![&s.name];
        let mut cursor = s;
        for _ in 0..MAX_DEPTH {
            let Some(p) = cursor.parent.and_then(|p| by_id.get(&p)) else {
                break;
            };
            cursor = &spans[*p];
            names.push(&cursor.name);
        }
        if names.len() == 1 {
            root_total_us += s.dur_us;
        }
        names.reverse();
        // Semicolons delimit the folded stack; scrub them from names.
        let path = names
            .iter()
            .map(|n| n.replace(';', ":"))
            .collect::<Vec<_>>()
            .join(";");
        let depth = names.len() - 1;
        let self_us = s
            .dur_us
            .saturating_sub(child_us.get(&s.id).copied().unwrap_or(0));
        let agg = phases.entry(path).or_insert_with(|| Agg {
            name: s.name.clone(),
            depth,
            count: 0,
            total_us: 0,
            self_us: 0,
            hist: Histogram::new(),
        });
        agg.count += 1;
        agg.total_us += s.dur_us;
        agg.self_us += self_us;
        agg.hist.record(s.dur_us);
    }

    Profile {
        phases: phases
            .into_iter()
            .map(|(path, a)| PhaseCost {
                path,
                name: a.name,
                depth: a.depth,
                count: a.count,
                total_us: a.total_us,
                self_us: a.self_us,
                p50_us: a.hist.quantile(0.50),
                p99_us: a.hist.quantile(0.99),
                bytes: 0,
            })
            .collect(),
        root_total_us,
    }
}

impl Profile {
    /// Attribute `bytes` (from an allocation or wire byte counter) to
    /// every phase whose leaf name is `name`. Returns the number of
    /// phases credited.
    pub fn attribute_bytes(&mut self, name: &str, bytes: u64) -> usize {
        let mut hits = 0;
        for p in &mut self.phases {
            if p.name == name {
                p.bytes += bytes;
                hits += 1;
            }
        }
        hits
    }

    /// Look up a phase by exact path.
    pub fn phase(&self, path: &str) -> Option<&PhaseCost> {
        self.phases.iter().find(|p| p.path == path)
    }

    /// `flamegraph.pl`-compatible folded stacks, one `path self_us` line
    /// per phase with nonzero self time, sorted by path.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for p in &self.phases {
            if p.self_us > 0 {
                out.push_str(&p.path);
                out.push(' ');
                out.push_str(&p.self_us.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// An aligned per-phase cost table (indented by depth), for humans.
    pub fn table(&self) -> String {
        let mut rows: Vec<[String; 7]> = vec![[
            "phase".into(),
            "count".into(),
            "total_us".into(),
            "self_us".into(),
            "p50_us".into(),
            "p99_us".into(),
            "bytes".into(),
        ]];
        for p in &self.phases {
            rows.push([
                format!("{}{}", "  ".repeat(p.depth), p.name),
                p.count.to_string(),
                p.total_us.to_string(),
                p.self_us.to_string(),
                p.p50_us.to_string(),
                p.p99_us.to_string(),
                p.bytes.to_string(),
            ]);
        }
        let mut widths = [0usize; 7];
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for row in &rows {
            for (i, (w, cell)) in widths.iter().zip(row.iter()).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(&format!("{cell:<w$}"));
                } else {
                    out.push_str(&format!("{cell:>w$}"));
                }
            }
            // Trailing alignment spaces on the last column are noise.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_us: start,
            dur_us: dur,
            track: 1,
            process: 1,
            trace_id: None,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let spans = vec![
            span(1, None, "cut.block", 0, 100),
            span(2, Some(1), "validate.block", 0, 60),
            span(3, Some(2), "verify.sig", 0, 40),
            span(4, Some(1), "persist.block", 60, 30),
        ];
        let p = profile_spans(&spans);
        assert_eq!(p.root_total_us, 100);
        let root = p.phase("cut.block").unwrap();
        assert_eq!(root.total_us, 100);
        assert_eq!(root.self_us, 10); // 100 - 60 - 30
        let validate = p.phase("cut.block;validate.block").unwrap();
        assert_eq!(validate.self_us, 20); // 60 - 40
        assert_eq!(validate.depth, 1);
        let sig = p.phase("cut.block;validate.block;verify.sig").unwrap();
        assert_eq!(sig.self_us, 40);
        assert_eq!(sig.depth, 2);
    }

    #[test]
    fn folded_output_is_flamegraph_shaped_and_deterministic() {
        let spans = vec![
            span(1, None, "a", 0, 10),
            span(2, Some(1), "b", 0, 4),
            span(3, None, "a", 10, 6),
        ];
        let p = profile_spans(&spans);
        assert_eq!(p.folded(), "a 12\na;b 4\n");
        // Same input → byte-identical output.
        assert_eq!(p.folded(), profile_spans(&spans).folded());
        assert_eq!(p.table(), profile_spans(&spans).table());
    }

    #[test]
    fn missing_parents_become_roots_and_cycles_terminate() {
        let spans = vec![
            span(5, Some(999), "orphan", 0, 7),
            span(6, Some(7), "x", 0, 3),
            span(7, Some(6), "y", 0, 3),
        ];
        let p = profile_spans(&spans);
        assert_eq!(p.phase("orphan").unwrap().total_us, 7);
        assert_eq!(p.root_total_us, 7);
        // The x↔y cycle aggregates without hanging.
        assert!(p.phases.len() >= 3);
    }

    #[test]
    fn quantiles_and_byte_attribution() {
        let mut spans = vec![];
        for i in 0..100u64 {
            spans.push(span(i + 1, None, "order.queue", i, i + 1));
        }
        let mut p = profile_spans(&spans);
        let q = p.phase("order.queue").unwrap();
        assert_eq!(q.count, 100);
        assert!(q.p50_us >= 40 && q.p50_us <= 60, "{}", q.p50_us);
        assert!(q.p99_us >= 90, "{}", q.p99_us);
        assert_eq!(p.attribute_bytes("order.queue", 4096), 1);
        assert_eq!(p.phase("order.queue").unwrap().bytes, 4096);
        assert_eq!(p.attribute_bytes("nope", 1), 0);
        let table = p.table();
        assert!(table.contains("order.queue"), "{table}");
        assert!(table.lines().next().unwrap().contains("p99_us"), "{table}");
    }
}

//! Span-based tracing with parent/child nesting and a Chrome
//! `trace_event` exporter.
//!
//! `tracer.span("validate.block")` returns a guard; dropping it records a
//! complete span into a bounded ring buffer (oldest spans evicted first).
//! Parentage is tracked per thread with a thread-local stack, so nested
//! guards form the block → tx → phase hierarchy Perfetto renders as a
//! flamegraph. Discrete-event code that runs "at" a virtual time records
//! finished spans directly with [`Tracer::record_manual`] on a named
//! track.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::ClockSource;
use crate::registry::json_string;

/// One finished span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique id within this tracer.
    pub id: u64,
    /// Id of the span that was open on the same thread when this one
    /// started (None for roots and manual records).
    pub parent: Option<u64>,
    /// Span name, e.g. `validate.block`.
    pub name: String,
    /// Start time in clock microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Track the span renders on: a per-thread lane for guard spans, a
    /// named lane for manual records.
    pub track: u64,
}

struct Ring {
    spans: VecDeque<SpanRecord>,
    evicted: u64,
}

/// A span tracer: bounded ring buffer of recent [`SpanRecord`]s, timed
/// against a pluggable [`ClockSource`].
pub struct Tracer {
    clock: Arc<dyn ClockSource>,
    capacity: usize,
    ring: Mutex<Ring>,
    next_id: AtomicU64,
    /// Track id + display name per OS thread / named manual track.
    tracks: Mutex<HashMap<TrackKey, u64>>,
    track_names: Mutex<Vec<(u64, String)>>,
    next_track: AtomicU64,
}

#[derive(PartialEq, Eq, Hash)]
enum TrackKey {
    Thread(std::thread::ThreadId),
    Named(String),
}

thread_local! {
    /// Stack of (tracer identity, span id) for the spans currently open on
    /// this thread; the top entry for a given tracer is the parent of its
    /// next span.
    static OPEN_SPANS: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("spans", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Tracer {
    /// A tracer over `clock` keeping at most `capacity` recent spans.
    pub fn new(clock: Arc<dyn ClockSource>, capacity: usize) -> Tracer {
        Tracer {
            clock,
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                spans: VecDeque::new(),
                evicted: 0,
            }),
            next_id: AtomicU64::new(1),
            tracks: Mutex::new(HashMap::new()),
            track_names: Mutex::new(Vec::new()),
            next_track: AtomicU64::new(1),
        }
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().spans.len()
    }

    /// True if no spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring-buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans evicted so far to stay within capacity.
    pub fn evicted(&self) -> u64 {
        self.ring.lock().unwrap().evicted
    }

    /// The clock this tracer reads.
    pub fn clock(&self) -> &Arc<dyn ClockSource> {
        &self.clock
    }

    /// A stable identity for thread-local parent bookkeeping.
    fn identity(&self) -> usize {
        self as *const Tracer as usize
    }

    fn track_id(&self, key: TrackKey, name: impl FnOnce() -> String) -> u64 {
        let mut tracks = self.tracks.lock().unwrap();
        if let Some(&id) = tracks.get(&key) {
            return id;
        }
        let id = self.next_track.fetch_add(1, Ordering::Relaxed);
        tracks.insert(key, id);
        self.track_names.lock().unwrap().push((id, name()));
        id
    }

    /// Open a span; dropping the returned guard records it. Spans opened
    /// while another guard is live on the same thread become its children.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = OPEN_SPANS.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack
                .iter()
                .rev()
                .find(|(t, _)| *t == self.identity())
                .map(|&(_, id)| id);
            stack.push((self.identity(), id));
            parent
        });
        SpanGuard {
            tracer: self,
            id,
            parent,
            name: name.to_string(),
            start_us: self.clock.now_us(),
        }
    }

    /// Record an already-finished span on a named track — how simulator
    /// code reports work that "happened" between two virtual timestamps.
    pub fn record_manual(&self, name: &str, start_us: u64, end_us: u64, track: &str) {
        let track_id = self.track_id(TrackKey::Named(track.to_string()), || track.to_string());
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.push(SpanRecord {
            id,
            parent: None,
            name: name.to_string(),
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            track: track_id,
        });
    }

    fn push(&self, record: SpanRecord) {
        let mut ring = self.ring.lock().unwrap();
        if ring.spans.len() == self.capacity {
            ring.spans.pop_front();
            ring.evicted += 1;
        }
        ring.spans.push_back(record);
    }

    /// A copy of the buffered spans, oldest first.
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.ring.lock().unwrap().spans.iter().cloned().collect()
    }

    /// Export buffered spans as Chrome `trace_event` JSON (the
    /// `traceEvents` array format). Open the output in `chrome://tracing`
    /// or <https://ui.perfetto.dev> — spans nest by time containment per
    /// track, and track-name metadata labels each lane.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.recent();
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for (track, name) in self.track_names.lock().unwrap().iter() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{track},\"args\":{{\"name\":{}}}}}",
                json_string(name)
            ));
        }
        for s in &spans {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"id\":{}{}}}}}",
                json_string(&s.name),
                s.start_us,
                s.dur_us.max(1),
                s.track,
                s.id,
                match s.parent {
                    Some(p) => format!(",\"parent\":{p}"),
                    None => String::new(),
                }
            ));
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Guard for an open span; records the span when dropped.
#[must_use = "a span guard records on drop; binding it to _ ends the span immediately"]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    id: u64,
    parent: Option<u64>,
    name: String,
    start_us: u64,
}

impl SpanGuard<'_> {
    /// This span's id (usable as a parent for manual records).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end_us = self.tracer.clock.now_us();
        OPEN_SPANS.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Tolerate out-of-order drops: remove *this* span wherever it
            // sits, not blindly the top of the stack.
            if let Some(pos) = stack
                .iter()
                .rposition(|&(t, id)| t == self.tracer.identity() && id == self.id)
            {
                stack.remove(pos);
            }
        });
        let thread = std::thread::current();
        let track = self.tracer.track_id(TrackKey::Thread(thread.id()), || {
            thread
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("{:?}", thread.id()))
        });
        self.tracer.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            dur_us: end_us.saturating_sub(self.start_us),
            track,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{VirtualClock, WallClock};

    fn wall_tracer(capacity: usize) -> Tracer {
        Tracer::new(Arc::new(WallClock::new()), capacity)
    }

    #[test]
    fn nested_guards_record_parentage() {
        let t = wall_tracer(64);
        {
            let outer = t.span("block");
            let outer_id = outer.id();
            {
                let inner = t.span("tx");
                assert_ne!(inner.id(), outer_id);
            }
            let _sibling = t.span("tx2");
        }
        let spans = t.recent();
        assert_eq!(spans.len(), 3);
        // Drop order: tx, tx2, block.
        let block = spans.iter().find(|s| s.name == "block").unwrap();
        let tx = spans.iter().find(|s| s.name == "tx").unwrap();
        let tx2 = spans.iter().find(|s| s.name == "tx2").unwrap();
        assert_eq!(block.parent, None);
        assert_eq!(tx.parent, Some(block.id));
        assert_eq!(tx2.parent, Some(block.id));
        assert!(tx.start_us >= block.start_us);
    }

    #[test]
    fn after_guards_drop_new_spans_are_roots() {
        let t = wall_tracer(64);
        drop(t.span("first"));
        drop(t.span("second"));
        let spans = t.recent();
        assert!(spans.iter().all(|s| s.parent.is_none()), "{spans:?}");
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let t = wall_tracer(4);
        for i in 0..10 {
            drop(t.span(&format!("s{i}")));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.evicted(), 6);
        let names: Vec<_> = t.recent().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["s6", "s7", "s8", "s9"]);
    }

    #[test]
    fn manual_records_use_virtual_time_and_named_tracks() {
        let clock = Arc::new(VirtualClock::new());
        let t = Tracer::new(clock.clone(), 64);
        clock.advance_to(1_000);
        t.record_manual("order.batch", 250, 900, "orderer");
        t.record_manual("validate.block", 900, 1_000, "validator");
        let spans = t.recent();
        assert_eq!(spans[0].start_us, 250);
        assert_eq!(spans[0].dur_us, 650);
        assert_ne!(spans[0].track, spans[1].track);
        // Same track name resolves to the same lane.
        t.record_manual("order.batch", 1_000, 1_100, "orderer");
        assert_eq!(t.recent()[2].track, spans[0].track);
    }

    #[test]
    fn chrome_trace_is_wellformed_json_shape() {
        let t = wall_tracer(64);
        {
            let _outer = t.span("block \"quoted\"");
            let _inner = t.span("tx");
        }
        t.record_manual("order", 1, 2, "orderer");
        let json = t.chrome_trace_json();
        assert!(
            json.starts_with("{\"traceEvents\":[") && json.trim_end().ends_with("]}"),
            "{json}"
        );
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("block \\\"quoted\\\""), "{json}");
        // Balanced braces/brackets (cheap structural check without a parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn spans_on_different_threads_do_not_share_parents() {
        let t = Arc::new(wall_tracer(64));
        let _outer = t.span("main");
        let t2 = Arc::clone(&t);
        std::thread::spawn(move || {
            drop(t2.span("worker"));
        })
        .join()
        .unwrap();
        let worker = t.recent().into_iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.parent, None);
    }
}

//! Span-based tracing with parent/child nesting and a Chrome
//! `trace_event` exporter.
//!
//! `tracer.span("validate.block")` returns a guard; dropping it records a
//! complete span into a bounded ring buffer (oldest spans evicted first).
//! Parentage is tracked per thread with a thread-local stack, so nested
//! guards form the block → tx → phase hierarchy Perfetto renders as a
//! flamegraph. Discrete-event code that runs "at" a virtual time records
//! finished spans directly with [`Tracer::record_manual`] on a named
//! track, or with [`Tracer::record_linked`] when the span belongs to a
//! cross-node causal trace (see [`TraceContext`]).
//!
//! Cross-node traces never mint ids from the tracer's counter: a
//! [`TraceContext`] derives its trace id and every stage's span id from
//! the submission seed with SplitMix64, so the ids on the wire are
//! bit-identical whether or not a tracer is attached — tracing cannot
//! perturb consensus state.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::ClockSource;
use crate::registry::json_string;

/// Default Perfetto process lane for guard spans and plain manual records.
pub const DEFAULT_PROCESS: u64 = 1;

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function.
/// Used to derive trace and span ids deterministically from seeds.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Identity of one transaction's cross-node trace: a trace id shared by
/// every span on the journey plus the span id of the stage that produced
/// this context (0 = root, no parent).
///
/// Both ids are SplitMix64-derived from the submission seed and index —
/// never from a tracer counter or a clock — so the context encoded into
/// an `OrderedBatch` is byte-identical with telemetry on or off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id shared by all spans of one submission's journey.
    pub trace_id: u64,
    /// Span id of the upstream stage (0 when this context is a root).
    pub parent_span: u64,
}

impl TraceContext {
    /// Root context for the `index`-th submission under `seed`.
    pub fn root(seed: u64, index: u64) -> TraceContext {
        TraceContext {
            trace_id: splitmix64(splitmix64(seed ^ 0x6c76_5f74_7261_6365) ^ index),
            parent_span: 0,
        }
    }

    /// The deterministic span id this trace uses for pipeline `stage`.
    /// Stages are small per-pipeline constants (submit = 1, queue = 2, …);
    /// mixing them through SplitMix64 keeps ids unique across stages and
    /// disjoint (with overwhelming probability) from tracer-counter ids.
    pub fn span_id(&self, stage: u64) -> u64 {
        splitmix64(self.trace_id ^ splitmix64(stage))
    }

    /// This context re-parented under `parent_span` (the id of the stage
    /// that just ran).
    pub fn with_parent(self, parent_span: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent_span,
        }
    }

    /// The parent span id, if any.
    pub fn parent(&self) -> Option<u64> {
        (self.parent_span != 0).then_some(self.parent_span)
    }
}

/// One finished span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique id within this tracer (or a SplitMix64-derived id for
    /// linked records).
    pub id: u64,
    /// Id of the span that was open on the same thread when this one
    /// started (None for roots and plain manual records).
    pub parent: Option<u64>,
    /// Span name, e.g. `validate.block`.
    pub name: String,
    /// Start time in clock microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Track the span renders on: a per-thread lane for guard spans, a
    /// named lane for manual records.
    pub track: u64,
    /// Perfetto process lane ([`DEFAULT_PROCESS`] unless recorded via
    /// [`Tracer::record_linked`] / [`Tracer::record_on_process`]).
    pub process: u64,
    /// Cross-node trace this span belongs to, if any.
    pub trace_id: Option<u64>,
}

struct Ring {
    spans: VecDeque<SpanRecord>,
    evicted: u64,
}

/// A span tracer: bounded ring buffer of recent [`SpanRecord`]s, timed
/// against a pluggable [`ClockSource`].
pub struct Tracer {
    clock: Arc<dyn ClockSource>,
    capacity: usize,
    ring: Mutex<Ring>,
    next_id: AtomicU64,
    /// Track id + display name per OS thread / named manual track.
    tracks: Mutex<HashMap<TrackKey, u64>>,
    /// (track id, owning process id, display name).
    track_names: Mutex<Vec<(u64, u64, String)>>,
    next_track: AtomicU64,
    /// Registered process lanes: name → id, plus display order.
    processes: Mutex<HashMap<String, u64>>,
    process_names: Mutex<Vec<(u64, String)>>,
    next_process: AtomicU64,
}

#[derive(PartialEq, Eq, Hash)]
enum TrackKey {
    Thread(std::thread::ThreadId),
    /// A named lane scoped to a process (the same track name on two
    /// processes is two distinct lanes).
    Named(u64, String),
}

thread_local! {
    /// Stack of (tracer identity, span id) for the spans currently open on
    /// this thread; the top entry for a given tracer is the parent of its
    /// next span.
    static OPEN_SPANS: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("spans", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Tracer {
    /// A tracer over `clock` keeping at most `capacity` recent spans.
    pub fn new(clock: Arc<dyn ClockSource>, capacity: usize) -> Tracer {
        Tracer {
            clock,
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                spans: VecDeque::new(),
                evicted: 0,
            }),
            next_id: AtomicU64::new(1),
            tracks: Mutex::new(HashMap::new()),
            track_names: Mutex::new(Vec::new()),
            next_track: AtomicU64::new(1),
            processes: Mutex::new(HashMap::new()),
            process_names: Mutex::new(Vec::new()),
            next_process: AtomicU64::new(DEFAULT_PROCESS + 1),
        }
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().spans.len()
    }

    /// True if no spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring-buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans evicted so far to stay within capacity.
    pub fn evicted(&self) -> u64 {
        self.ring.lock().unwrap().evicted
    }

    /// The clock this tracer reads.
    pub fn clock(&self) -> &Arc<dyn ClockSource> {
        &self.clock
    }

    /// Intern a named Perfetto process lane (one per orderer/peer node)
    /// and return its pid. The same name always resolves to the same id.
    pub fn process(&self, name: &str) -> u64 {
        let mut processes = self.processes.lock().unwrap();
        if let Some(&id) = processes.get(name) {
            return id;
        }
        let id = self.next_process.fetch_add(1, Ordering::Relaxed);
        processes.insert(name.to_string(), id);
        self.process_names
            .lock()
            .unwrap()
            .push((id, name.to_string()));
        id
    }

    /// A stable identity for thread-local parent bookkeeping.
    fn identity(&self) -> usize {
        self as *const Tracer as usize
    }

    fn track_id(&self, key: TrackKey, process: u64, name: impl FnOnce() -> String) -> u64 {
        let mut tracks = self.tracks.lock().unwrap();
        if let Some(&id) = tracks.get(&key) {
            return id;
        }
        let id = self.next_track.fetch_add(1, Ordering::Relaxed);
        tracks.insert(key, id);
        self.track_names.lock().unwrap().push((id, process, name()));
        id
    }

    /// Open a span; dropping the returned guard records it. Spans opened
    /// while another guard is live on the same thread become its children.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = OPEN_SPANS.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack
                .iter()
                .rev()
                .find(|(t, _)| *t == self.identity())
                .map(|&(_, id)| id);
            stack.push((self.identity(), id));
            parent
        });
        SpanGuard {
            tracer: self,
            id,
            parent,
            name: name.to_string(),
            start_us: self.clock.now_us(),
        }
    }

    /// Record an already-finished span on a named track — how simulator
    /// code reports work that "happened" between two virtual timestamps.
    pub fn record_manual(&self, name: &str, start_us: u64, end_us: u64, track: &str) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.record_raw(
            name,
            start_us,
            end_us,
            DEFAULT_PROCESS,
            track,
            id,
            None,
            None,
        );
    }

    /// [`Tracer::record_manual`] on an explicit process lane; returns the
    /// span id for use as a parent of later manual records.
    pub fn record_on_process(
        &self,
        name: &str,
        start_us: u64,
        end_us: u64,
        process: u64,
        track: &str,
    ) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.record_raw(name, start_us, end_us, process, track, id, None, None);
        id
    }

    /// Record a finished span that belongs to a cross-node trace. The
    /// span id is caller-supplied (derived via [`TraceContext::span_id`],
    /// not minted here) so the causal chain is identical on every node
    /// and with telemetry on or off; `ctx.parent_span` links upstream.
    #[allow(clippy::too_many_arguments)]
    pub fn record_linked(
        &self,
        name: &str,
        start_us: u64,
        end_us: u64,
        process: u64,
        track: &str,
        span_id: u64,
        ctx: TraceContext,
    ) {
        self.record_raw(
            name,
            start_us,
            end_us,
            process,
            track,
            span_id,
            ctx.parent(),
            Some(ctx.trace_id),
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn record_raw(
        &self,
        name: &str,
        start_us: u64,
        end_us: u64,
        process: u64,
        track: &str,
        span_id: u64,
        parent: Option<u64>,
        trace_id: Option<u64>,
    ) {
        let track_id = self.track_id(TrackKey::Named(process, track.to_string()), process, || {
            track.to_string()
        });
        self.push(SpanRecord {
            id: span_id,
            parent,
            name: name.to_string(),
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            track: track_id,
            process,
            trace_id,
        });
    }

    fn push(&self, record: SpanRecord) {
        let mut ring = self.ring.lock().unwrap();
        if ring.spans.len() == self.capacity {
            ring.spans.pop_front();
            ring.evicted += 1;
        }
        ring.spans.push_back(record);
    }

    /// A copy of the buffered spans, oldest first.
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.ring.lock().unwrap().spans.iter().cloned().collect()
    }

    /// Export buffered spans as Chrome `trace_event` JSON (the
    /// `traceEvents` array format). Open the output in `chrome://tracing`
    /// or <https://ui.perfetto.dev> — each registered process renders as
    /// its own lane group (one per orderer/peer node), spans nest by time
    /// containment per track, and spans that carry a [`TraceContext`]
    /// expose `trace`/`parent` args linking the cross-node journey.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.recent();
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for (pid, name) in self.process_names.lock().unwrap().iter() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":{}}}}}",
                json_string(name)
            ));
        }
        for (track, process, name) in self.track_names.lock().unwrap().iter() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{process},\"tid\":{track},\"args\":{{\"name\":{}}}}}",
                json_string(name)
            ));
        }
        for s in &spans {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"id\":{}{}{}}}}}",
                json_string(&s.name),
                s.start_us,
                s.dur_us.max(1),
                s.process,
                s.track,
                s.id,
                match s.parent {
                    Some(p) => format!(",\"parent\":{p}"),
                    None => String::new(),
                },
                match s.trace_id {
                    Some(t) => format!(",\"trace\":{t}"),
                    None => String::new(),
                }
            ));
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Guard for an open span; records the span when dropped.
#[must_use = "a span guard records on drop; binding it to _ ends the span immediately"]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    id: u64,
    parent: Option<u64>,
    name: String,
    start_us: u64,
}

impl SpanGuard<'_> {
    /// This span's id (usable as a parent for manual records).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end_us = self.tracer.clock.now_us();
        OPEN_SPANS.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Tolerate out-of-order drops: remove *this* span wherever it
            // sits, not blindly the top of the stack.
            if let Some(pos) = stack
                .iter()
                .rposition(|&(t, id)| t == self.tracer.identity() && id == self.id)
            {
                stack.remove(pos);
            }
        });
        let thread = std::thread::current();
        let track = self
            .tracer
            .track_id(TrackKey::Thread(thread.id()), DEFAULT_PROCESS, || {
                thread
                    .name()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("{:?}", thread.id()))
            });
        self.tracer.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            dur_us: end_us.saturating_sub(self.start_us),
            track,
            process: DEFAULT_PROCESS,
            trace_id: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{VirtualClock, WallClock};

    fn wall_tracer(capacity: usize) -> Tracer {
        Tracer::new(Arc::new(WallClock::new()), capacity)
    }

    #[test]
    fn nested_guards_record_parentage() {
        let t = wall_tracer(64);
        {
            let outer = t.span("block");
            let outer_id = outer.id();
            {
                let inner = t.span("tx");
                assert_ne!(inner.id(), outer_id);
            }
            let _sibling = t.span("tx2");
        }
        let spans = t.recent();
        assert_eq!(spans.len(), 3);
        // Drop order: tx, tx2, block.
        let block = spans.iter().find(|s| s.name == "block").unwrap();
        let tx = spans.iter().find(|s| s.name == "tx").unwrap();
        let tx2 = spans.iter().find(|s| s.name == "tx2").unwrap();
        assert_eq!(block.parent, None);
        assert_eq!(tx.parent, Some(block.id));
        assert_eq!(tx2.parent, Some(block.id));
        assert!(tx.start_us >= block.start_us);
        assert!(spans.iter().all(|s| s.process == DEFAULT_PROCESS));
    }

    #[test]
    fn after_guards_drop_new_spans_are_roots() {
        let t = wall_tracer(64);
        drop(t.span("first"));
        drop(t.span("second"));
        let spans = t.recent();
        assert!(spans.iter().all(|s| s.parent.is_none()), "{spans:?}");
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let t = wall_tracer(4);
        for i in 0..10 {
            drop(t.span(&format!("s{i}")));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.evicted(), 6);
        let names: Vec<_> = t.recent().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["s6", "s7", "s8", "s9"]);
    }

    #[test]
    fn manual_records_use_virtual_time_and_named_tracks() {
        let clock = Arc::new(VirtualClock::new());
        let t = Tracer::new(clock.clone(), 64);
        clock.advance_to(1_000);
        t.record_manual("order.batch", 250, 900, "orderer");
        t.record_manual("validate.block", 900, 1_000, "validator");
        let spans = t.recent();
        assert_eq!(spans[0].start_us, 250);
        assert_eq!(spans[0].dur_us, 650);
        assert_ne!(spans[0].track, spans[1].track);
        // Same track name resolves to the same lane.
        t.record_manual("order.batch", 1_000, 1_100, "orderer");
        assert_eq!(t.recent()[2].track, spans[0].track);
    }

    #[test]
    fn chrome_trace_is_wellformed_json_shape() {
        let t = wall_tracer(64);
        {
            let _outer = t.span("block \"quoted\"");
            let _inner = t.span("tx");
        }
        t.record_manual("order", 1, 2, "orderer");
        let json = t.chrome_trace_json();
        assert!(
            json.starts_with("{\"traceEvents\":[") && json.trim_end().ends_with("]}"),
            "{json}"
        );
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("block \\\"quoted\\\""), "{json}");
        // Balanced braces/brackets (cheap structural check without a parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn spans_on_different_threads_do_not_share_parents() {
        let t = Arc::new(wall_tracer(64));
        let _outer = t.span("main");
        let t2 = Arc::clone(&t);
        std::thread::spawn(move || {
            drop(t2.span("worker"));
        })
        .join()
        .unwrap();
        let worker = t.recent().into_iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.parent, None);
    }

    #[test]
    fn trace_context_ids_are_deterministic_and_distinct() {
        let a = TraceContext::root(42, 0);
        let b = TraceContext::root(42, 0);
        assert_eq!(a, b);
        assert_ne!(a.trace_id, TraceContext::root(42, 1).trace_id);
        assert_ne!(a.trace_id, TraceContext::root(43, 0).trace_id);
        assert_eq!(a.parent(), None);
        // Stage span ids are stable and pairwise distinct.
        assert_eq!(a.span_id(1), b.span_id(1));
        assert_ne!(a.span_id(1), a.span_id(2));
        let child = a.with_parent(a.span_id(1));
        assert_eq!(child.trace_id, a.trace_id);
        assert_eq!(child.parent(), Some(a.span_id(1)));
    }

    #[test]
    fn linked_records_carry_process_lane_and_trace_args() {
        let clock = Arc::new(VirtualClock::new());
        let t = Tracer::new(clock, 64);
        let orderer = t.process("orderer-0");
        let peer = t.process("peer-1");
        assert_ne!(orderer, peer);
        assert_eq!(t.process("orderer-0"), orderer);

        let ctx = TraceContext::root(7, 0);
        let submit = ctx.span_id(1);
        t.record_linked("submit", 10, 20, orderer, "client", submit, ctx);
        let commit = ctx.span_id(2);
        t.record_linked(
            "peer.commit",
            20,
            40,
            peer,
            "commit",
            commit,
            ctx.with_parent(submit),
        );

        let spans = t.recent();
        assert_eq!(spans[0].process, orderer);
        assert_eq!(spans[0].trace_id, Some(ctx.trace_id));
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].process, peer);
        assert_eq!(spans[1].parent, Some(submit));
        // Same track name on two processes is two distinct lanes.
        let a = t.record_on_process("x", 0, 1, orderer, "commit");
        let b = t.record_on_process("x", 0, 1, peer, "commit");
        assert_ne!(a, b);
        let spans = t.recent();
        assert_ne!(spans[2].track, spans[3].track);

        let json = t.chrome_trace_json();
        assert!(json.contains("\"process_name\""), "{json}");
        assert!(
            json.contains(&format!("\"trace\":{}", ctx.trace_id)),
            "{json}"
        );
        assert!(json.contains(&format!("\"pid\":{peer}")), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}

//! Property test: the log-linear histogram's quantiles track the exact
//! nearest-rank quantile within the advertised bucket error.
//!
//! This is the contract `simnet`'s `LatencyRecorder` now relies on instead
//! of its old sort-based quantile code — one quantile implementation,
//! checked here against the definitionally-exact one.

use ledgerview_telemetry::Histogram;
use proptest::prelude::*;

/// Exact nearest-rank quantile over a sorted copy of `samples`.
fn exact_quantile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_quantile_matches_nearest_rank_within_bucket_error(
        samples in proptest::collection::vec(0u64..=1_000_000_000, 1..400),
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());

        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&samples, q);
            let approx = h.quantile(q);
            // The approximation reports the lower bound of the bucket the
            // exact value landed in: never above the exact value, and at
            // most one bucket width (6.25%) below it.
            prop_assert!(approx <= exact, "q={} approx {} > exact {}", q, approx, exact);
            let floor = exact - exact / 16 - 1;
            prop_assert!(
                approx >= floor.min(exact),
                "q={} approx {} below error floor {} (exact {})",
                q, approx, floor, exact
            );
        }

        let exact_mean =
            samples.iter().map(|&v| v as f64).sum::<f64>() / samples.len() as f64;
        prop_assert!((h.mean() - exact_mean).abs() <= 1e-6 * exact_mean.max(1.0));
    }
}

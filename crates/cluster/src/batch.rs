//! The payload replicated through the Raft log: an ordered transaction
//! batch with its assigned timestamp and per-transaction trace contexts.
//!
//! Peers never see each other's local clocks — the batch carries the
//! timestamp every replica must commit with, which is what makes blocks
//! bit-identical across peers (`FabricChain::commit_ordered`). The
//! `batch_id` deduplicates client re-proposals: a batch re-submitted after
//! a leader crash may appear twice in the Raft log, and every replica
//! skips the duplicate identically.
//!
//! Each transaction also carries its [`TraceContext`] — the trace id of
//! the originating submission plus the span id of the ordering stage that
//! cut it. Contexts are SplitMix64-derived from the submission seed, so
//! the encoded batch is byte-identical whether or not any tracer is
//! attached: tracing rides the wire without touching consensus.

use fabric_sim::error::FabricError;
use fabric_sim::ledger::Transaction;
use fabric_sim::wire::{Reader, Writer};
use ledgerview_telemetry::TraceContext;

/// One ordered batch of endorsed transactions (the unit of replication;
/// each batch becomes exactly one block on every peer).
#[derive(Clone, Debug)]
pub struct OrderedBatch {
    /// Client-assigned id, unique per batch, used for duplicate
    /// suppression when a batch is re-proposed.
    pub batch_id: u64,
    /// Block timestamp (virtual microseconds at cut time); every replica
    /// commits the block with this exact timestamp.
    pub timestamp_us: u64,
    /// The endorsed transactions, in order.
    pub transactions: Vec<Transaction>,
    /// Per-transaction trace contexts, aligned with `transactions`:
    /// `traces[i].trace_id` identifies transaction `i`'s submission
    /// journey and `traces[i].parent_span` is the queue-stage span to
    /// hang downstream (replicate, per-peer commit) spans off.
    pub traces: Vec<TraceContext>,
}

impl OrderedBatch {
    /// Serialize for the Raft log.
    pub fn encode(&self) -> Vec<u8> {
        debug_assert_eq!(self.transactions.len(), self.traces.len());
        let mut w = Writer::new();
        w.u64(self.batch_id);
        w.u64(self.timestamp_us);
        w.u32(self.transactions.len() as u32);
        for tx in &self.transactions {
            tx.encode_to(&mut w);
        }
        for ctx in &self.traces {
            w.u64(ctx.trace_id);
            w.u64(ctx.parent_span);
        }
        w.into_bytes()
    }

    /// Decode a batch previously produced by [`OrderedBatch::encode`].
    pub fn decode(bytes: &[u8]) -> Result<OrderedBatch, FabricError> {
        let mut r = Reader::new(bytes);
        let batch_id = r.u64()?;
        let timestamp_us = r.u64()?;
        let n = r.u32()? as usize;
        let mut transactions = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            transactions.push(Transaction::read_from(&mut r)?);
        }
        let mut traces = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            traces.push(TraceContext {
                trace_id: r.u64()?,
                parent_span: r.u64()?,
            });
        }
        r.finish()?;
        Ok(OrderedBatch {
            batch_id,
            timestamp_us,
            transactions,
            traces,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::chaincode::{RwSet, WriteEntry};
    use fabric_sim::identity::Msp;
    use fabric_sim::ledger::TxId;
    use ledgerview_crypto::rng::seeded;
    use ledgerview_crypto::sha256::sha256;

    fn sample_tx(n: u64) -> Transaction {
        let mut rng = seeded(9);
        let mut msp = Msp::new();
        let org = msp.add_org("Org1", &mut rng);
        let creator = msp.enroll(&org, "u", &mut rng).unwrap();
        Transaction {
            tx_id: TxId(sha256(&n.to_be_bytes())),
            chaincode: "counter".into(),
            function: "incr".into(),
            args: vec![b"k".to_vec(), b"1".to_vec()],
            creator: creator.cert().clone(),
            rwset: RwSet {
                reads: vec![],
                writes: vec![WriteEntry {
                    key: format!("k{n}"),
                    value: Some(vec![n as u8; 8]),
                }],
                private_writes: vec![],
            },
            response: vec![1, 2, 3],
            endorsements: vec![],
        }
    }

    fn sample_ctx(n: u64) -> TraceContext {
        let ctx = TraceContext::root(7, n);
        ctx.with_parent(ctx.span_id(2))
    }

    #[test]
    fn round_trips() {
        let batch = OrderedBatch {
            batch_id: 42,
            timestamp_us: 1_234_567,
            transactions: vec![sample_tx(1), sample_tx(2)],
            traces: vec![sample_ctx(1), sample_ctx(2)],
        };
        let decoded = OrderedBatch::decode(&batch.encode()).unwrap();
        assert_eq!(decoded.batch_id, 42);
        assert_eq!(decoded.timestamp_us, 1_234_567);
        assert_eq!(decoded.transactions.len(), 2);
        assert_eq!(decoded.transactions[0].tx_id, batch.transactions[0].tx_id);
        assert_eq!(decoded.transactions[1].rwset, batch.transactions[1].rwset);
        assert_eq!(decoded.traces, batch.traces);
        assert_eq!(
            decoded.traces[0].parent(),
            Some(batch.traces[0].parent_span)
        );
    }

    #[test]
    fn truncated_input_rejected() {
        let batch = OrderedBatch {
            batch_id: 7,
            timestamp_us: 1,
            transactions: vec![sample_tx(3)],
            traces: vec![sample_ctx(3)],
        };
        let bytes = batch.encode();
        assert!(OrderedBatch::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(OrderedBatch::decode(&bytes[..4]).is_err());
        // The trace section is load-bearing: stripping it entirely must
        // fail decode, not silently produce an un-traced batch.
        assert!(OrderedBatch::decode(&bytes[..bytes.len() - 16]).is_err());
    }
}

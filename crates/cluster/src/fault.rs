//! Typed faults — injected and detected.
//!
//! [`Fault`] is the injection side: failures scheduled at virtual times,
//! so a failure scenario is reproducible from `(config, schedule)` alone.
//! [`Divergence`] and [`ClusterError`] are the detection side: a peer
//! whose rolling state root disagrees with the canonical root is reported
//! as data, never as a panic.

use fabric_sim::error::FabricError;
use fabric_sim::raft::NodeId;
use ledgerview_crypto::sha256::Digest;
use ledgerview_simnet::SimTime;

/// A failure to inject at a scheduled virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Stop a peer: its chain is dropped (closing its storage directory)
    /// and in-flight deliveries to it are discarded.
    CrashPeer(usize),
    /// Restart a crashed peer: recover its durable directory, then replay
    /// the delta it missed from the ordering service.
    RestartPeer(usize),
    /// Permanently stop an orderer node.
    KillOrderer(NodeId),
    /// Partition the listed orderers away from the rest of the ordering
    /// service (two groups; links inside each group stay up).
    Partition(Vec<NodeId>),
    /// Remove the partition and any slow links.
    Heal,
    /// Multiply the one-way latency of the orderer link `from → to`.
    SlowLink {
        /// Sending orderer.
        from: NodeId,
        /// Receiving orderer.
        to: NodeId,
        /// Latency multiplier (clamped to ≥ 1).
        factor: u64,
    },
}

/// How a freshly joined peer obtains history it never saw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BootstrapMode {
    /// Ship a digest-verified state snapshot from a healthy peer, then
    /// replay only the delta — O(state).
    Snapshot,
    /// Replay every block from genesis — O(history); kept as the baseline
    /// the `replication_catchup` bench compares against.
    FullReplay,
}

impl BootstrapMode {
    /// Stable label for metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            BootstrapMode::Snapshot => "snapshot",
            BootstrapMode::FullReplay => "replay",
        }
    }
}

/// A peer commit whose state root disagrees with the canonical root for
/// that block — replicas are no longer state machine replicas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// The diverging peer.
    pub peer: usize,
    /// Block number at which the roots disagree.
    pub block: u64,
    /// Canonical rolling state root for the block.
    pub expected: Digest,
    /// The peer's actual rolling state root.
    pub actual: Digest,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "peer {} diverged at block {}: expected {}, got {}",
            self.peer, self.block, self.expected, self.actual
        )
    }
}

/// Errors surfaced by the cluster harness.
#[derive(Debug)]
pub enum ClusterError {
    /// A substrate operation failed (storage, validation, endorsement).
    Fabric(FabricError),
    /// One or more peers committed a block with a non-canonical root.
    Diverged(Vec<Divergence>),
    /// The cluster did not converge (all live peers at the tip, no batch
    /// in flight) before the deadline.
    NotConverged {
        /// The deadline that expired.
        deadline: SimTime,
        /// Committed block count at the deadline.
        blocks: u64,
        /// Per-peer applied height (`None` = crashed).
        peer_heights: Vec<Option<u64>>,
    },
    /// A peer bootstrap found no live donor peer to ship from.
    NoDonor,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Fabric(e) => write!(f, "fabric error: {e}"),
            ClusterError::Diverged(ds) => {
                write!(f, "{} state-root divergence(s); first: {}", ds.len(), ds[0])
            }
            ClusterError::NotConverged {
                deadline,
                blocks,
                peer_heights,
            } => write!(
                f,
                "cluster not converged by t={:.3}s: {} blocks committed, peers at {:?}",
                deadline.as_secs_f64(),
                blocks,
                peer_heights
            ),
            ClusterError::NoDonor => f.write_str("no live peer available as bootstrap donor"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<FabricError> for ClusterError {
    fn from(e: FabricError) -> ClusterError {
        ClusterError::Fabric(e)
    }
}

//! The deterministic multi-node harness: Raft ordering over simnet links,
//! leader-based block dissemination to durable peers, catch-up, and
//! scheduled fault injection — all on the virtual clock.
//!
//! # Determinism rules
//!
//! Everything observable is a pure function of [`ClusterConfig`] plus the
//! scheduled load/fault timeline:
//!
//! * All randomness (election jitter, tx ids, retry jitter) flows from
//!   seeded RNGs derived from `config.seed`.
//! * Every message, delivery, tick, and fault is an event on the
//!   [`Simulation`] queue; ties break by insertion order, which is itself
//!   deterministic.
//! * No wall-clock value ever reaches consensus state: block timestamps
//!   come from the ordered batch, not from any replica's local clock.
//!
//! Two runs with equal configs therefore produce bit-identical commit
//! histories and state roots — which is what makes every failure
//! scenario in `tests/` reproducible from its seed alone.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use fabric_sim::chaincode::RwSet;
use fabric_sim::endorsement::EndorsementPolicy;
use fabric_sim::identity::Identity;
use fabric_sim::ledger::{Transaction, TxId};
use fabric_sim::raft::{NodeId, Outgoing, RaftMsg, RaftNode};
use fabric_sim::statedb::VersionedState;
use fabric_sim::storage::ChainSnapshot;
use fabric_sim::validation::TxValidation;
use fabric_sim::{FabricChain, StorageConfig};
use ledgerview_crypto::rng::seeded;
use ledgerview_crypto::sha256::Digest;
use ledgerview_gateway::{reorder, CounterChaincode};
use ledgerview_simnet::{Region, SimTime, Simulation};
use ledgerview_telemetry::{Telemetry, TraceContext};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::batch::OrderedBatch;
use crate::fault::{BootstrapMode, ClusterError, Divergence, Fault};
use crate::metrics::ClusterMetrics;
use crate::ClusterConfig;

/// Chaincode every replica deploys (the gateway's counter workload).
const CHAINCODE: &str = "counter";

/// Stage tags fed to [`TraceContext::span_id`]: every node derives the
/// same span id for the same (trace, stage) pair without coordination, so
/// a peer can parent its commit span under the replicate span it never
/// saw recorded.
pub mod stage {
    /// Gateway-side submission/endorsement.
    pub const SUBMIT: u64 = 1;
    /// Waiting in the ordering service's pending queue until cut.
    pub const QUEUE: u64 = 2;
    /// Raft replication of the cut batch.
    pub const REPLICATE: u64 = 3;
    /// Per-peer validate+commit; add the peer index.
    pub const PEER_COMMIT_BASE: u64 = 0x100;
    /// A re-endorsement hop (early-abort/deferral); add the 1-based
    /// requeue ordinal so repeated pulls of one trace stay distinct.
    pub const REQUEUE_BASE: u64 = 0x1_0000;
}

type Sim = Simulation<World>;

struct Orderer {
    node: RaftNode,
    alive: bool,
    /// Invalidates stale tick events: each (re)schedule bumps the
    /// generation and a firing tick with an old generation is a no-op.
    tick_gen: u64,
    was_leader: bool,
}

struct Catchup {
    started: SimTime,
    target: u64,
    mode: BootstrapMode,
    bytes: u64,
    blocks: u64,
}

struct Peer {
    dir: PathBuf,
    region: Region,
    /// `None` while crashed (or while a snapshot is in flight).
    chain: Option<FabricChain>,
    /// Next global block index this peer will apply.
    next_apply: u64,
    /// Delivered-but-not-yet-applicable block indices (out-of-order
    /// arrivals buffered until the gap fills).
    ready: BTreeSet<u64>,
    catchup: Option<Catchup>,
}

struct CommittedBlock {
    batch: OrderedBatch,
    bytes: u64,
    committed_at: SimTime,
}

struct Inflight {
    encoded: Vec<u8>,
}

/// Causal-trace state for one in-flight transaction, keyed by its
/// *current* tx id — a re-endorsed transaction gets a fresh id and the
/// entry moves with it, so the trace id survives early-aborts, deferrals
/// and watchdog resubmits.
struct TxTrace {
    /// Root context (`parent_span == 0`), derived from the submission
    /// sequence number — always computed, even with telemetry detached,
    /// so batch wire bytes never depend on observation.
    ctx: TraceContext,
    /// Virtual time of the original submission (requeues don't reset it:
    /// queue time is measured from first submission to final cut).
    submitted_us: u64,
    /// Times this trace has been pulled and re-endorsed.
    requeues: u64,
}

/// The fate of a tagged invocation scheduled via
/// [`ClusterSim::schedule_call`], reported through
/// [`ClusterSim::take_outcomes`].
///
/// "Acceptance is a promise": once endorsement succeeds the cluster's
/// watchdog and rerouting guarantee the transaction is eventually ordered
/// and committed (possibly as `Committed` with a failed validation), so
/// these two variants are exhaustive — there is no silent-drop outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvokeOutcome {
    /// Endorsement rejected the proposal (chaincode error / policy); the
    /// transaction never entered the ordering pipeline.
    EndorseFailed(String),
    /// The transaction was ordered and committed on the canonical chain
    /// with this validation result (writes applied only when
    /// `valid.is_valid()`).
    Committed {
        /// The commit-time validation outcome.
        valid: TxValidation,
    },
}

/// One completed peer catch-up (restart replay or fresh bootstrap).
#[derive(Clone, Debug)]
pub struct CatchupRecord {
    /// The peer that caught up.
    pub peer: usize,
    /// Snapshot shipping or full replay.
    pub mode: BootstrapMode,
    /// Virtual time from start to reaching the catch-up target.
    pub duration: SimTime,
    /// Blocks replayed after the starting point.
    pub blocks: u64,
    /// Bytes shipped (snapshot payload plus replayed block bytes).
    pub bytes: u64,
}

/// End-of-run summary: heights, roots, detected faults, and counters.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Globally committed block count.
    pub blocks: u64,
    /// Transactions committed across all blocks.
    pub txs: u64,
    /// Canonical rolling state root after each block.
    pub canonical_roots: Vec<Digest>,
    /// Batch id of each committed block, in commit order.
    pub batch_history: Vec<u64>,
    /// Per-peer applied height (`None` = crashed).
    pub peer_heights: Vec<Option<u64>>,
    /// Per-peer rolling state root (`None` = crashed).
    pub peer_roots: Vec<Option<Digest>>,
    /// State-root divergences detected (empty on a healthy run).
    pub divergences: Vec<Divergence>,
    /// Election-safety violations observed (always empty unless Raft is
    /// broken; checked by the hardening tests).
    pub election_violations: Vec<String>,
    /// Leader transitions observed.
    pub elections: u64,
    /// Proposals re-routed after `NotLeader`/dead-orderer.
    pub notleader_retries: u64,
    /// Watchdog re-proposals of unacknowledged batches.
    pub resubmits: u64,
    /// Duplicate batch commits suppressed.
    pub dup_batches: u64,
    /// Batches dropped after exhausting routing attempts.
    pub failed_batches: u64,
    /// Endorsement-time submission errors.
    pub submit_errors: u64,
    /// Doomed transactions pulled from a batch by the conflict-aware
    /// cutter and re-endorsed (zero with reordering off).
    pub reorder_early_aborts: u64,
    /// Dependency-cycle victims deferred to a later batch.
    pub reorder_deferrals: u64,
    /// Transaction pairs batched in inverted (non-endorsement) order.
    pub reorder_pairs: u64,
    /// Intra-batch dependency cycles broken by the cutter.
    pub reorder_cycles: u64,
    /// Completed catch-ups.
    pub catchups: Vec<CatchupRecord>,
}

struct World {
    cfg: ClusterConfig,
    orderers: Vec<Orderer>,
    peers: Vec<Peer>,
    /// The ordering-side endorsing chain: clients endorse against it, and
    /// it applies every ordered batch itself, defining the canonical
    /// state root each peer is cross-checked against.
    endorser: FabricChain,
    client: Identity,
    submit_rng: StdRng,

    // Global ordered log (deduplicated Raft commits).
    raft_applied: u64,
    seen_batches: BTreeSet<u64>,
    blocks: Vec<CommittedBlock>,
    canonical_roots: Vec<Digest>,

    // Client submission pipeline.
    next_batch_id: u64,
    inflight: BTreeMap<u64, Inflight>,
    believed_leader: NodeId,

    // Causal tracing.
    submit_seq: u64,
    tx_traces: BTreeMap<TxId, TxTrace>,

    // Tagged invocations (sharded deployments watch their 2PC legs).
    tx_tags: BTreeMap<TxId, u64>,
    outcomes: Vec<(u64, InvokeOutcome)>,

    // Link faults (orderer ↔ orderer).
    partition_group: Vec<u8>,
    slow: BTreeMap<(NodeId, NodeId), u64>,

    // Detection + counters.
    divergences: Vec<Divergence>,
    leaders_by_term: BTreeMap<u64, NodeId>,
    election_violations: Vec<String>,
    elections: u64,
    notleader_retries: u64,
    resubmits: u64,
    dup_batches: u64,
    failed_batches: u64,
    submit_errors: u64,
    reorder_early_aborts: u64,
    reorder_deferrals: u64,
    reorder_pairs: u64,
    reorder_cycles: u64,
    catchups: Vec<CatchupRecord>,
    /// Peers whose snapshot bootstrap found no live donor.
    bootstrap_failures: Vec<usize>,

    /// Scheduled-but-unfired submissions/faults/bootstraps; convergence
    /// requires all of them to have fired.
    pending_actions: u64,

    metrics: Option<ClusterMetrics>,
}

impl World {
    fn storage_for(cfg: &ClusterConfig, dir: &Path) -> StorageConfig {
        StorageConfig::new(dir.to_path_buf())
            .fsync(cfg.fsync)
            .checkpoint_every(cfg.checkpoint_every)
            .wal_segment_bytes(cfg.wal_segment_bytes)
    }

    fn deploy_workload(cfg: &ClusterConfig, chain: &mut FabricChain) {
        chain.deploy(
            CHAINCODE,
            Box::new(CounterChaincode),
            EndorsementPolicy::AnyOf(chain.org_ids()),
        );
        for (name, factory) in &cfg.workloads {
            chain.deploy(name, factory(), EndorsementPolicy::AnyOf(chain.org_ids()));
        }
    }

    /// Open (or recover) a peer chain over its durable directory, using
    /// the backend `cfg.lsm_peers` selects.
    fn open_peer_chain(cfg: &ClusterConfig, dir: &Path) -> Result<FabricChain, ClusterError> {
        let names: Vec<&str> = cfg.org_names.iter().map(|s| s.as_str()).collect();
        let mut rng = seeded(cfg.identity_seed);
        let storage = Self::storage_for(cfg, dir);
        let mut chain = if cfg.lsm_peers {
            FabricChain::with_lsm_storage(&names, &mut rng, storage, cfg.validation.clone())?
        } else {
            FabricChain::with_storage(&names, &mut rng, storage, cfg.validation.clone())?
        };
        Self::deploy_workload(cfg, &mut chain);
        Ok(chain)
    }

    /// Install a shipped snapshot into an empty peer directory.
    fn install_peer_snapshot(
        cfg: &ClusterConfig,
        dir: &Path,
        snapshot: &ChainSnapshot,
    ) -> Result<FabricChain, ClusterError> {
        let names: Vec<&str> = cfg.org_names.iter().map(|s| s.as_str()).collect();
        let mut rng = seeded(cfg.identity_seed);
        let mut chain = FabricChain::from_snapshot(
            &names,
            &mut rng,
            Self::storage_for(cfg, dir),
            cfg.validation.clone(),
            snapshot,
        )?;
        Self::deploy_workload(cfg, &mut chain);
        Ok(chain)
    }

    // ---- links ------------------------------------------------------

    fn link_up(&self, a: NodeId, b: NodeId) -> bool {
        self.orderers[a].alive
            && self.orderers[b].alive
            && self.partition_group[a] == self.partition_group[b]
    }

    fn orderer_link_delay(&self, from: NodeId, to: NodeId) -> SimTime {
        let base = self
            .cfg
            .latency
            .latency(self.cfg.orderer_region, self.cfg.orderer_region);
        match self.slow.get(&(from, to)) {
            Some(&factor) => base.scaled(factor.max(1)),
            None => base,
        }
    }

    fn transfer_delay(&self, region: Region, bytes: u64) -> SimTime {
        let wire = self.cfg.latency.latency(self.cfg.orderer_region, region);
        let bw = self.cfg.catchup_bandwidth_bytes_per_sec.max(1);
        wire + SimTime::from_micros(bytes.saturating_mul(1_000_000) / bw)
    }

    // ---- raft plumbing ----------------------------------------------

    fn dispatch(&mut self, sim: &mut Sim, from: NodeId, outs: Vec<Outgoing>) {
        for out in outs {
            if !self.link_up(from, out.to) {
                continue;
            }
            let delay = self.orderer_link_delay(from, out.to);
            let to = out.to;
            let msg = out.msg;
            sim.schedule_in(delay, move |w: &mut World, s| {
                w.on_raft_msg(from, to, msg, s);
            });
        }
    }

    fn on_raft_msg(&mut self, from: NodeId, to: NodeId, msg: RaftMsg, sim: &mut Sim) {
        if !self.orderers[to].alive {
            return;
        }
        let outs = self.orderers[to].node.handle(from, msg, sim.now());
        self.after_raft_activity(to, outs, sim);
    }

    /// Shared tail of every Raft interaction: observe role changes, send
    /// outgoing messages, surface newly committed entries, re-arm the
    /// node's timer.
    fn after_raft_activity(&mut self, o: NodeId, outs: Vec<Outgoing>, sim: &mut Sim) {
        self.observe_orderer(o);
        self.dispatch(sim, o, outs);
        self.drain_commits(o, sim);
        self.reschedule_tick(o, sim);
    }

    fn reschedule_tick(&mut self, o: NodeId, sim: &mut Sim) {
        if !self.orderers[o].alive {
            return;
        }
        self.orderers[o].tick_gen += 1;
        let gen = self.orderers[o].tick_gen;
        let at = self.orderers[o].node.next_deadline().max(sim.now());
        sim.schedule_at(at, move |w: &mut World, s| w.on_tick(o, gen, s));
    }

    fn on_tick(&mut self, o: NodeId, gen: u64, sim: &mut Sim) {
        if !self.orderers[o].alive || self.orderers[o].tick_gen != gen {
            return;
        }
        let outs = self.orderers[o].node.tick(sim.now());
        self.after_raft_activity(o, outs, sim);
    }

    /// Track leader transitions: election counters, the per-term safety
    /// check, and the client's leader hint.
    fn observe_orderer(&mut self, o: NodeId) {
        let is_leader = self.orderers[o].node.is_leader();
        let term = self.orderers[o].node.current_term();
        if is_leader && !self.orderers[o].was_leader {
            self.elections += 1;
            if let Some(m) = &self.metrics {
                m.elections.inc();
            }
            match self.leaders_by_term.get(&term) {
                None => {
                    self.leaders_by_term.insert(term, o);
                }
                Some(&prev) if prev != o => self
                    .election_violations
                    .push(format!("term {term}: leaders {prev} and {o}")),
                Some(_) => {}
            }
            self.believed_leader = o;
        }
        self.orderers[o].was_leader = is_leader;
    }

    /// Pull committed Raft entries into the global ordered log (exactly
    /// once across all orderers), apply them to the canonical chain, and
    /// disseminate the resulting block.
    fn drain_commits(&mut self, o: NodeId, sim: &mut Sim) {
        for (index, entry) in self.orderers[o].node.take_committed() {
            debug_assert!(
                index <= self.raft_applied + 1,
                "commit upcalls out of order"
            );
            if index <= self.raft_applied {
                continue; // Another orderer already surfaced this index.
            }
            self.raft_applied = index;
            let batch = OrderedBatch::decode(&entry.data)
                .expect("raft log carries only batches we encoded");
            if !self.seen_batches.insert(batch.batch_id) {
                self.dup_batches += 1;
                if let Some(m) = &self.metrics {
                    m.dup_batches.inc();
                }
                continue; // Client re-proposal; every replica skips it.
            }
            self.inflight.remove(&batch.batch_id);
            let validations = self
                .endorser
                .commit_ordered(batch.transactions.clone(), batch.timestamp_us);
            for (tx, valid) in batch.transactions.iter().zip(&validations) {
                if let Some(tag) = self.tx_tags.remove(&tx.tx_id) {
                    self.outcomes.push((
                        tag,
                        InvokeOutcome::Committed {
                            valid: valid.clone(),
                        },
                    ));
                }
            }
            self.canonical_roots.push(self.endorser.state_root());
            // Batch dedup above guarantees exactly one replicate span per
            // transaction, even when the watchdog re-proposed the batch.
            if let Some(m) = &self.metrics {
                let tracer = m.telemetry.tracer();
                let lane = m.orderer_proc(o);
                let now_us = sim.now().as_micros();
                for ctx in &batch.traces {
                    tracer.record_linked(
                        "order.replicate",
                        batch.timestamp_us,
                        now_us,
                        lane,
                        "raft",
                        ctx.span_id(stage::REPLICATE),
                        *ctx,
                    );
                    m.trace_replicate_spans.inc();
                }
            }
            let bytes = entry.data.len() as u64;
            let block_num = self.blocks.len();
            self.blocks.push(CommittedBlock {
                batch,
                bytes,
                committed_at: sim.now(),
            });
            self.disseminate(block_num as u64, sim);
        }
    }

    /// Leader-based dissemination: schedule delivery of a freshly
    /// committed block to every reachable peer.
    fn disseminate(&mut self, block_num: u64, sim: &mut Sim) {
        for p in 0..self.peers.len() {
            if self.peers[p].chain.is_some() {
                let delay = self
                    .cfg
                    .latency
                    .latency(self.cfg.orderer_region, self.peers[p].region);
                sim.schedule_in(delay, move |w: &mut World, s| w.on_deliver(p, block_num, s));
            }
            if let Some(m) = &self.metrics {
                let applied = self.peers[p].next_apply;
                m.set_behind(p, (self.blocks.len() as u64).saturating_sub(applied));
            }
        }
    }

    fn on_deliver(&mut self, p: usize, block_num: u64, sim: &mut Sim) {
        let peer = &mut self.peers[p];
        if peer.chain.is_none() || block_num < peer.next_apply {
            return;
        }
        peer.ready.insert(block_num);
        self.apply_ready(p, sim);
    }

    /// Apply every contiguously available block on peer `p`, cross-check
    /// roots, update lag metrics, and complete any catch-up in progress.
    fn apply_ready(&mut self, p: usize, sim: &mut Sim) {
        loop {
            let next = self.peers[p].next_apply;
            if !self.peers[p].ready.remove(&next) {
                break;
            }
            let (txs, traces, ts, bytes, committed_at) = {
                let b = &self.blocks[next as usize];
                (
                    b.batch.transactions.clone(),
                    b.batch.traces.clone(),
                    b.batch.timestamp_us,
                    b.bytes,
                    b.committed_at,
                )
            };
            let peer = &mut self.peers[p];
            let chain = peer.chain.as_mut().expect("checked on delivery");
            chain.commit_ordered(txs, ts);
            if let Some(m) = &self.metrics {
                let tracer = m.telemetry.tracer();
                let lane = m.peer_proc(p);
                let now_us = sim.now().as_micros();
                for ctx in &traces {
                    // Parent under the replicate span this peer never saw
                    // recorded: span ids are trace-derived, so it computes
                    // the same id the ordering side used.
                    tracer.record_linked(
                        "peer.commit",
                        committed_at.as_micros(),
                        now_us,
                        lane,
                        "commit",
                        ctx.span_id(stage::PEER_COMMIT_BASE + p as u64),
                        ctx.with_parent(ctx.span_id(stage::REPLICATE)),
                    );
                    m.trace_commit_spans.inc();
                }
            }
            let actual = chain.state_root();
            let expected = self.canonical_roots[next as usize];
            if actual != expected {
                self.divergences.push(Divergence {
                    peer: p,
                    block: next,
                    expected,
                    actual,
                });
            }
            let peer = &mut self.peers[p];
            peer.next_apply = next + 1;
            if let Some(c) = &mut peer.catchup {
                c.blocks += 1;
                c.bytes += bytes;
            }
            if let Some(m) = &self.metrics {
                m.set_lag_us(p, sim.now().saturating_sub(committed_at).as_micros());
                m.set_behind(p, (self.blocks.len() as u64).saturating_sub(next + 1));
            }
        }
        self.maybe_finish_catchup(p, sim);
    }

    fn maybe_finish_catchup(&mut self, p: usize, sim: &mut Sim) {
        let done = match &self.peers[p].catchup {
            Some(c) => self.peers[p].next_apply >= c.target,
            None => false,
        };
        if !done {
            return;
        }
        let c = self.peers[p].catchup.take().expect("checked");
        let duration = sim.now().saturating_sub(c.started);
        if let Some(m) = &self.metrics {
            let h = match c.mode {
                BootstrapMode::Snapshot => &m.catchup_snapshot_us,
                BootstrapMode::FullReplay => &m.catchup_replay_us,
            };
            h.observe(duration.as_micros());
        }
        self.catchups.push(CatchupRecord {
            peer: p,
            mode: c.mode,
            duration,
            blocks: c.blocks,
            bytes: c.bytes,
        });
    }

    /// Stream blocks `[from, to)` to peer `p` as a bandwidth-limited
    /// replay from the ordering service's region.
    fn schedule_replay(&mut self, p: usize, from: u64, to: u64, sim: &mut Sim) {
        let region = self.peers[p].region;
        let mut cumulative = 0u64;
        for idx in from..to {
            cumulative += self.blocks[idx as usize].bytes;
            let at = self.transfer_delay(region, cumulative);
            sim.schedule_in(at, move |w: &mut World, s| w.on_deliver(p, idx, s));
        }
    }

    // ---- submissions -------------------------------------------------

    fn on_submit(
        &mut self,
        chaincode: String,
        function: String,
        args: Vec<Vec<u8>>,
        tag: Option<u64>,
        ctx_override: Option<TraceContext>,
        sim: &mut Sim,
    ) {
        self.pending_actions -= 1;
        // The trace context is derived unconditionally — wire bytes of
        // every batch are identical with telemetry attached or not. A
        // caller-supplied context (a 2PC leg riding its transfer's trace)
        // replaces the minted root but not the sequence increment, so the
        // ids of later submissions don't depend on who supplied contexts.
        let minted = TraceContext::root(self.cfg.seed, self.submit_seq);
        let ctx = ctx_override.unwrap_or(minted);
        self.submit_seq += 1;
        let result = self.endorser.invoke(
            &self.client,
            &chaincode,
            &function,
            args,
            &mut self.submit_rng,
        );
        match result {
            Ok(r) => {
                let now_us = sim.now().as_micros();
                self.tx_traces.insert(
                    r.tx_id,
                    TxTrace {
                        ctx,
                        submitted_us: now_us,
                        requeues: 0,
                    },
                );
                if let Some(t) = tag {
                    self.tx_tags.insert(r.tx_id, t);
                }
                if let Some(m) = &self.metrics {
                    m.telemetry.tracer().record_linked(
                        "submit",
                        now_us,
                        now_us,
                        m.gateway_proc,
                        "submit",
                        ctx.span_id(stage::SUBMIT),
                        ctx,
                    );
                    m.trace_submit_spans.inc();
                }
            }
            Err(e) => {
                self.submit_errors += 1;
                if let Some(t) = tag {
                    self.outcomes
                        .push((t, InvokeOutcome::EndorseFailed(e.to_string())));
                }
            }
        }
    }

    /// The ordering service's block cutter: batch pending endorsed
    /// transactions and propose them to the believed leader. Re-arms
    /// itself every `block_interval`.
    fn on_cut(&mut self, sim: &mut Sim) {
        sim.schedule_in(self.cfg.block_interval, |w: &mut World, s| w.on_cut(s));
        if self.endorser.pending_count() == 0 {
            return;
        }
        let now_us = sim.now().as_micros();
        let transactions = if self.cfg.reorder.enabled {
            self.plan_batch(now_us)
        } else {
            self.endorser.take_pending()
        };
        if transactions.is_empty() {
            // Every pending transaction was doomed and pulled for
            // re-endorsement; nothing to replicate this interval.
            return;
        }
        // Close out each kept transaction's queue stage and build the
        // wire contexts: downstream spans parent under the queue span.
        let traces: Vec<TraceContext> = transactions
            .iter()
            .map(|tx| {
                let t = self.tx_traces.remove(&tx.tx_id).unwrap_or_else(|| TxTrace {
                    ctx: TraceContext::root(self.cfg.seed, u64::MAX),
                    submitted_us: now_us,
                    requeues: 0,
                });
                let queue_span = t.ctx.span_id(stage::QUEUE);
                if let Some(m) = &self.metrics {
                    m.telemetry.tracer().record_linked(
                        "order.queue",
                        t.submitted_us,
                        now_us,
                        m.orderer_proc(self.believed_leader),
                        "cutter",
                        queue_span,
                        t.ctx.with_parent(t.ctx.span_id(stage::SUBMIT)),
                    );
                    m.trace_queue_spans.inc();
                }
                t.ctx.with_parent(queue_span)
            })
            .collect();
        let batch = OrderedBatch {
            batch_id: self.next_batch_id,
            timestamp_us: now_us,
            transactions,
            traces,
        };
        self.next_batch_id += 1;
        let batch_id = batch.batch_id;
        let encoded = batch.encode();
        self.inflight.insert(batch_id, Inflight { encoded });
        if let Some(m) = &self.metrics {
            m.batches.inc();
        }
        self.route(batch_id, 1, sim);
        let timeout = self.cfg.resubmit_timeout;
        sim.schedule_in(timeout, move |w: &mut World, s| {
            w.on_resubmit_check(batch_id, s);
        });
    }

    /// Conflict-aware batch planning (see `ledgerview_gateway::reorder`)
    /// over the endorser's pending queue: early-abort transactions whose
    /// reads went stale against committed state since their endorsement
    /// (they fail MVCC on *every* replica under every order), schedule
    /// the survivors to serialize intra-batch conflicts, and defer cycle
    /// victims. Pulled transactions are immediately re-endorsed — fresh
    /// read versions — and ride a later batch.
    ///
    /// The plan is computed once, before replication, so every replica
    /// applies the identical reordered batch: ordering decisions made
    /// here survive leader failover by construction.
    fn plan_batch(&mut self, now_us: u64) -> Vec<Transaction> {
        let n = self.endorser.pending_count();
        let doomed = if self.cfg.reorder.early_abort {
            self.endorser.precheck_pending()
        } else {
            vec![None; n]
        };
        let plan = {
            let pending = self.endorser.pending();
            let rwsets: Vec<&RwSet> = pending.iter().map(|tx| &tx.rwset).collect();
            reorder::plan(&rwsets, &doomed, &self.cfg.reorder, |_| true)
        };
        let mut pulled: Vec<Option<Transaction>> =
            self.endorser.take_pending().into_iter().map(Some).collect();
        let kept: Vec<Transaction> = plan
            .order
            .iter()
            .map(|&i| pulled[i].take().expect("scheduled exactly once"))
            .collect();
        self.reorder_pairs += plan.stats.reordered_pairs;
        self.reorder_cycles += plan.stats.cycles_broken;
        for &(i, _) in &plan.early_aborts {
            self.reorder_early_aborts += 1;
            if let Some(m) = &self.metrics {
                m.reorder_early_aborts.inc();
            }
            let tx = pulled[i].take().expect("early-aborted exactly once");
            self.reinvoke(tx, now_us);
        }
        for &i in &plan.deferred {
            self.reorder_deferrals += 1;
            if let Some(m) = &self.metrics {
                m.reorder_deferrals.inc();
            }
            let tx = pulled[i].take().expect("deferred exactly once");
            self.reinvoke(tx, now_us);
        }
        kept
    }

    /// Re-endorse a pulled transaction through the normal submission
    /// path: a fresh proposal (new tx id, current read versions) joins
    /// the pending queue for the next batch. The trace entry moves from
    /// the old tx id to the new one — re-endorsement is a hop within the
    /// same trace, not a new journey.
    fn reinvoke(&mut self, tx: Transaction, now_us: u64) {
        let old_id = tx.tx_id;
        let result = self.endorser.invoke(
            &self.client,
            &tx.chaincode,
            &tx.function,
            tx.args,
            &mut self.submit_rng,
        );
        match result {
            Ok(r) => {
                // The tag follows the trace: re-endorsement is a hop, not
                // a new invocation, so the outcome reports under the
                // original tag when the successor finally commits.
                if let Some(tag) = self.tx_tags.remove(&old_id) {
                    self.tx_tags.insert(r.tx_id, tag);
                }
                if let Some(mut t) = self.tx_traces.remove(&old_id) {
                    t.requeues += 1;
                    if let Some(m) = &self.metrics {
                        m.telemetry.tracer().record_linked(
                            "order.requeue",
                            now_us,
                            now_us,
                            m.orderer_proc(self.believed_leader),
                            "cutter",
                            t.ctx.span_id(stage::REQUEUE_BASE + t.requeues),
                            t.ctx.with_parent(t.ctx.span_id(stage::SUBMIT)),
                        );
                        m.trace_requeues.inc();
                    }
                    self.tx_traces.insert(r.tx_id, t);
                }
            }
            Err(e) => {
                self.submit_errors += 1;
                if let Some(tag) = self.tx_tags.remove(&old_id) {
                    self.outcomes
                        .push((tag, InvokeOutcome::EndorseFailed(e.to_string())));
                }
            }
        }
    }

    /// Route a batch proposal toward the believed leader; attempt is the
    /// 1-based try count within this routing round.
    fn route(&mut self, batch_id: u64, attempt: u32, sim: &mut Sim) {
        if !self.inflight.contains_key(&batch_id) {
            return; // Committed while we were backing off.
        }
        if attempt > self.cfg.retry.max_attempts.max(1) {
            // Routing round exhausted — every orderer unreachable or
            // rejecting (e.g. mid-partition, mid-election). The batch
            // stays inflight: the resubmit watchdog opens a fresh routing
            // round after `resubmit_timeout`, so an endorsed transaction
            // is never silently dropped ("acceptance is a promise") —
            // it outwaits the fault instead.
            self.failed_batches += 1;
            return;
        }
        let target = self.believed_leader;
        let delay = self
            .cfg
            .latency
            .latency(self.cfg.orderer_region, self.cfg.orderer_region);
        sim.schedule_in(delay, move |w: &mut World, s| {
            w.on_proposal_arrive(batch_id, target, attempt, s);
        });
    }

    fn on_proposal_arrive(&mut self, batch_id: u64, target: NodeId, attempt: u32, sim: &mut Sim) {
        let Some(inflight) = self.inflight.get(&batch_id) else {
            return;
        };
        if self.orderers[target].alive {
            match self.orderers[target]
                .node
                .propose(inflight.encoded.clone(), sim.now())
            {
                Ok((_, outs)) => {
                    self.after_raft_activity(target, outs, sim);
                    return;
                }
                Err(_not_leader) => {}
            }
        }
        // NotLeader (or dead orderer): rotate the hint and re-route after
        // the gateway's deterministic backoff.
        self.notleader_retries += 1;
        if let Some(m) = &self.metrics {
            m.notleader_retries.inc();
        }
        if self.believed_leader == target {
            self.believed_leader = (target + 1) % self.orderers.len();
        }
        let backoff = self.cfg.retry.backoff_us(attempt, self.cfg.seed, batch_id);
        sim.schedule_in(SimTime::from_micros(backoff), move |w: &mut World, s| {
            w.route(batch_id, attempt + 1, s);
        });
    }

    /// Watchdog: a batch proposed to a leader that died (or was
    /// partitioned) before replicating is re-proposed; the batch id
    /// deduplicates any double commit.
    fn on_resubmit_check(&mut self, batch_id: u64, sim: &mut Sim) {
        if !self.inflight.contains_key(&batch_id) {
            return;
        }
        self.resubmits += 1;
        if let Some(m) = &self.metrics {
            m.resubmits.inc();
        }
        self.route(batch_id, 1, sim);
        let timeout = self.cfg.resubmit_timeout;
        sim.schedule_in(timeout, move |w: &mut World, s| {
            w.on_resubmit_check(batch_id, s);
        });
    }

    // ---- faults ------------------------------------------------------

    fn on_fault(&mut self, fault: Fault, sim: &mut Sim) {
        self.pending_actions -= 1;
        match fault {
            Fault::CrashPeer(p) => {
                let peer = &mut self.peers[p];
                peer.chain = None; // Drop closes the storage directory.
                peer.ready.clear();
                peer.catchup = None;
            }
            Fault::RestartPeer(p) => {
                if self.peers[p].chain.is_some() {
                    return;
                }
                let chain = Self::open_peer_chain(&self.cfg, &self.peers[p].dir)
                    .expect("peer restart must recover its own directory");
                let recovered = chain.height();
                let peer = &mut self.peers[p];
                peer.chain = Some(chain);
                peer.next_apply = recovered;
                peer.ready.clear();
                let target = self.blocks.len() as u64;
                if target > recovered {
                    self.peers[p].catchup = Some(Catchup {
                        started: sim.now(),
                        target,
                        mode: BootstrapMode::FullReplay,
                        bytes: 0,
                        blocks: 0,
                    });
                    self.schedule_replay(p, recovered, target, sim);
                }
            }
            Fault::KillOrderer(o) => {
                self.orderers[o].alive = false;
                self.orderers[o].tick_gen += 1;
                self.orderers[o].was_leader = false;
            }
            Fault::Partition(isolated) => {
                for g in self.partition_group.iter_mut() {
                    *g = 0;
                }
                for o in isolated {
                    if o < self.partition_group.len() {
                        self.partition_group[o] = 1;
                    }
                }
            }
            Fault::Heal => {
                for g in self.partition_group.iter_mut() {
                    *g = 0;
                }
                self.slow.clear();
            }
            Fault::SlowLink { from, to, factor } => {
                self.slow.insert((from, to), factor.max(1));
            }
        }
    }

    /// Bootstrap a freshly joined peer (slot `p`, already allocated).
    fn on_bootstrap(&mut self, p: usize, mode: BootstrapMode, sim: &mut Sim) {
        self.pending_actions -= 1;
        let target = self.blocks.len() as u64;
        match mode {
            BootstrapMode::Snapshot => {
                // Donor: the live peer with the greatest applied height
                // (lowest index breaks ties deterministically).
                let donor = (0..self.peers.len())
                    .filter(|&d| d != p && self.peers[d].chain.is_some())
                    .max_by_key(|&d| (self.peers[d].next_apply, usize::MAX - d));
                let Some(donor) = donor else {
                    self.bootstrap_failures.push(p);
                    return;
                };
                let snapshot = self.peers[donor]
                    .chain
                    .as_ref()
                    .expect("donor is live")
                    .export_snapshot();
                let size = snapshot.size_bytes() as u64;
                self.peers[p].catchup = Some(Catchup {
                    started: sim.now(),
                    target,
                    mode,
                    bytes: size,
                    blocks: 0,
                });
                let delay = self.transfer_delay(self.peers[p].region, size);
                sim.schedule_in(delay, move |w: &mut World, s| {
                    w.on_install_snapshot(p, snapshot, s);
                });
            }
            BootstrapMode::FullReplay => {
                let chain = Self::open_peer_chain(&self.cfg, &self.peers[p].dir)
                    .expect("fresh peer directory must open");
                let peer = &mut self.peers[p];
                peer.chain = Some(chain);
                peer.next_apply = 0;
                peer.catchup = Some(Catchup {
                    started: sim.now(),
                    target,
                    mode,
                    bytes: 0,
                    blocks: 0,
                });
                if target == 0 {
                    self.maybe_finish_catchup(p, sim);
                } else {
                    self.schedule_replay(p, 0, target, sim);
                }
            }
        }
    }

    fn on_install_snapshot(&mut self, p: usize, snapshot: ChainSnapshot, sim: &mut Sim) {
        let chain = Self::install_peer_snapshot(&self.cfg, &self.peers[p].dir, &snapshot)
            .expect("shipped snapshot must verify and install");
        let height = chain.height();
        let peer = &mut self.peers[p];
        peer.chain = Some(chain);
        peer.next_apply = height;
        // Replay the delta committed since the snapshot was taken.
        let tip = self.blocks.len() as u64;
        if tip > height {
            self.schedule_replay(p, height, tip, sim);
        }
        self.maybe_finish_catchup(p, sim);
    }

    // ---- convergence -------------------------------------------------

    fn converged(&self) -> bool {
        self.pending_actions == 0
            && self.inflight.is_empty()
            && self.endorser.pending_count() == 0
            && self.peers.iter().all(|p| match &p.chain {
                Some(_) => p.catchup.is_none() && p.next_apply == self.blocks.len() as u64,
                // A chain-less peer still blocks convergence while a
                // shipped snapshot is in flight toward it.
                None => p.catchup.is_none(),
            })
    }

    fn report(&self) -> ClusterReport {
        ClusterReport {
            blocks: self.blocks.len() as u64,
            txs: self
                .blocks
                .iter()
                .map(|b| b.batch.transactions.len() as u64)
                .sum(),
            canonical_roots: self.canonical_roots.clone(),
            batch_history: self.blocks.iter().map(|b| b.batch.batch_id).collect(),
            peer_heights: self
                .peers
                .iter()
                .map(|p| p.chain.as_ref().map(|c| c.height()))
                .collect(),
            peer_roots: self
                .peers
                .iter()
                .map(|p| p.chain.as_ref().map(|c| c.state_root()))
                .collect(),
            divergences: self.divergences.clone(),
            election_violations: self.election_violations.clone(),
            elections: self.elections,
            notleader_retries: self.notleader_retries,
            resubmits: self.resubmits,
            dup_batches: self.dup_batches,
            failed_batches: self.failed_batches,
            submit_errors: self.submit_errors,
            reorder_early_aborts: self.reorder_early_aborts,
            reorder_deferrals: self.reorder_deferrals,
            reorder_pairs: self.reorder_pairs,
            reorder_cycles: self.reorder_cycles,
            catchups: self.catchups.clone(),
        }
    }
}

/// The replication cluster simulation: build from a [`ClusterConfig`],
/// schedule load and faults at virtual times, run, and inspect the
/// report. See the crate docs for the architecture.
pub struct ClusterSim {
    sim: Sim,
    world: World,
}

impl ClusterSim {
    /// Build the cluster: N Raft orderers, M durable peers (each under
    /// `<storage_root>/peer<i>`), and the ordering-side endorsing chain.
    pub fn new(config: ClusterConfig) -> Result<ClusterSim, ClusterError> {
        std::fs::create_dir_all(&config.storage_root)
            .map_err(|e| ClusterError::Fabric(fabric_sim::FabricError::Storage(e.to_string())))?;
        let names: Vec<&str> = config.org_names.iter().map(|s| s.as_str()).collect();
        let mut id_rng = seeded(config.identity_seed);
        let mut endorser = FabricChain::new(&names, &mut id_rng);
        endorser.set_check_signatures(config.check_signatures);
        World::deploy_workload(&config, &mut endorser);
        let client_org = endorser.org_ids()[0].clone();
        let client = endorser.enroll(&client_org, "cluster-client", &mut id_rng)?;

        let orderers = (0..config.orderers.max(1))
            .map(|id| {
                let peers: Vec<NodeId> = (0..config.orderers.max(1)).filter(|&p| p != id).collect();
                Orderer {
                    node: RaftNode::new(id, peers, config.raft.clone(), config.seed, SimTime::ZERO),
                    alive: true,
                    tick_gen: 0,
                    was_leader: false,
                }
            })
            .collect();

        let mut peers = Vec::new();
        for i in 0..config.peers {
            let dir = config.storage_root.join(format!("peer{i}"));
            let region = config.peer_regions[i % config.peer_regions.len().max(1)];
            let chain = World::open_peer_chain(&config, &dir)?;
            let next_apply = chain.height();
            peers.push(Peer {
                dir,
                region,
                chain: Some(chain),
                next_apply,
                ready: BTreeSet::new(),
                catchup: None,
            });
        }

        let submit_rng = StdRng::seed_from_u64(config.seed ^ 0x5EED_C1AE_57E2_0001);
        let partition_group = vec![0u8; config.orderers.max(1)];
        let mut world = World {
            cfg: config,
            orderers,
            peers,
            endorser,
            client,
            submit_rng,
            raft_applied: 0,
            seen_batches: BTreeSet::new(),
            blocks: Vec::new(),
            canonical_roots: Vec::new(),
            next_batch_id: 0,
            inflight: BTreeMap::new(),
            believed_leader: 0,
            submit_seq: 0,
            tx_traces: BTreeMap::new(),
            tx_tags: BTreeMap::new(),
            outcomes: Vec::new(),
            partition_group,
            slow: BTreeMap::new(),
            divergences: Vec::new(),
            leaders_by_term: BTreeMap::new(),
            election_violations: Vec::new(),
            elections: 0,
            notleader_retries: 0,
            resubmits: 0,
            dup_batches: 0,
            failed_batches: 0,
            submit_errors: 0,
            reorder_early_aborts: 0,
            reorder_deferrals: 0,
            reorder_pairs: 0,
            reorder_cycles: 0,
            catchups: Vec::new(),
            bootstrap_failures: Vec::new(),
            pending_actions: 0,
            metrics: None,
        };

        let mut sim = Sim::new();
        for o in 0..world.orderers.len() {
            world.reschedule_tick(o, &mut sim);
        }
        let interval = world.cfg.block_interval;
        sim.schedule_at(interval, |w: &mut World, s| w.on_cut(s));
        Ok(ClusterSim { sim, world })
    }

    /// Attach telemetry: `lv_cluster_*`/`lv_trace_*` counters, per-peer
    /// lag gauges, catch-up histograms, and causal span recording on one
    /// Perfetto process lane per node (`gateway`, `orderer-<k>`,
    /// `peer-<p>`). Observational only: span ids and trace contexts are
    /// derived from the config seed whether or not this is ever called,
    /// so attaching telemetry cannot perturb the committed history.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.world.metrics = Some(ClusterMetrics::new(
            telemetry,
            self.world.orderers.len(),
            self.world.peers.len(),
            &self.world.cfg.lane_prefix,
        ));
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Globally committed block count.
    pub fn blocks(&self) -> u64 {
        self.world.blocks.len() as u64
    }

    /// A peer's applied height (`None` while crashed).
    pub fn peer_height(&self, p: usize) -> Option<u64> {
        self.world.peers[p].chain.as_ref().map(|c| c.height())
    }

    /// A peer's rolling state root (`None` while crashed).
    pub fn peer_state_root(&self, p: usize) -> Option<Digest> {
        self.world.peers[p].chain.as_ref().map(|c| c.state_root())
    }

    /// The live orderer currently believed leader by Raft itself: the
    /// highest-term live leader (ties to the lowest id). `None` during
    /// elections.
    pub fn current_leader(&self) -> Option<NodeId> {
        self.world
            .orderers
            .iter()
            .enumerate()
            .filter(|(_, o)| o.alive && o.node.is_leader())
            .max_by_key(|(id, o)| (o.node.current_term(), usize::MAX - id))
            .map(|(id, _)| id)
    }

    /// Schedule a chaincode invocation (endorsed at `at`, committed by a
    /// later batch) against the cluster's counter workload.
    pub fn schedule_invoke(&mut self, at: SimTime, function: &str, args: Vec<Vec<u8>>) {
        self.world.pending_actions += 1;
        let function = function.to_string();
        self.sim.schedule_at(at, move |w: &mut World, s| {
            w.on_submit(CHAINCODE.to_string(), function, args, None, None, s)
        });
    }

    /// Schedule a tagged invocation of any deployed chaincode. The fate
    /// of the transaction — endorse-rejected, or committed with its
    /// validation result — is reported under `tag` via
    /// [`ClusterSim::take_outcomes`] (tags survive re-endorsement hops
    /// exactly like trace contexts). A caller-supplied [`TraceContext`]
    /// replaces the minted per-submission root so externally coordinated
    /// protocols (cross-shard 2PC) can parent every leg under one trace.
    pub fn schedule_call(
        &mut self,
        at: SimTime,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
        tag: u64,
        ctx: Option<TraceContext>,
    ) {
        self.world.pending_actions += 1;
        let chaincode = chaincode.to_string();
        let function = function.to_string();
        self.sim.schedule_at(at, move |w: &mut World, s| {
            w.on_submit(chaincode, function, args, Some(tag), ctx, s)
        });
    }

    /// Drain the outcomes of tagged invocations resolved since the last
    /// call, in resolution order.
    pub fn take_outcomes(&mut self) -> Vec<(u64, InvokeOutcome)> {
        std::mem::take(&mut self.world.outcomes)
    }

    /// Whether every scheduled action has fired, no batch is in flight,
    /// and every live peer has applied the full committed log (the
    /// predicate [`ClusterSim::run_until_converged`] polls).
    pub fn is_converged(&self) -> bool {
        self.world.converged()
    }

    /// Endorsed-but-not-yet-cut transactions in the ordering queue.
    pub fn pending_txs(&self) -> usize {
        self.world.endorser.pending_count()
    }

    /// The canonical (ordering-side) chain state — what 2PC coordinators
    /// read to recover replicated decision records after a failover.
    pub fn canonical_state(&self) -> &dyn VersionedState {
        self.world.endorser.state()
    }

    /// The canonical rolling state root at the committed tip.
    pub fn canonical_root(&self) -> Digest {
        self.world.endorser.state_root()
    }

    /// Convenience load: `count` counter increments starting at `start`,
    /// one every `every`, rotating over `keys` distinct keys.
    pub fn schedule_counter_load(&mut self, start: SimTime, every: SimTime, count: u64, keys: u64) {
        for i in 0..count {
            let at = start + every.scaled(i);
            let key = format!("k{}", i % keys.max(1));
            self.schedule_invoke(at, "incr", vec![key.into_bytes(), b"1".to_vec()]);
        }
    }

    /// Schedule a [`Fault`] at a virtual time.
    pub fn schedule_fault(&mut self, at: SimTime, fault: Fault) {
        self.world.pending_actions += 1;
        self.sim
            .schedule_at(at, move |w: &mut World, s| w.on_fault(fault, s));
    }

    /// Schedule a fresh peer to join at `at` via snapshot shipping or
    /// full replay; returns the new peer's index.
    pub fn schedule_bootstrap_peer(&mut self, at: SimTime, mode: BootstrapMode) -> usize {
        let p = self.world.peers.len();
        let dir = self.world.cfg.storage_root.join(format!("peer{p}"));
        let region = self.world.cfg.peer_regions[p % self.world.cfg.peer_regions.len().max(1)];
        self.world.peers.push(Peer {
            dir,
            region,
            chain: None,
            next_apply: 0,
            ready: BTreeSet::new(),
            catchup: None,
        });
        if let Some(m) = &mut self.world.metrics {
            m.ensure_peers(p + 1);
        }
        self.world.pending_actions += 1;
        self.sim
            .schedule_at(at, move |w: &mut World, s| w.on_bootstrap(p, mode, s));
        p
    }

    /// Run events up to (and including) virtual time `end`.
    pub fn run_until(&mut self, end: SimTime) {
        self.sim.run_until(&mut self.world, end);
    }

    /// Run for `d` more virtual time.
    pub fn run_for(&mut self, d: SimTime) {
        let end = self.sim.now() + d;
        self.run_until(end);
    }

    /// Run until every scheduled action has fired, no batch is in flight,
    /// and every live peer has applied the full committed log — or until
    /// `deadline`. Returns the convergence time.
    pub fn run_until_converged(&mut self, deadline: SimTime) -> Result<SimTime, ClusterError> {
        let step = SimTime::from_millis(100);
        loop {
            if !self.world.bootstrap_failures.is_empty() {
                return Err(ClusterError::NoDonor);
            }
            if self.world.converged() {
                return Ok(self.sim.now());
            }
            if self.sim.now() >= deadline {
                return Err(ClusterError::NotConverged {
                    deadline,
                    blocks: self.blocks(),
                    peer_heights: self
                        .world
                        .peers
                        .iter()
                        .map(|p| p.chain.as_ref().map(|c| c.height()))
                        .collect(),
                });
            }
            let next = (self.sim.now() + step).min(deadline);
            self.sim.run_until(&mut self.world, next);
        }
    }

    /// The end-of-run summary.
    pub fn report(&self) -> ClusterReport {
        self.world.report()
    }

    /// Typed-fault check: every live peer must be at the committed tip
    /// with the canonical rolling state root, and no divergence may have
    /// been recorded mid-run.
    pub fn verify_convergence(&self) -> Result<(), ClusterError> {
        if !self.world.bootstrap_failures.is_empty() {
            return Err(ClusterError::NoDonor);
        }
        if !self.world.divergences.is_empty() {
            return Err(ClusterError::Diverged(self.world.divergences.clone()));
        }
        let tip = self.world.blocks.len() as u64;
        let canonical = self.world.canonical_roots.last().copied();
        let mut diverged = Vec::new();
        for (p, peer) in self.world.peers.iter().enumerate() {
            let Some(chain) = &peer.chain else { continue };
            if chain.height() != tip {
                return Err(ClusterError::NotConverged {
                    deadline: self.sim.now(),
                    blocks: tip,
                    peer_heights: self.report().peer_heights,
                });
            }
            if let Some(expected) = canonical {
                let actual = chain.state_root();
                if actual != expected {
                    diverged.push(Divergence {
                        peer: p,
                        block: tip.saturating_sub(1),
                        expected,
                        actual,
                    });
                }
            }
        }
        if diverged.is_empty() {
            Ok(())
        } else {
            Err(ClusterError::Diverged(diverged))
        }
    }

    /// Raft's Log Matching safety property across the whole ordering
    /// service (killed orderers included — their frozen logs are still
    /// bound by it): every pair of nodes must agree on the common prefix
    /// of their committed entries.
    pub fn check_raft_log_matching(&self) -> Result<(), String> {
        let logs: Vec<&[fabric_sim::raft::LogEntry]> = self
            .world
            .orderers
            .iter()
            .map(|o| o.node.committed_entries())
            .collect();
        for a in 0..logs.len() {
            for b in (a + 1)..logs.len() {
                let common = logs[a].len().min(logs[b].len());
                if logs[a][..common] != logs[b][..common] {
                    return Err(format!(
                        "orderers {a} and {b} disagree within their committed prefixes \
                         (lengths {} and {})",
                        logs[a].len(),
                        logs[b].len()
                    ));
                }
            }
        }
        Ok(())
    }
}

//! `lv_cluster_*` metric handles, resolved once when telemetry attaches.
//!
//! Purely observational: a cluster with and without telemetry commits
//! bit-identical histories (durations are observed in *virtual*
//! microseconds, so even the measurements are deterministic).

use ledgerview_telemetry::{Counter, Gauge, HistogramHandle, Telemetry};

pub(crate) struct ClusterMetrics {
    pub telemetry: Telemetry,
    /// Prepended to every process-lane name (disambiguates clusters
    /// sharing one `Telemetry`, e.g. shards).
    lane_prefix: String,
    /// Leader transitions observed across the ordering service.
    pub elections: Counter,
    /// Proposals re-routed after hitting a non-leader (or dead) orderer.
    pub notleader_retries: Counter,
    /// Batches cut and proposed (first attempts only).
    pub batches: Counter,
    /// Duplicate batch commits suppressed (client re-proposals).
    pub dup_batches: Counter,
    /// Watchdog re-proposals of batches lost with a crashed leader.
    pub resubmits: Counter,
    /// Doomed transactions pulled from a batch by the conflict-aware
    /// cutter and re-endorsed.
    pub reorder_early_aborts: Counter,
    /// Dependency-cycle victims deferred to a later batch.
    pub reorder_deferrals: Counter,
    /// Per-peer: committed blocks the peer has not applied yet.
    behind: Vec<Gauge>,
    /// Per-peer: virtual µs between global commit and local apply of the
    /// most recently applied block.
    lag_us: Vec<Gauge>,
    /// Catch-up duration in virtual µs, labeled by method.
    pub catchup_snapshot_us: HistogramHandle,
    pub catchup_replay_us: HistogramHandle,
    /// Causal spans recorded, labeled by pipeline stage.
    pub trace_submit_spans: Counter,
    pub trace_queue_spans: Counter,
    pub trace_replicate_spans: Counter,
    pub trace_commit_spans: Counter,
    /// Trace contexts handed from an aborted/deferred tx to its re-endorsed
    /// successor (the trace id survives re-endorsement).
    pub trace_requeues: Counter,
    /// Perfetto process lane for the submission (gateway) side.
    pub gateway_proc: u64,
    /// Perfetto process lanes, one per orderer.
    orderer_procs: Vec<u64>,
    /// Perfetto process lanes, one per peer.
    peer_procs: Vec<u64>,
}

impl ClusterMetrics {
    pub fn new(
        telemetry: &Telemetry,
        orderers: usize,
        peers: usize,
        lane_prefix: &str,
    ) -> ClusterMetrics {
        let r = telemetry.registry();
        let tracer = telemetry.tracer();
        let mut m = ClusterMetrics {
            telemetry: telemetry.clone(),
            lane_prefix: lane_prefix.to_string(),
            elections: r.counter("lv_cluster_elections_total", &[]),
            notleader_retries: r.counter("lv_cluster_notleader_retries_total", &[]),
            batches: r.counter("lv_cluster_batches_total", &[]),
            dup_batches: r.counter("lv_cluster_dup_batches_total", &[]),
            resubmits: r.counter("lv_cluster_resubmits_total", &[]),
            reorder_early_aborts: r.counter("lv_cluster_reorder_early_aborts_total", &[]),
            reorder_deferrals: r.counter("lv_cluster_reorder_deferrals_total", &[]),
            behind: Vec::new(),
            lag_us: Vec::new(),
            catchup_snapshot_us: r.histogram("lv_cluster_catchup_us", &[("method", "snapshot")]),
            catchup_replay_us: r.histogram("lv_cluster_catchup_us", &[("method", "replay")]),
            trace_submit_spans: r.counter("lv_trace_spans_total", &[("stage", "submit")]),
            trace_queue_spans: r.counter("lv_trace_spans_total", &[("stage", "queue")]),
            trace_replicate_spans: r.counter("lv_trace_spans_total", &[("stage", "replicate")]),
            trace_commit_spans: r.counter("lv_trace_spans_total", &[("stage", "commit")]),
            trace_requeues: r.counter("lv_trace_requeues_total", &[]),
            gateway_proc: tracer.process(&format!("{lane_prefix}gateway")),
            orderer_procs: (0..orderers)
                .map(|o| tracer.process(&format!("{lane_prefix}orderer-{o}")))
                .collect(),
            peer_procs: Vec::new(),
        };
        m.ensure_peers(peers);
        m
    }

    /// Grow the per-peer gauge handles and trace lanes (peers can join
    /// mid-run).
    pub fn ensure_peers(&mut self, peers: usize) {
        let r = self.telemetry.registry().clone();
        let tracer = self.telemetry.tracer();
        while self.behind.len() < peers {
            let label = self.behind.len().to_string();
            self.behind
                .push(r.gauge("lv_cluster_peer_blocks_behind", &[("peer", &label)]));
            self.lag_us
                .push(r.gauge("lv_cluster_replication_lag_us", &[("peer", &label)]));
        }
        while self.peer_procs.len() < peers {
            let p = self.peer_procs.len();
            let prefix = &self.lane_prefix;
            self.peer_procs
                .push(tracer.process(&format!("{prefix}peer-{p}")));
        }
    }

    /// Perfetto lane for orderer `o` (falls back to the gateway lane for
    /// out-of-range ids, which cannot happen in a well-formed cluster).
    pub fn orderer_proc(&self, o: usize) -> u64 {
        self.orderer_procs
            .get(o)
            .copied()
            .unwrap_or(self.gateway_proc)
    }

    /// Perfetto lane for peer `p`.
    pub fn peer_proc(&self, p: usize) -> u64 {
        self.peer_procs.get(p).copied().unwrap_or(self.gateway_proc)
    }

    pub fn set_behind(&self, peer: usize, blocks: u64) {
        if let Some(g) = self.behind.get(peer) {
            g.set(blocks as i64);
        }
    }

    pub fn set_lag_us(&self, peer: usize, us: u64) {
        if let Some(g) = self.lag_us.get(peer) {
            g.set(us as i64);
        }
    }
}

//! A deterministic replication cluster for the LedgerView substrate.
//!
//! The paper's evaluation runs on a real topology — two peers and three
//! Raft orderers spread across three GCP regions (§6, *Experimental
//! setup*) — while the rest of this repo commits every block on a single
//! in-process chain. This crate closes that gap with a multi-node harness
//! that runs entirely on the discrete-event simulator's virtual clock:
//!
//! * **Ordering service** ([`cluster`]): N [`fabric_sim::raft::RaftNode`]s
//!   exchange protocol messages over simnet links with per-link latencies
//!   from [`ledgerview_simnet::LatencyMatrix`]. Elections, leader failover
//!   and partitions all play out in virtual time; client batches are
//!   replicated as opaque payloads ([`batch::OrderedBatch`]) through the
//!   Raft log.
//! * **Peers**: each owns a [`fabric_sim::FabricChain`] with its own
//!   durable storage directory, receives committed blocks via leader-based
//!   dissemination with a per-peer delivery queue, validates and commits
//!   independently, and is cross-checked against the canonical rolling
//!   state root — any divergence becomes a typed [`fault::Divergence`].
//! * **Catch-up**: a restarted peer recovers its durable prefix and
//!   replays only the delta; a freshly joined peer bootstraps from a
//!   digest-verified [`fabric_sim::ChainSnapshot`] shipped by a healthy
//!   peer — O(state), not O(history) — then replays the tail.
//! * **Fault injection** ([`fault::Fault`]): crashes, restarts, orderer
//!   kills, partitions, heals and slow links are scheduled at virtual
//!   times, so every failure scenario is reproducible from its seed alone.
//!
//! Telemetry (`lv_cluster_*`) and the gateway's deterministic
//! [`ledgerview_gateway::RetryPolicy`] (for `NotLeader` re-routing) are
//! wired through; see `examples/cluster_failover.rs` and the
//! `replication_catchup` bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cluster;
pub mod fault;
mod metrics;

use std::path::PathBuf;
use std::sync::Arc;

use fabric_sim::chaincode::Chaincode;
use fabric_sim::parallel::ValidationConfig;
use fabric_sim::raft::RaftConfig;
use fabric_store::wal::FsyncPolicy;
use ledgerview_gateway::{ReorderConfig, RetryPolicy};
use ledgerview_simnet::{LatencyMatrix, Region, SimTime};

pub use batch::OrderedBatch;
pub use cluster::{CatchupRecord, ClusterReport, ClusterSim, InvokeOutcome};
pub use fault::{BootstrapMode, ClusterError, Divergence, Fault};

/// Builds a fresh chaincode instance for every replica that deploys it.
///
/// Every peer (and the ordering-side endorser) constructs its own copy,
/// so factories must be pure: two instances given identical invocation
/// sequences must produce identical writes, or replicas diverge.
pub type WorkloadFactory = Arc<dyn Fn() -> Box<dyn Chaincode> + Send + Sync>;

/// Cluster shape, timing, and storage parameters.
///
/// Everything observable about a run is a pure function of this config
/// (including `seed`): two [`ClusterSim`]s built from equal configs
/// produce bit-identical commit histories and state roots.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of ordering-service Raft nodes (the paper runs 3).
    pub orderers: usize,
    /// Number of committing peers at start (more can join via snapshot
    /// bootstrap).
    pub peers: usize,
    /// Master seed: drives Raft election jitter, submission tx ids, and
    /// retry backoff jitter.
    pub seed: u64,
    /// Seed for organisation/peer identity derivation. Every replica uses
    /// the same value so all MSPs are bit-identical.
    pub identity_seed: u64,
    /// Raft election/heartbeat timing.
    pub raft: RaftConfig,
    /// One-way link latencies between regions.
    pub latency: LatencyMatrix,
    /// Region hosting every orderer (the paper co-locates all three).
    pub orderer_region: Region,
    /// Peer regions, cycled when there are more peers than entries.
    pub peer_regions: Vec<Region>,
    /// Period of the ordering service's block cutter: pending endorsed
    /// transactions are batched and proposed every interval.
    pub block_interval: SimTime,
    /// How long a proposed batch may stay unobserved in the committed log
    /// before the client re-proposes it (covers batches lost with a
    /// killed leader).
    pub resubmit_timeout: SimTime,
    /// Backoff policy for re-routing a proposal after `NotLeader` (or a
    /// dead orderer). `max_attempts` bounds one routing round.
    pub retry: RetryPolicy,
    /// Conflict-aware ordering at the batch cutter (the gateway's
    /// [`ReorderConfig`]): doomed transactions are re-endorsed instead of
    /// burning a slot in a replicated block, and intra-batch dependency
    /// cycles are broken by deferral to the next batch. Off by default.
    pub reorder: ReorderConfig,
    /// Modeled transfer bandwidth for snapshot shipping and block replay,
    /// in bytes per virtual second.
    pub catchup_bandwidth_bytes_per_sec: u64,
    /// Root directory; peer `i` persists under `<root>/peer<i>`.
    pub storage_root: PathBuf,
    /// Checkpoint cadence for each peer's durable backend, in blocks.
    pub checkpoint_every: u64,
    /// WAL segment rotation threshold for each peer, in bytes.
    pub wal_segment_bytes: u64,
    /// fsync policy for peer storage (virtual-time runs default to
    /// `Never`; physical durability is exercised by `fabric-store`'s own
    /// tests).
    pub fsync: FsyncPolicy,
    /// Back each peer's state with the disk-backed LSM tree instead of
    /// the in-memory durable backend (used by the `end_to_end_tps` bench
    /// to compare backends under the full pipeline). Snapshot bootstrap
    /// still installs into the durable backend regardless.
    pub lsm_peers: bool,
    /// Commit-time validation pipeline configuration for every peer.
    pub validation: ValidationConfig,
    /// Whether endorsement signatures are produced and checked at
    /// endorsement time.
    pub check_signatures: bool,
    /// Organisation names shared by every replica.
    pub org_names: Vec<String>,
    /// Additional chaincodes deployed on every replica alongside the
    /// default counter workload, as `(name, factory)` pairs. A sharded
    /// deployment uses this to host the 2PC transfer/coordinator
    /// contracts on cluster-backed channels.
    pub workloads: Vec<(String, WorkloadFactory)>,
    /// Prefix for this cluster's Perfetto process-lane names (e.g.
    /// `"shard3/"` → `shard3/gateway`, `shard3/orderer-0`, …). Keeps the
    /// lanes of multiple clusters sharing one [`Telemetry`] distinct.
    pub lane_prefix: String,
}

impl ClusterConfig {
    /// A 3-orderer / 3-peer cluster on the paper's three-region topology,
    /// persisting under `storage_root`.
    pub fn new(storage_root: impl Into<PathBuf>, seed: u64) -> ClusterConfig {
        ClusterConfig {
            orderers: 3,
            peers: 3,
            seed,
            identity_seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
            raft: RaftConfig::default(),
            latency: LatencyMatrix::gcp_three_regions(),
            orderer_region: Region::ASIA_SOUTHEAST,
            peer_regions: vec![
                Region::EUROPE_NORTH,
                Region::NA_NORTHEAST,
                Region::ASIA_SOUTHEAST,
            ],
            block_interval: SimTime::from_millis(250),
            resubmit_timeout: SimTime::from_secs(2),
            retry: RetryPolicy::for_leader_routing(),
            reorder: ReorderConfig::default(),
            catchup_bandwidth_bytes_per_sec: 16 * 1024 * 1024,
            storage_root: storage_root.into(),
            checkpoint_every: 8,
            wal_segment_bytes: 256 * 1024,
            fsync: FsyncPolicy::Never,
            lsm_peers: false,
            validation: ValidationConfig::default(),
            check_signatures: true,
            org_names: vec!["OrdererOrg".to_string(), "PeerOrg".to_string()],
            workloads: Vec::new(),
            lane_prefix: String::new(),
        }
    }
}

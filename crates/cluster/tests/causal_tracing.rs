//! Acceptance tests for cross-node causal tracing.
//!
//! Two guarantees are checked against the canonical failure drill (leader
//! kill, peer crash + restart replay, snapshot bootstrap):
//!
//! 1. **Observation is free**: attaching telemetry must not perturb the
//!    run. Trace contexts ride the `OrderedBatch` wire encoding whether or
//!    not a tracer is listening, so a traced run and an untraced run of
//!    the same seed must be bit-identical (checked as a property over
//!    random seeds with the reorder stage both on and off).
//! 2. **Causality is closed**: every `peer.commit` span recorded anywhere
//!    in the cluster walks back — commit → replicate → queue → submit —
//!    to a root `submit` span carrying the same trace id, including
//!    transactions that were requeued by the conflict-aware cutter or
//!    re-proposed by the submission watchdog.

use std::collections::HashMap;

use fabric_store::testdir::TestDir;
use ledgerview_cluster::cluster::stage;
use ledgerview_cluster::{BootstrapMode, ClusterConfig, ClusterReport, ClusterSim, Fault};
use ledgerview_gateway::ReorderConfig;
use ledgerview_simnet::SimTime;
use ledgerview_telemetry::{SpanRecord, Telemetry, TraceContext};
use proptest::prelude::*;

const SECOND: SimTime = SimTime::from_secs(1);

/// The canonical failure drill from `cluster_faults.rs`, with optional
/// telemetry attached before any transaction is submitted.
fn run_drill(
    root: &std::path::Path,
    seed: u64,
    reorder: ReorderConfig,
    keys: u64,
    telemetry: Option<&Telemetry>,
) -> ClusterReport {
    let mut config = ClusterConfig::new(root, seed);
    config.reorder = reorder;
    let mut sim = ClusterSim::new(config).expect("cluster builds");
    if let Some(t) = telemetry {
        sim.set_telemetry(t);
    }

    sim.schedule_counter_load(
        SimTime::from_millis(300),
        SimTime::from_millis(20),
        200,
        keys,
    );

    sim.run_until(SECOND);
    let leader = sim.current_leader().expect("a leader by t=1s");
    sim.schedule_fault(sim.now(), Fault::KillOrderer(leader));
    sim.schedule_fault(SimTime::from_millis(1_500), Fault::CrashPeer(1));
    sim.schedule_fault(SimTime::from_millis(3_500), Fault::RestartPeer(1));
    sim.schedule_bootstrap_peer(SimTime::from_secs(5), BootstrapMode::Snapshot);

    sim.run_until_converged(SimTime::from_secs(60))
        .expect("cluster converges despite leader kill + peer crash");
    sim.verify_convergence().expect("all live peers canonical");
    sim.report()
}

/// Field-by-field equality over everything the drill determines: commit
/// order, state roots, replica heights, and every counter a tracing side
/// effect could plausibly bump.
fn assert_reports_identical(a: &ClusterReport, b: &ClusterReport) {
    assert_eq!(a.blocks, b.blocks);
    assert_eq!(a.txs, b.txs);
    assert_eq!(a.batch_history, b.batch_history, "same commit order");
    assert_eq!(a.canonical_roots, b.canonical_roots, "same roots");
    assert_eq!(a.peer_heights, b.peer_heights);
    assert_eq!(a.peer_roots, b.peer_roots);
    assert_eq!(a.elections, b.elections);
    assert_eq!(a.notleader_retries, b.notleader_retries);
    assert_eq!(a.resubmits, b.resubmits);
    assert_eq!(a.dup_batches, b.dup_batches);
    assert_eq!(a.failed_batches, b.failed_batches);
    assert_eq!(a.submit_errors, b.submit_errors);
    assert_eq!(a.reorder_early_aborts, b.reorder_early_aborts);
    assert_eq!(a.reorder_deferrals, b.reorder_deferrals);
    assert_eq!(a.reorder_pairs, b.reorder_pairs);
    assert_eq!(a.reorder_cycles, b.reorder_cycles);
    assert!(a.divergences.is_empty());
    assert!(a.election_violations.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Tracing on vs. off is bit-identical across the full fault drill,
    /// for random seeds and with the reorder stage both on and off.
    #[test]
    fn tracing_never_perturbs_the_drill(
        seed in 0u64..100_000,
        reorder_on in any::<bool>(),
    ) {
        let (reorder, keys) = if reorder_on {
            (ReorderConfig::enabled(), 3)
        } else {
            (ReorderConfig::default(), 10)
        };
        let dir_off = TestDir::new("trace-diff-off");
        let dir_on = TestDir::new("trace-diff-on");
        let telemetry = Telemetry::wall_clock();
        let untraced = run_drill(dir_off.path(), seed, reorder.clone(), keys, None);
        let traced = run_drill(dir_on.path(), seed, reorder, keys, Some(&telemetry));
        assert_reports_identical(&untraced, &traced);
        prop_assert!(
            !telemetry.tracer().recent().is_empty(),
            "the traced run must actually have recorded spans"
        );
    }
}

/// Walk one hop up the causal chain: the recorded span whose id is
/// `span.parent`.
fn parent_of<'s>(
    by_id: &HashMap<u64, &'s SpanRecord>,
    span: &SpanRecord,
) -> Option<&'s SpanRecord> {
    span.parent.and_then(|p| by_id.get(&p).copied())
}

/// Every peer commit span across the fault drill links back to its
/// submission: commit → replicate → queue → submit, same trace id at
/// every hop, root parentless. Requeued transactions keep the same trace
/// id through re-endorsement, and watchdog re-proposals are deduplicated
/// down to a single replicate span per transaction.
#[test]
fn every_peer_commit_links_back_to_its_submission() {
    let dir = TestDir::new("trace-causality");
    let telemetry = Telemetry::wall_clock();
    let report = run_drill(
        dir.path(),
        42,
        ReorderConfig::enabled(),
        3,
        Some(&telemetry),
    );
    assert_eq!(report.txs, 200, "every submission commits exactly once");
    assert!(
        report.reorder_deferrals + report.reorder_early_aborts > 0,
        "drill must exercise the requeue path: {report:?}"
    );

    let spans = telemetry.tracer().recent();
    assert_eq!(
        telemetry.tracer().evicted(),
        0,
        "drill must fit in the span ring"
    );
    // Index every span that can serve as a parent. Replay after a peer
    // restart re-records `peer.commit` under the same trace-derived id;
    // parents (submit/queue/replicate) are recorded exactly once, so the
    // map is unambiguous where the walk below needs it to be.
    let mut by_id: HashMap<u64, &SpanRecord> = HashMap::new();
    for s in &spans {
        if s.name != "peer.commit" {
            by_id.insert(s.id, s);
        }
    }

    let commits: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "peer.commit").collect();
    assert!(!commits.is_empty());

    // trace id → distinct peer process lanes that committed it.
    let mut lanes_by_trace: HashMap<u64, std::collections::BTreeSet<u64>> = HashMap::new();
    for commit in &commits {
        let trace = commit.trace_id.expect("commit spans carry a trace id");
        lanes_by_trace
            .entry(trace)
            .or_default()
            .insert(commit.process);

        let replicate = parent_of(&by_id, commit).expect("commit links to replicate");
        assert_eq!(replicate.name, "order.replicate");
        assert_eq!(
            replicate.trace_id,
            Some(trace),
            "trace id survives the wire"
        );

        let queue = parent_of(&by_id, replicate).expect("replicate links to queue");
        assert_eq!(queue.name, "order.queue");
        assert_eq!(queue.trace_id, Some(trace));

        let submit = parent_of(&by_id, queue).expect("queue links to submit");
        assert_eq!(submit.name, "submit");
        assert_eq!(submit.trace_id, Some(trace));
        assert_eq!(submit.parent, None, "submission is the root of the trace");

        // Span ids are trace-derived, never tracer-minted: recompute them.
        let ctx = TraceContext {
            trace_id: trace,
            parent_span: 0,
        };
        assert_eq!(replicate.id, ctx.span_id(stage::REPLICATE));
        assert_eq!(queue.id, ctx.span_id(stage::QUEUE));
        assert_eq!(submit.id, ctx.span_id(stage::SUBMIT));
    }

    // Requeued transactions stay on their original trace: each requeue
    // span is an annotation parented under the submit root, and the
    // requeued trace still has a full commit chain (checked above).
    let requeues: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "order.requeue").collect();
    assert!(!requeues.is_empty(), "reorder drill must requeue");
    for rq in &requeues {
        let trace = rq.trace_id.expect("requeue spans carry a trace id");
        let submit = parent_of(&by_id, rq).expect("requeue links to submit");
        assert_eq!(submit.name, "submit");
        assert_eq!(submit.trace_id, Some(trace));
        assert!(
            lanes_by_trace.contains_key(&trace),
            "requeued tx {trace:#x} still commits on some peer"
        );
    }

    // Watchdog re-proposals are deduplicated: one replicate span per
    // transaction, so each trace id appears exactly once in the raft lane.
    let mut replicate_count: HashMap<u64, u64> = HashMap::new();
    for s in spans.iter().filter(|s| s.name == "order.replicate") {
        *replicate_count.entry(s.trace_id.unwrap()).or_default() += 1;
    }
    for (trace, n) in &replicate_count {
        assert_eq!(*n, 1, "trace {trace:#x} replicated {n} times");
    }
    assert_eq!(replicate_count.len(), 200, "every submission replicated");

    // The full journey is reconstructible on at least the three original
    // peers (the snapshot-bootstrapped peer only records spans for blocks
    // past its snapshot point).
    for (trace, lanes) in &lanes_by_trace {
        assert!(
            lanes.len() >= 3,
            "trace {trace:#x} committed on only {} peer lanes",
            lanes.len()
        );
    }
    assert_eq!(
        lanes_by_trace.len(),
        200,
        "every submission traced to commit"
    );
}

//! Deterministic fault-injection scenarios: the acceptance test for the
//! replication cluster. A fixed seed must reproduce the identical commit
//! history and bit-identical state roots across two full runs; a
//! different seed must still converge (with different content).

use fabric_store::testdir::TestDir;
use ledgerview_cluster::{BootstrapMode, ClusterConfig, ClusterReport, ClusterSim, Fault};
use ledgerview_gateway::ReorderConfig;
use ledgerview_simnet::SimTime;

const SECOND: SimTime = SimTime::from_secs(1);

/// The canonical failure drill: load the cluster, kill the Raft leader
/// mid-load, crash a peer and restart it, and bootstrap a fresh peer from
/// a shipped snapshot — then require convergence.
fn run_scenario(root: &std::path::Path, seed: u64) -> (ClusterReport, usize) {
    run_drill(root, seed, ReorderConfig::default(), 10)
}

/// The same drill with a configurable batch cutter and key-space width
/// (fewer keys ⇒ more intra-batch conflicts for the reorder stage).
fn run_drill(
    root: &std::path::Path,
    seed: u64,
    reorder: ReorderConfig,
    keys: u64,
) -> (ClusterReport, usize) {
    let mut config = ClusterConfig::new(root, seed);
    config.reorder = reorder;
    let mut sim = ClusterSim::new(config).expect("cluster builds");

    // 200 increments spread across the first four seconds.
    sim.schedule_counter_load(
        SimTime::from_millis(300),
        SimTime::from_millis(20),
        200,
        keys,
    );

    // Let an election settle, then kill whoever won.
    sim.run_until(SECOND);
    let leader = sim.current_leader().expect("a leader by t=1s");
    sim.schedule_fault(sim.now(), Fault::KillOrderer(leader));

    // Crash peer 1 mid-load; restart it two seconds later (recovers its
    // durable prefix, replays the delta).
    sim.schedule_fault(SimTime::from_millis(1_500), Fault::CrashPeer(1));
    sim.schedule_fault(SimTime::from_millis(3_500), Fault::RestartPeer(1));

    // A fresh fourth peer joins via snapshot shipping.
    let joined = sim.schedule_bootstrap_peer(SimTime::from_secs(5), BootstrapMode::Snapshot);

    sim.run_until_converged(SimTime::from_secs(60))
        .expect("cluster converges despite leader kill + peer crash");
    sim.verify_convergence().expect("all live peers canonical");
    sim.check_raft_log_matching().expect("log matching holds");
    (sim.report(), joined)
}

#[test]
fn same_seed_reproduces_bit_identical_history() {
    let dir_a = TestDir::new("cluster-rep-a");
    let dir_b = TestDir::new("cluster-rep-b");
    let (a, peer_a) = run_scenario(dir_a.path(), 42);
    let (b, peer_b) = run_scenario(dir_b.path(), 42);

    assert!(a.blocks > 0, "load must commit blocks");
    assert_eq!(peer_a, peer_b);
    assert_eq!(a.batch_history, b.batch_history, "same commit order");
    assert_eq!(a.canonical_roots, b.canonical_roots, "same roots");
    assert_eq!(a.peer_heights, b.peer_heights);
    assert_eq!(a.peer_roots, b.peer_roots);
    assert_eq!(a.elections, b.elections);
    assert_eq!(a.notleader_retries, b.notleader_retries);
    assert_eq!(a.resubmits, b.resubmits);
    assert_eq!(a.dup_batches, b.dup_batches);

    assert!(a.divergences.is_empty(), "no state-root divergence");
    assert!(a.election_violations.is_empty(), "election safety");
    assert_eq!(a.failed_batches, 0, "no batch dropped");
    assert_eq!(a.submit_errors, 0, "no endorsement failures");

    // The drill performs exactly two catch-ups: peer 1's restart replay
    // and the fresh peer's snapshot bootstrap.
    assert_eq!(
        a.catchups.len(),
        2,
        "restart replay + snapshot bootstrap; got {:?}",
        a.catchups
    );
    assert!(a
        .catchups
        .iter()
        .any(|c| c.peer == peer_a && c.mode == ledgerview_cluster::BootstrapMode::Snapshot));
    assert!(a
        .catchups
        .iter()
        .any(|c| c.peer == 1 && c.mode == ledgerview_cluster::BootstrapMode::FullReplay));
}

#[test]
fn reordering_enabled_drill_stays_bit_identical_across_failover() {
    // The same fault schedule — leader kill, peer crash + restart replay,
    // snapshot bootstrap — with the conflict-aware cutter switched on and
    // a narrow hot key space. Reordering decisions are made once, before
    // replication, so they must survive failover: two same-seed runs stay
    // bit-identical and every replica carries the canonical roots.
    let dir_a = TestDir::new("cluster-reorder-a");
    let dir_b = TestDir::new("cluster-reorder-b");
    let (a, peer_a) = run_drill(dir_a.path(), 42, ReorderConfig::enabled(), 3);
    let (b, peer_b) = run_drill(dir_b.path(), 42, ReorderConfig::enabled(), 3);

    assert!(a.blocks > 0, "load must commit blocks");
    assert_eq!(peer_a, peer_b);
    assert_eq!(a.batch_history, b.batch_history, "same commit order");
    assert_eq!(a.canonical_roots, b.canonical_roots, "same roots");
    assert_eq!(a.peer_heights, b.peer_heights);
    assert_eq!(a.peer_roots, b.peer_roots);
    assert_eq!(a.reorder_early_aborts, b.reorder_early_aborts);
    assert_eq!(a.reorder_deferrals, b.reorder_deferrals);
    assert_eq!(a.reorder_pairs, b.reorder_pairs);
    assert_eq!(a.reorder_cycles, b.reorder_cycles);

    assert!(a.divergences.is_empty(), "no state-root divergence");
    assert!(a.election_violations.is_empty(), "election safety");
    assert_eq!(a.failed_batches, 0, "no batch dropped");
    assert_eq!(a.submit_errors, 0, "re-endorsements must succeed");

    // 200 increments over 3 keys at a 250 ms batch interval: the cutter
    // must actually have had conflicts to untangle.
    assert!(
        a.reorder_deferrals + a.reorder_early_aborts > 0,
        "drill must exercise the reorder stage: {a:?}"
    );
    // Every peer ends on the canonical root even though blocks were
    // composed by the conflict-aware cutter.
    let tip = *a.canonical_roots.last().expect("blocks committed");
    for root in a.peer_roots.iter().flatten() {
        assert_eq!(*root, tip);
    }
}

#[test]
fn different_seed_converges_to_different_history() {
    let dir_a = TestDir::new("cluster-seed-a");
    let dir_b = TestDir::new("cluster-seed-b");
    let (a, _) = run_scenario(dir_a.path(), 42);
    let (b, _) = run_scenario(dir_b.path(), 1337);

    // Both runs are healthy...
    for r in [&a, &b] {
        assert!(r.blocks > 0);
        assert!(r.divergences.is_empty());
        assert!(r.election_violations.is_empty());
    }
    // ...but the histories differ: seeds drive tx ids, so roots diverge.
    assert_ne!(a.canonical_roots, b.canonical_roots, "seed changes content");
}

#[test]
fn partition_heal_converges() {
    let dir = TestDir::new("cluster-partition");
    let mut sim = ClusterSim::new(ClusterConfig::new(dir.path(), 7)).expect("cluster builds");
    sim.schedule_counter_load(SimTime::from_millis(300), SimTime::from_millis(25), 120, 8);

    // Isolate one orderer for two seconds; Raft keeps a quorum of 2/3.
    sim.schedule_fault(SimTime::from_millis(800), Fault::Partition(vec![0]));
    sim.schedule_fault(SimTime::from_millis(2_800), Fault::Heal);
    // And degrade a link for a while.
    sim.schedule_fault(
        SimTime::from_millis(3_000),
        Fault::SlowLink {
            from: 1,
            to: 2,
            factor: 20,
        },
    );
    sim.schedule_fault(SimTime::from_millis(4_000), Fault::Heal);

    sim.run_until_converged(SimTime::from_secs(60))
        .expect("partitioned minority cannot stop a 2/3 quorum");
    sim.verify_convergence()
        .expect("canonical roots everywhere");
    sim.check_raft_log_matching().expect("log matching holds");
    let report = sim.report();
    assert!(report.blocks > 0);
    assert!(report.election_violations.is_empty());
    assert!(report.divergences.is_empty());
}

#[test]
fn snapshot_bootstrap_without_donor_errors() {
    let dir = TestDir::new("cluster-nodonor");
    let mut cfg = ClusterConfig::new(dir.path(), 5);
    cfg.peers = 1;
    let mut sim = ClusterSim::new(cfg).expect("cluster builds");
    sim.schedule_counter_load(SimTime::from_millis(300), SimTime::from_millis(25), 20, 4);
    // Crash the only peer, then ask for a snapshot bootstrap: no donor.
    sim.schedule_fault(SimTime::from_secs(2), Fault::CrashPeer(0));
    sim.schedule_bootstrap_peer(SimTime::from_secs(3), BootstrapMode::Snapshot);
    let err = sim
        .run_until_converged(SimTime::from_secs(30))
        .expect_err("no live donor");
    assert!(matches!(err, ledgerview_cluster::ClusterError::NoDonor));
}

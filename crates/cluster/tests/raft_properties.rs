//! Property-based safety checks for the replicated ordering service,
//! driven through the cluster's fault injector: random partition / heal /
//! slow-link schedules (plus a mid-load leader kill) must never produce
//! two leaders in one term, committed-prefix disagreement between any two
//! orderers, or a peer whose state root leaves the canonical history.

use fabric_store::testdir::TestDir;
use ledgerview_cluster::{BootstrapMode, ClusterConfig, ClusterSim, Fault};
use ledgerview_simnet::SimTime;
use proptest::prelude::*;

/// Map a generated tuple onto a fault. Partitions always split 3 orderers
/// into two groups, so one side always retains a quorum; liveness is
/// restored by the unconditional heal the tests schedule at the end.
fn decode_fault(kind: u8, a: usize, b: usize, factor: u64) -> Fault {
    match kind {
        0 => Fault::Partition(vec![a % 3]),
        1 => Fault::Partition(vec![a % 3, b % 3]),
        2 => Fault::SlowLink {
            from: a % 3,
            to: b % 3,
            factor,
        },
        _ => Fault::Heal,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Election safety and log matching under arbitrary fault schedules.
    #[test]
    fn safety_under_random_fault_schedules(
        seed in 0u64..1_000_000,
        kill_leader in any::<bool>(),
        faults in proptest::collection::vec(
            (300u64..4_000, 0u8..4, 0usize..3, 0usize..3, 1u64..24),
            0..6
        ),
    ) {
        let dir = TestDir::new("cluster-prop");
        let mut sim = ClusterSim::new(ClusterConfig::new(dir.path(), seed)).unwrap();
        sim.schedule_counter_load(
            SimTime::from_millis(300),
            SimTime::from_millis(40),
            60,
            6,
        );
        for &(at_ms, kind, a, b, factor) in &faults {
            sim.schedule_fault(SimTime::from_millis(at_ms), decode_fault(kind, a, b, factor));
        }
        // Liveness backstop: whatever the schedule did, heal after it.
        sim.schedule_fault(SimTime::from_secs(6), Fault::Heal);

        if kill_leader {
            // Kill whoever leads mid-load; at most one kill keeps a
            // 2-of-3 quorum alive once healed.
            sim.run_until(SimTime::from_secs(2));
            if let Some(leader) = sim.current_leader() {
                sim.schedule_fault(sim.now(), Fault::KillOrderer(leader));
            }
        }

        let converged = sim.run_until_converged(SimTime::from_secs(120));
        prop_assert!(converged.is_ok(), "no convergence: {:?}", converged.err());
        let report = sim.report();
        prop_assert!(
            report.election_violations.is_empty(),
            "election safety violated: {:?}",
            report.election_violations
        );
        prop_assert!(
            sim.check_raft_log_matching().is_ok(),
            "log matching violated: {:?}",
            sim.check_raft_log_matching().err()
        );
        prop_assert!(
            report.divergences.is_empty(),
            "state divergence: {:?}",
            report.divergences
        );
        prop_assert!(sim.verify_convergence().is_ok());
    }

    /// A peer joining at a random time, by either bootstrap mode, always
    /// ends bit-identical to the canonical history.
    #[test]
    fn late_joiners_reach_canonical_state(
        seed in 0u64..1_000_000,
        join_ms in 1_000u64..5_000,
        snapshot in any::<bool>(),
    ) {
        let dir = TestDir::new("cluster-join");
        let mut sim = ClusterSim::new(ClusterConfig::new(dir.path(), seed)).unwrap();
        sim.schedule_counter_load(
            SimTime::from_millis(300),
            SimTime::from_millis(30),
            80,
            5,
        );
        let mode = if snapshot {
            BootstrapMode::Snapshot
        } else {
            BootstrapMode::FullReplay
        };
        let joined = sim.schedule_bootstrap_peer(SimTime::from_millis(join_ms), mode);
        sim.run_until_converged(SimTime::from_secs(60)).unwrap();
        sim.verify_convergence().unwrap();

        let report = sim.report();
        prop_assert!(report.blocks > 0);
        prop_assert_eq!(report.peer_heights[joined], Some(report.blocks));
        prop_assert_eq!(
            report.peer_roots[joined],
            report.canonical_roots.last().copied()
        );
        prop_assert!(report.catchups.iter().any(|c| c.peer == joined && c.mode == mode));
    }
}

//! AES counter mode (NIST SP 800-38A §6.5).
//!
//! CTR turns the AES block cipher into a stream cipher; encryption and
//! decryption are the same XOR-with-keystream operation.

use crate::aes::Aes;

/// XOR `data` in place with the AES-CTR keystream starting at `iv`.
///
/// The 16-byte `iv` is treated as a big-endian 128-bit counter incremented
/// once per block, exactly as in SP 800-38A.
pub fn apply_keystream(aes: &Aes, iv: &[u8; 16], data: &mut [u8]) {
    let mut counter = *iv;
    for chunk in data.chunks_mut(16) {
        let mut keystream = counter;
        aes.encrypt_block(&mut keystream);
        for (d, k) in chunk.iter_mut().zip(keystream.iter()) {
            *d ^= k;
        }
        increment(&mut counter);
    }
}

/// Increment a 128-bit big-endian counter, wrapping on overflow.
fn increment(counter: &mut [u8; 16]) {
    for byte in counter.iter_mut().rev() {
        let (v, overflow) = byte.overflowing_add(1);
        *byte = v;
        if !overflow {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// SP 800-38A F.5.1/F.5.2: AES-128-CTR, four blocks.
    #[test]
    fn sp800_38a_f5_aes128_ctr() {
        let key: [u8; 16] = hex::decode("2b7e151628aed2a6abf7158809cf4f3c")
            .unwrap()
            .try_into()
            .unwrap();
        let iv: [u8; 16] = hex::decode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
            .unwrap()
            .try_into()
            .unwrap();
        let mut data = hex::decode(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710",
        )
        .unwrap();
        let aes = Aes::new_128(&key);
        apply_keystream(&aes, &iv, &mut data);
        assert_eq!(
            hex::encode(&data),
            "874d6191b620e3261bef6864990db6ce\
             9806f66b7970fdff8617187bb9fffdff\
             5ae4df3edbd5d35e5b4f09020db03eab\
             1e031dda2fbe03d1792170a0f3009cee"
        );
        // Decryption is the same operation.
        apply_keystream(&aes, &iv, &mut data);
        assert_eq!(
            hex::encode(&data),
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710"
        );
    }

    /// SP 800-38A F.5.5: AES-256-CTR.
    #[test]
    fn sp800_38a_f5_aes256_ctr() {
        let key: [u8; 32] =
            hex::decode("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
                .unwrap()
                .try_into()
                .unwrap();
        let iv: [u8; 16] = hex::decode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
            .unwrap()
            .try_into()
            .unwrap();
        let mut data = hex::decode("6bc1bee22e409f96e93d7e117393172a").unwrap();
        let aes = Aes::new_256(&key);
        apply_keystream(&aes, &iv, &mut data);
        assert_eq!(hex::encode(&data), "601ec313775789a5b7a7f504bbf3d228");
    }

    #[test]
    fn partial_block() {
        let aes = Aes::new_128(&[1u8; 16]);
        let iv = [0u8; 16];
        let mut data = b"hello".to_vec();
        apply_keystream(&aes, &iv, &mut data);
        assert_ne!(&data, b"hello");
        apply_keystream(&aes, &iv, &mut data);
        assert_eq!(&data, b"hello");
    }

    #[test]
    fn counter_wraps() {
        let mut c = [0xffu8; 16];
        increment(&mut c);
        assert_eq!(c, [0u8; 16]);

        let mut c2 = [0u8; 16];
        c2[15] = 0xff;
        increment(&mut c2);
        assert_eq!(c2[15], 0);
        assert_eq!(c2[14], 1);
    }

    #[test]
    fn empty_input_is_noop() {
        let aes = Aes::new_128(&[1u8; 16]);
        let mut data: Vec<u8> = vec![];
        apply_keystream(&aes, &[0u8; 16], &mut data);
        assert!(data.is_empty());
    }
}

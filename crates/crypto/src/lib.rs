//! From-scratch cryptographic primitives for the LedgerView reproduction.
//!
//! LedgerView (SIGMOD 2022) conceals the secret part of blockchain
//! transactions with symmetric encryption or salted hashing, and distributes
//! view keys with public-key encryption. This crate implements every
//! primitive the system needs, with no external crypto dependencies:
//!
//! * [`sha256`], [`sha512`] — FIPS 180-4 hash functions.
//! * [`hmac`] — RFC 2104 message authentication (SHA-256 and SHA-512).
//! * [`hkdf`] — RFC 5869 key derivation.
//! * [`aes`] — FIPS 197 block cipher (128/192/256-bit keys).
//! * [`ctr`] — NIST SP 800-38A counter mode.
//! * [`aead`] — authenticated encryption (AES-256-CTR + HMAC-SHA-256,
//!   encrypt-then-MAC), the `enc(·, K)` of the paper.
//! * [`x25519`] — RFC 7748 Diffie–Hellman, used for hybrid public-key
//!   encryption (`enc(K_V, PubK_u)` in the paper).
//! * [`ed25519`] — RFC 8032 signatures, used for endorsements in the
//!   Fabric substrate.
//! * [`keys`] — the key types the rest of the workspace uses:
//!   [`keys::SymmetricKey`], [`keys::EncryptionKeyPair`] (with
//!   [`keys::seal`]/[`keys::open`] hybrid encryption) and
//!   [`keys::SigningKeyPair`].
//!
//! Every primitive is pinned by the published test vectors of its defining
//! standard, plus property-based round-trip tests.
//!
//! # Security disclaimer
//!
//! This code is written for clarity and reproduction fidelity. It is **not**
//! hardened against side channels (it is not constant-time) and must not be
//! used to protect real data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod aes;
pub mod ctr;
pub mod ed25519;
pub mod error;
pub mod hex;
pub mod hkdf;
pub mod hmac;
pub mod keys;
pub mod rng;
pub mod sha256;
pub mod sha512;
pub mod sigcache;
pub mod x25519;

pub use aead::{open_sym, seal_sym};
pub use error::CryptoError;
pub use keys::{open, seal, EncryptionKeyPair, PublicKey, SigningKeyPair, SymmetricKey};
pub use sha256::{sha256, Digest, Sha256};
pub use sigcache::{CacheStats, SigCache};

//! Authenticated encryption: AES-256-CTR + HMAC-SHA-256, encrypt-then-MAC.
//!
//! This is the `enc(data, K)` used throughout the paper: transactions'
//! secret parts (§4.1), view key lists (§4.1), `V_access` entries (§4.2),
//! and view storage payloads (§4.3) are all sealed with this construction.
//!
//! Wire format: `nonce (16) || ciphertext (len(pt)) || tag (32)`.
//! The tag authenticates `nonce || aad || ciphertext` with the lengths of
//! `aad` bound into the MAC input, so the same bytes cannot be reinterpreted
//! across contexts.

use rand::RngCore;

use crate::aes::Aes;
use crate::ctr;
use crate::error::CryptoError;
use crate::hkdf;
use crate::hmac::{hmac_sha256_multi, verify_tag};

/// Size of the random nonce prefix.
pub const NONCE_LEN: usize = 16;
/// Size of the HMAC-SHA-256 tag suffix.
pub const TAG_LEN: usize = 32;
/// Total ciphertext expansion: `NONCE_LEN + TAG_LEN`.
pub const OVERHEAD: usize = NONCE_LEN + TAG_LEN;

/// Derive independent encryption and MAC keys from a 32-byte master key.
fn subkeys(key: &[u8; 32]) -> ([u8; 32], [u8; 32]) {
    let prk = hkdf::extract(b"ledgerview-aead-v1", key);
    let mut enc = [0u8; 32];
    hkdf::expand(&prk, b"enc", &mut enc);
    let mut mac = [0u8; 32];
    hkdf::expand(&prk, b"mac", &mut mac);
    (enc, mac)
}

fn mac_input_tag(mac_key: &[u8; 32], nonce: &[u8], aad: &[u8], ct: &[u8]) -> [u8; 32] {
    let aad_len = (aad.len() as u64).to_be_bytes();
    hmac_sha256_multi(mac_key, &[nonce, &aad_len, aad, ct])
}

/// Encrypt `plaintext` under a 32-byte symmetric key, binding optional
/// associated data `aad` into the authentication tag.
pub fn seal_sym_aad<R: RngCore + ?Sized>(
    key: &[u8; 32],
    rng: &mut R,
    plaintext: &[u8],
    aad: &[u8],
) -> Vec<u8> {
    let (enc_key, mac_key) = subkeys(key);
    let mut nonce = [0u8; NONCE_LEN];
    rng.fill_bytes(&mut nonce);

    let mut out = Vec::with_capacity(plaintext.len() + OVERHEAD);
    out.extend_from_slice(&nonce);
    out.extend_from_slice(plaintext);
    let aes = Aes::new_256(&enc_key);
    ctr::apply_keystream(&aes, &nonce, &mut out[NONCE_LEN..]);

    let tag = mac_input_tag(&mac_key, &nonce, aad, &out[NONCE_LEN..]);
    out.extend_from_slice(&tag);
    out
}

/// Decrypt and authenticate a ciphertext produced by [`seal_sym_aad`].
pub fn open_sym_aad(key: &[u8; 32], ciphertext: &[u8], aad: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if ciphertext.len() < OVERHEAD {
        return Err(CryptoError::DecryptionFailed);
    }
    let (enc_key, mac_key) = subkeys(key);
    let nonce: [u8; NONCE_LEN] = ciphertext[..NONCE_LEN].try_into().expect("nonce");
    let ct = &ciphertext[NONCE_LEN..ciphertext.len() - TAG_LEN];
    let tag = &ciphertext[ciphertext.len() - TAG_LEN..];

    let expect = mac_input_tag(&mac_key, &nonce, aad, ct);
    if !verify_tag(&expect, tag) {
        return Err(CryptoError::DecryptionFailed);
    }
    let mut pt = ct.to_vec();
    let aes = Aes::new_256(&enc_key);
    ctr::apply_keystream(&aes, &nonce, &mut pt);
    Ok(pt)
}

/// Encrypt without associated data. See [`seal_sym_aad`].
pub fn seal_sym<R: RngCore + ?Sized>(key: &[u8; 32], rng: &mut R, plaintext: &[u8]) -> Vec<u8> {
    seal_sym_aad(key, rng, plaintext, &[])
}

/// Decrypt without associated data. See [`open_sym_aad`].
pub fn open_sym(key: &[u8; 32], ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
    open_sym_aad(key, ciphertext, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn round_trip() {
        let key = [42u8; 32];
        let mut rng = seeded(1);
        let ct = seal_sym(&key, &mut rng, b"the secret part of a transaction");
        assert_eq!(ct.len(), 32 + OVERHEAD);
        let pt = open_sym(&key, &ct).unwrap();
        assert_eq!(pt, b"the secret part of a transaction");
    }

    #[test]
    fn empty_plaintext() {
        let key = [1u8; 32];
        let ct = seal_sym(&key, &mut seeded(2), b"");
        assert_eq!(open_sym(&key, &ct).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn wrong_key_fails() {
        let ct = seal_sym(&[1u8; 32], &mut seeded(3), b"data");
        assert_eq!(
            open_sym(&[2u8; 32], &ct),
            Err(CryptoError::DecryptionFailed)
        );
    }

    #[test]
    fn tamper_any_byte_fails() {
        let key = [5u8; 32];
        let ct = seal_sym(&key, &mut seeded(4), b"tamper-evidence");
        for i in 0..ct.len() {
            let mut bad = ct.clone();
            bad[i] ^= 0x01;
            assert!(open_sym(&key, &bad).is_err(), "byte {i} tamper accepted");
        }
    }

    #[test]
    fn truncated_fails() {
        let key = [6u8; 32];
        let ct = seal_sym(&key, &mut seeded(5), b"data");
        for len in 0..OVERHEAD.min(ct.len()) {
            assert!(open_sym(&key, &ct[..len]).is_err());
        }
        assert!(open_sym(&key, &ct[..ct.len() - 1]).is_err());
    }

    #[test]
    fn aad_is_bound() {
        let key = [7u8; 32];
        let ct = seal_sym_aad(&key, &mut seeded(6), b"payload", b"tid-42");
        assert!(open_sym_aad(&key, &ct, b"tid-42").is_ok());
        assert!(open_sym_aad(&key, &ct, b"tid-43").is_err());
        assert!(open_sym_aad(&key, &ct, b"").is_err());
    }

    #[test]
    fn nonces_differ_between_seals() {
        let key = [8u8; 32];
        let mut rng = seeded(7);
        let c1 = seal_sym(&key, &mut rng, b"same plaintext");
        let c2 = seal_sym(&key, &mut rng, b"same plaintext");
        assert_ne!(c1, c2, "nonce reuse");
        assert_eq!(open_sym(&key, &c1).unwrap(), open_sym(&key, &c2).unwrap());
    }
}

//! Error type shared by all primitives in this crate.

use std::fmt;

/// Errors returned by cryptographic operations.
///
/// Decryption and verification failures are deliberately coarse-grained: a
/// caller learns *that* an operation failed, never *why*, so error values
/// cannot be used as a padding/verification oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// Authenticated decryption failed: the ciphertext or its tag was
    /// tampered with, or the wrong key was used.
    DecryptionFailed,
    /// A signature did not verify under the given public key.
    InvalidSignature,
    /// Input bytes do not encode a valid key, point, or ciphertext
    /// (e.g. wrong length, or a point not on the curve).
    MalformedInput,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::DecryptionFailed => write!(f, "authenticated decryption failed"),
            CryptoError::InvalidSignature => write!(f, "signature verification failed"),
            CryptoError::MalformedInput => write!(f, "malformed cryptographic input"),
        }
    }
}

impl std::error::Error for CryptoError {}

//! Random number generation helpers.
//!
//! Every randomized operation in the workspace threads an explicit
//! `rand::RngCore` so experiments are reproducible from a seed. This module
//! provides the conventional constructors.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A deterministic RNG seeded from a `u64`, for reproducible experiments
/// and tests.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// An RNG seeded from operating-system entropy, for examples that do not
/// need reproducibility.
pub fn from_entropy() -> StdRng {
    StdRng::from_os_rng()
}

/// Fill and return a fixed-size array of random bytes.
pub fn random_array<const N: usize, R: RngCore + ?Sized>(rng: &mut R) -> [u8; N] {
    let mut out = [0u8; N];
    rng.fill_bytes(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a: [u8; 32] = random_array(&mut seeded(42));
        let b: [u8; 32] = random_array(&mut seeded(42));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: [u8; 32] = random_array(&mut seeded(1));
        let b: [u8; 32] = random_array(&mut seeded(2));
        assert_ne!(a, b);
    }
}

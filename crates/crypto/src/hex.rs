//! Minimal hex encoding/decoding, used for digests, test vectors and display.

/// Encode bytes as a lowercase hex string.
pub fn encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    s
}

/// Decode a hex string (upper or lower case) into bytes.
///
/// Returns `None` on odd length or non-hex characters.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits: Vec<u32> = s.chars().map(|c| c.to_digit(16)).collect::<Option<_>>()?;
    Some(
        digits
            .chunks(2)
            .map(|p| ((p[0] << 4) | p[1]) as u8)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data = [0x00, 0x01, 0xab, 0xff, 0x7f];
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn encode_known() {
        assert_eq!(encode(&[0xde, 0xad, 0xbe, 0xef]), "deadbeef");
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn decode_rejects_odd_length() {
        assert!(decode("abc").is_none());
    }

    #[test]
    fn decode_rejects_non_hex() {
        assert!(decode("zz").is_none());
        assert!(decode("0g").is_none());
    }

    #[test]
    fn decode_accepts_uppercase() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }
}

//! Ed25519 signatures (RFC 8032).
//!
//! The Fabric substrate signs endorsements, blocks and identities with
//! Ed25519. Curve constants (`d`, `√−1`, the base point) are *derived* from
//! their definitions at first use rather than transcribed, and the RFC 8032
//! test vectors pin the result.

use std::sync::OnceLock;

use crate::error::CryptoError;
use crate::sha512::Sha512;
use crate::x25519::Fe;

/// A point on the twisted Edwards curve in extended coordinates
/// (X : Y : Z : T) with T = XY/Z.
#[derive(Clone, Copy, Debug)]
struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

fn fe_small(v: u64) -> Fe {
    debug_assert!(v < (1 << 51));
    Fe([v, 0, 0, 0, 0])
}

fn fe_neg(a: Fe) -> Fe {
    Fe::ZERO.sub(a)
}

/// d = −121665/121666, computed from its definition.
fn d() -> Fe {
    static D: OnceLock<Fe> = OnceLock::new();
    *D.get_or_init(|| fe_neg(fe_small(121665)).mul(fe_small(121666).invert()))
}

/// 2d, used by the unified addition formula.
fn d2() -> Fe {
    static D2: OnceLock<Fe> = OnceLock::new();
    *D2.get_or_init(|| d().add(d()))
}

/// √−1 = 2^((p−1)/4), computed by exponentiation.
fn sqrt_m1() -> Fe {
    static I: OnceLock<Fe> = OnceLock::new();
    *I.get_or_init(|| {
        // (p - 1) / 4 = 2^253 - 5, little-endian bytes: fb, ff × 30, 1f.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfb;
        exp[31] = 0x1f;
        fe_small(2).pow_le(&exp)
    })
}

/// The standard base point B, decompressed from its canonical encoding
/// (y = 4/5 with even x).
fn base_point() -> Point {
    static B: OnceLock<Point> = OnceLock::new();
    *B.get_or_init(|| {
        let mut enc = [0x66u8; 32];
        enc[31] = 0x66;
        enc[0] = 0x58;
        decompress(&enc).expect("base point encoding is valid")
    })
}

impl Point {
    /// The identity element (0, 1).
    fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// Unified point addition (also valid for doubling).
    fn add(&self, q: &Point) -> Point {
        let a = self.y.sub(self.x).mul(q.y.sub(q.x));
        let b = self.y.add(self.x).mul(q.y.add(q.x));
        let c = self.t.mul(d2()).mul(q.t);
        let dd = self.z.add(self.z).mul(q.z);
        let e = b.sub(a);
        let f = dd.sub(c);
        let g = dd.add(c);
        let h = b.add(a);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    /// Scalar multiplication by a little-endian 256-bit scalar
    /// (double-and-add; not constant time, see crate disclaimer). Doubling
    /// stops at the scalar's highest set byte, so short scalars — e.g. the
    /// 128-bit coefficients of batch verification — cost proportionally
    /// less.
    fn scalar_mul(&self, scalar_le: &[u8; 32]) -> Point {
        let top = match scalar_le.iter().rposition(|&b| b != 0) {
            Some(i) => i,
            None => return Point::identity(),
        };
        let mut result = Point::identity();
        let mut acc = *self;
        for (i, byte) in scalar_le.iter().enumerate().take(top + 1) {
            for bit in 0..8 {
                if (byte >> bit) & 1 == 1 {
                    result = result.add(&acc);
                }
                if i < top || (*byte as u32) >> (bit + 1) != 0 {
                    acc = acc.add(&acc);
                }
            }
        }
        result
    }

    /// True for points of order 1, 2, 4 or 8 (the torsion subgroup):
    /// 8·P == identity after three doublings.
    fn is_small_order(&self) -> bool {
        let mut p = *self;
        for _ in 0..3 {
            p = p.add(&p);
        }
        p.equals(&Point::identity())
    }

    /// Compress to the 32-byte RFC 8032 encoding: y with the sign of x in
    /// the top bit.
    fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(zinv);
        let y = self.y.mul(zinv);
        let mut out = y.to_bytes();
        out[31] |= (x.to_bytes()[0] & 1) << 7;
        out
    }

    /// Projective equality: X1·Z2 == X2·Z1 and Y1·Z2 == Y2·Z1.
    fn equals(&self, q: &Point) -> bool {
        let a = self.x.mul(q.z).to_bytes();
        let b = q.x.mul(self.z).to_bytes();
        let c = self.y.mul(q.z).to_bytes();
        let d = q.y.mul(self.z).to_bytes();
        a == b && c == d
    }
}

/// Combined multi-scalar multiplication `Σ sᵢ·Pᵢ` over little-endian
/// scalars, sharing one doubling chain across every term (Straus's trick).
///
/// A lone double-and-add pays ~256 doublings *per scalar*; here the whole
/// sum pays them once, leaving one point addition per set scalar bit. For
/// the large batches built by [`verify_batch`] this is the dominant saving
/// — doublings are roughly two thirds of a naive scalar multiplication.
/// Short scalars (e.g. 128-bit batch coefficients) only contribute
/// additions up to their own top bit.
fn multi_scalar_mul(pairs: &[(Point, [u8; 32])]) -> Point {
    let top_bit = pairs
        .iter()
        .filter_map(|(_, s)| s.iter().rposition(|&b| b != 0).map(|i| i * 8 + 7))
        .max();
    let Some(top_bit) = top_bit else {
        return Point::identity();
    };
    let mut acc = Point::identity();
    for bit in (0..=top_bit).rev() {
        acc = acc.add(&acc);
        for (p, s) in pairs {
            if (s[bit / 8] >> (bit % 8)) & 1 == 1 {
                acc = acc.add(p);
            }
        }
    }
    acc
}

/// Check that the y-coordinate of a point encoding is canonically reduced
/// (y < p = 2²⁵⁵ − 19, after masking the sign bit). RFC 8032 §5.1.3
/// requires rejecting non-canonical encodings.
fn is_canonical_y(enc: &[u8; 32]) -> bool {
    // p in little-endian bytes: ed, ff × 30, 7f.
    let mut y = *enc;
    y[31] &= 0x7f;
    if y[31] < 0x7f {
        return true;
    }
    for i in (1..31).rev() {
        if y[i] < 0xff {
            return true;
        }
    }
    y[0] < 0xed
}

/// Decompress an RFC 8032 point encoding (§5.1.3).
fn decompress(enc: &[u8; 32]) -> Result<Point, CryptoError> {
    if !is_canonical_y(enc) {
        return Err(CryptoError::MalformedInput);
    }
    let sign = enc[31] >> 7;
    let y = Fe::from_bytes(enc); // from_bytes masks the sign bit
    let y2 = y.square();
    let u = y2.sub(Fe::ONE);
    let v = d().mul(y2).add(Fe::ONE);

    // Candidate root x = u·v³·(u·v⁷)^((p−5)/8).
    let v3 = v.square().mul(v);
    let v7 = v3.square().mul(v);
    // (p - 5) / 8 = 2^252 - 3, little-endian bytes: fd, ff × 30, 0f.
    let mut exp = [0xffu8; 32];
    exp[0] = 0xfd;
    exp[31] = 0x0f;
    let mut x = u.mul(v3).mul(u.mul(v7).pow_le(&exp));

    let vx2 = v.mul(x.square());
    if vx2.sub(u).is_zero() {
        // x is already a root.
    } else if vx2.add(u).is_zero() {
        x = x.mul(sqrt_m1());
    } else {
        return Err(CryptoError::MalformedInput);
    }

    if x.is_zero() && sign == 1 {
        return Err(CryptoError::MalformedInput);
    }
    if x.to_bytes()[0] & 1 != sign {
        x = fe_neg(x);
    }
    Ok(Point {
        x,
        y,
        z: Fe::ONE,
        t: x.mul(y),
    })
}

/// The group order L as 32 little-endian bytes:
/// 2²⁵² + 27742317777372353535851937790883648493.
const L: [i64; 32] = [
    0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x10,
];

/// Reduce a 64-byte little-endian integer modulo L (TweetNaCl's `modL`).
fn mod_l(x: &mut [i64; 64]) -> [u8; 32] {
    for i in (32..64).rev() {
        let mut carry: i64 = 0;
        for j in (i - 32)..(i - 12) {
            x[j] += carry - 16 * x[i] * L[j - (i - 32)];
            carry = (x[j] + 128) >> 8;
            x[j] -= carry << 8;
        }
        x[i - 12] += carry;
        x[i] = 0;
    }
    let mut carry: i64 = 0;
    for j in 0..32 {
        x[j] += carry - (x[31] >> 4) * L[j];
        carry = x[j] >> 8;
        x[j] &= 255;
    }
    for j in 0..32 {
        x[j] -= carry * L[j];
    }
    let mut r = [0u8; 32];
    for i in 0..32 {
        x[i + 1] += x[i] >> 8;
        r[i] = (x[i] & 255) as u8;
    }
    r
}

/// Reduce a 64-byte hash output modulo L.
fn reduce64(h: &[u8; 64]) -> [u8; 32] {
    let mut x = [0i64; 64];
    for (i, b) in h.iter().enumerate() {
        x[i] = *b as i64;
    }
    mod_l(&mut x)
}

/// Compute (a·b + c) mod L over 32-byte little-endian scalars.
fn mul_add(a: &[u8; 32], b: &[u8; 32], c: &[u8; 32]) -> [u8; 32] {
    let mut x = [0i64; 64];
    for (i, v) in c.iter().enumerate() {
        x[i] = *v as i64;
    }
    for i in 0..32 {
        for j in 0..32 {
            x[i + j] += (a[i] as i64) * (b[j] as i64);
        }
    }
    mod_l(&mut x)
}

/// Check that a 32-byte little-endian scalar is canonically reduced (< L).
fn is_canonical_scalar(s: &[u8; 32]) -> bool {
    for i in (0..32).rev() {
        let si = s[i] as i64;
        if si < L[i] {
            return true;
        }
        if si > L[i] {
            return false;
        }
    }
    false // s == L
}

fn clamp(mut s: [u8; 32]) -> [u8; 32] {
    s[0] &= 248;
    s[31] &= 63;
    s[31] |= 64;
    s
}

/// Derive the 32-byte public key for a 32-byte secret seed.
pub fn public_key(seed: &[u8; 32]) -> [u8; 32] {
    let h = crate::sha512::sha512(seed);
    let mut s = [0u8; 32];
    s.copy_from_slice(&h.0[..32]);
    let s = clamp(s);
    base_point().scalar_mul(&s).compress()
}

/// Sign `message` with the secret `seed`, returning a 64-byte signature.
pub fn sign(seed: &[u8; 32], message: &[u8]) -> [u8; 64] {
    let h = crate::sha512::sha512(seed);
    let mut s = [0u8; 32];
    s.copy_from_slice(&h.0[..32]);
    let s = clamp(s);
    let prefix = &h.0[32..64];
    let a_enc = base_point().scalar_mul(&s).compress();

    let mut hasher = Sha512::new();
    hasher.update(prefix);
    hasher.update(message);
    let r = reduce64(&hasher.finalize().0);
    let r_enc = base_point().scalar_mul(&r).compress();

    let mut hasher = Sha512::new();
    hasher.update(&r_enc);
    hasher.update(&a_enc);
    hasher.update(message);
    let k = reduce64(&hasher.finalize().0);

    let big_s = mul_add(&k, &s, &r);
    let mut sig = [0u8; 64];
    sig[..32].copy_from_slice(&r_enc);
    sig[32..].copy_from_slice(&big_s);
    sig
}

/// Verify a 64-byte signature over `message` under `public_key`.
pub fn verify(public_key: &[u8; 32], message: &[u8], sig: &[u8; 64]) -> Result<(), CryptoError> {
    let r_enc: [u8; 32] = sig[..32].try_into().expect("32 bytes");
    let s: [u8; 32] = sig[32..].try_into().expect("32 bytes");
    if !is_canonical_scalar(&s) {
        return Err(CryptoError::InvalidSignature);
    }
    let a = decompress(public_key).map_err(|_| CryptoError::InvalidSignature)?;
    // Reject small-order (torsion) public keys: they admit signatures that
    // verify for every message.
    if a.is_small_order() {
        return Err(CryptoError::InvalidSignature);
    }
    let r = decompress(&r_enc).map_err(|_| CryptoError::InvalidSignature)?;

    let mut hasher = Sha512::new();
    hasher.update(&r_enc);
    hasher.update(public_key);
    hasher.update(message);
    let k = reduce64(&hasher.finalize().0);

    // Check S·B == R + k·A.
    let lhs = base_point().scalar_mul(&s);
    let rhs = r.add(&a.scalar_mul(&k));
    if lhs.equals(&rhs) {
        Ok(())
    } else {
        Err(CryptoError::InvalidSignature)
    }
}

/// One signature to be checked by [`verify_batch`].
#[derive(Clone, Copy, Debug)]
pub struct BatchEntry<'a> {
    /// The 32-byte compressed public key.
    pub public_key: &'a [u8; 32],
    /// The signed message.
    pub message: &'a [u8],
    /// The 64-byte signature.
    pub signature: &'a [u8; 64],
}

/// Verify a batch of Ed25519 signatures with one combined check.
///
/// Uses the standard random-linear-combination technique: with per-entry
/// 128-bit coefficients `z_i`, the batch is valid when
///
/// ```text
/// (Σ z_i·s_i mod L)·B  ==  Σ (z_i·R_i + (z_i·k_i mod L)·A_i)
/// ```
///
/// The right-hand side is evaluated as one [`multi_scalar_mul`] sharing a
/// single doubling chain across every term, so each entry costs one
/// addition per set bit of its (128-bit) `z_i` and (256-bit) `z_i·k_i`
/// coefficients instead of two full double-and-add walks — roughly a 3–4×
/// saving. The coefficients are derived by hashing the entire batch content,
/// so the check is deterministic (a requirement of this simulator) while a
/// forged entry still has to beat a ~2⁻¹²⁸ chance of cancelling the
/// combination. No cofactor multiplication is applied, so a batch accepts
/// exactly when every entry verifies individually (up to that negligible
/// probability); callers that need to attribute a failure fall back to
/// [`verify`] per entry, making batched outcomes identical to serial ones.
///
/// An `Err` means at least one entry is invalid (or the whole batch failed
/// the combined equation); it does not identify which entry.
pub fn verify_batch(entries: &[BatchEntry<'_>]) -> Result<(), CryptoError> {
    if entries.is_empty() {
        return Ok(());
    }
    if entries.len() == 1 {
        let e = entries[0];
        return verify(e.public_key, e.message, e.signature);
    }

    // Decode and pre-validate every entry; compute its challenge k_i.
    let mut points = Vec::with_capacity(entries.len()); // (A_i, R_i)
    let mut scalars = Vec::with_capacity(entries.len()); // (s_i, k_i)
    for e in entries {
        let r_enc: [u8; 32] = e.signature[..32].try_into().expect("32 bytes");
        let s: [u8; 32] = e.signature[32..].try_into().expect("32 bytes");
        if !is_canonical_scalar(&s) {
            return Err(CryptoError::InvalidSignature);
        }
        let a = decompress(e.public_key).map_err(|_| CryptoError::InvalidSignature)?;
        if a.is_small_order() {
            return Err(CryptoError::InvalidSignature);
        }
        let r = decompress(&r_enc).map_err(|_| CryptoError::InvalidSignature)?;
        let mut hasher = Sha512::new();
        hasher.update(&r_enc);
        hasher.update(e.public_key);
        hasher.update(e.message);
        let k = reduce64(&hasher.finalize().0);
        points.push((a, r));
        scalars.push((s, k));
    }

    // Derive the coefficient seed from the entire batch content. Long
    // messages are pre-hashed so the transcript stays small.
    let mut transcript = Sha512::new();
    transcript.update(b"ledgerview.ed25519.batch.v1");
    for e in entries {
        transcript.update(e.public_key);
        transcript.update(e.signature);
        transcript.update(&crate::sha512::sha512(e.message).0);
    }
    let seed = transcript.finalize().0;

    let zero = [0u8; 32];
    let mut s_sum = [0u8; 32];
    let mut pairs: Vec<(Point, [u8; 32])> = Vec::with_capacity(2 * entries.len());
    for (i, ((a, r), (s, k))) in points.iter().zip(scalars.iter()).enumerate() {
        let mut zh = Sha512::new();
        zh.update(&seed);
        zh.update(&(i as u64).to_le_bytes());
        let mut z = [0u8; 32];
        z[..16].copy_from_slice(&zh.finalize().0[..16]);

        s_sum = mul_add(&z, s, &s_sum);
        let zk = mul_add(&z, k, &zero);
        pairs.push((*r, z));
        pairs.push((*a, zk));
    }

    let rhs = multi_scalar_mul(&pairs);
    let lhs = base_point().scalar_mul(&s_sum);
    if lhs.equals(&rhs) {
        Ok(())
    } else {
        Err(CryptoError::InvalidSignature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn arr32(s: &str) -> [u8; 32] {
        hex::decode(s).unwrap().try_into().unwrap()
    }

    // RFC 8032 §7.1 TEST 1.
    #[test]
    fn rfc8032_test1() {
        let seed = arr32("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
        let pk = public_key(&seed);
        assert_eq!(
            hex::encode(&pk),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
        );
        let sig = sign(&seed, b"");
        assert_eq!(
            hex::encode(&sig),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
             5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
        );
        verify(&pk, b"", &sig).unwrap();
    }

    // RFC 8032 §7.1 TEST 2.
    #[test]
    fn rfc8032_test2() {
        let seed = arr32("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
        let pk = public_key(&seed);
        assert_eq!(
            hex::encode(&pk),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
        );
        let msg = [0x72u8];
        let sig = sign(&seed, &msg);
        assert_eq!(
            hex::encode(&sig),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
             085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
        );
        verify(&pk, &msg, &sig).unwrap();
    }

    // RFC 8032 §7.1 TEST 3.
    #[test]
    fn rfc8032_test3() {
        let seed = arr32("c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7");
        let pk = public_key(&seed);
        assert_eq!(
            hex::encode(&pk),
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025"
        );
        let msg = hex::decode("af82").unwrap();
        let sig = sign(&seed, &msg);
        assert_eq!(
            hex::encode(&sig),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
             18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
        );
        verify(&pk, &msg, &sig).unwrap();
    }

    #[test]
    fn tampered_message_rejected() {
        let seed = [7u8; 32];
        let pk = public_key(&seed);
        let sig = sign(&seed, b"original message");
        assert!(verify(&pk, b"tampered message", &sig).is_err());
    }

    #[test]
    fn tampered_signature_rejected() {
        let seed = [8u8; 32];
        let pk = public_key(&seed);
        let mut sig = sign(&seed, b"message");
        sig[0] ^= 1;
        assert!(verify(&pk, b"message", &sig).is_err());
        sig[0] ^= 1;
        sig[63] ^= 0x20;
        assert!(verify(&pk, b"message", &sig).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let sig = sign(&[9u8; 32], b"message");
        let other_pk = public_key(&[10u8; 32]);
        assert!(verify(&other_pk, b"message", &sig).is_err());
    }

    #[test]
    fn non_canonical_s_rejected() {
        // Take a valid signature and add L to S: same point equation but
        // non-canonical encoding must be rejected (malleability defence).
        let seed = [11u8; 32];
        let pk = public_key(&seed);
        let mut sig = sign(&seed, b"m");
        let mut s = [0i64; 33];
        for i in 0..32 {
            s[i] = sig[32 + i] as i64 + L[i];
        }
        for i in 0..32 {
            s[i + 1] += s[i] >> 8;
            sig[32 + i] = (s[i] & 255) as u8;
        }
        // S + L overflows 32 bytes only if S >= 2^256 - L, which it is not.
        assert_eq!(s[32], 0);
        assert!(verify(&pk, b"m", &sig).is_err());
    }

    #[test]
    fn identity_and_base_point_sanity() {
        let b = base_point();
        let id = Point::identity();
        assert!(b.add(&id).equals(&b));
        // 2B ≠ B and (B + B) == scalar_mul(2).
        let two = {
            let mut s = [0u8; 32];
            s[0] = 2;
            s
        };
        assert!(b.add(&b).equals(&b.scalar_mul(&two)));
        assert!(!b.add(&b).equals(&b));
    }

    #[test]
    fn scalar_l_times_base_is_identity() {
        let mut l_bytes = [0u8; 32];
        for (i, v) in L.iter().enumerate() {
            l_bytes[i] = *v as u8;
        }
        let p = base_point().scalar_mul(&l_bytes);
        assert!(p.equals(&Point::identity()));
    }

    #[test]
    fn decompress_rejects_invalid() {
        // A y-coordinate whose x² has no root.
        let mut bad = [0u8; 32];
        bad[0] = 2;
        // Try a few encodings; at least some must be invalid points.
        let mut rejected = 0;
        for v in 2..40u8 {
            bad[0] = v;
            if decompress(&bad).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "no invalid encodings found in range");
    }

    #[test]
    fn mod_l_reduces_l_to_zero() {
        let mut x = [0i64; 64];
        for (i, v) in L.iter().enumerate() {
            x[i] = *v;
        }
        assert_eq!(mod_l(&mut x), [0u8; 32]);
    }

    #[test]
    fn scalar_s_equal_to_l_rejected() {
        // The exact boundary: s == L is non-canonical, s == L − 1 is fine.
        let mut l_bytes = [0u8; 32];
        for (i, v) in L.iter().enumerate() {
            l_bytes[i] = *v as u8;
        }
        assert!(!is_canonical_scalar(&l_bytes));
        let mut l_minus_1 = l_bytes;
        l_minus_1[0] -= 1;
        assert!(is_canonical_scalar(&l_minus_1));
        assert!(is_canonical_scalar(&[0u8; 32]));
    }

    #[test]
    fn non_canonical_y_rejected() {
        // p = 2²⁵⁵ − 19; encodings with y ≥ p must be rejected even though
        // they alias a valid point after reduction.
        let mut p_enc = [0xffu8; 32];
        p_enc[0] = 0xed;
        p_enc[31] = 0x7f;
        assert!(decompress(&p_enc).is_err(), "y == p must be rejected");
        let mut p_plus_1 = p_enc;
        p_plus_1[0] = 0xee; // y == p + 1 ≡ 1, aliases the identity's y
        assert!(
            decompress(&p_plus_1).is_err(),
            "y == p + 1 must be rejected"
        );
        // Same encodings with the sign bit set are equally non-canonical.
        let mut signed = p_plus_1;
        signed[31] |= 0x80;
        assert!(decompress(&signed).is_err());
        // Sanity: the largest canonical y (p − 1) still decompresses or
        // fails only for curve reasons, not canonicality.
        let mut p_minus_1 = p_enc;
        p_minus_1[0] = 0xec;
        assert!(is_canonical_y(&p_minus_1));
    }

    #[test]
    fn small_order_public_key_rejected() {
        // A = identity, R = identity, s = 0 satisfies S·B == R + k·A for
        // EVERY message — a universal forgery unless torsion keys are
        // rejected.
        let mut identity_enc = [0u8; 32];
        identity_enc[0] = 1;
        let mut sig = [0u8; 64];
        sig[..32].copy_from_slice(&identity_enc);
        assert!(verify(&identity_enc, b"any message at all", &sig).is_err());

        // Order-2 point (0, −1): y = p − 1.
        let mut order2 = [0xffu8; 32];
        order2[0] = 0xec;
        order2[31] = 0x7f;
        assert!(decompress(&order2).unwrap().is_small_order());
        let mut sig2 = [0u8; 64];
        sig2[..32].copy_from_slice(&order2);
        assert!(verify(&order2, b"msg", &sig2).is_err());

        // Honest keys are not small order.
        let pk = public_key(&[3u8; 32]);
        assert!(!decompress(&pk).unwrap().is_small_order());
    }

    #[test]
    fn batch_accepts_all_valid() {
        let entries_data: Vec<([u8; 32], Vec<u8>, [u8; 64])> = (0..6u8)
            .map(|i| {
                let seed = [i + 1; 32];
                let msg = vec![i; (i as usize) * 7 + 1];
                let sig = sign(&seed, &msg);
                (public_key(&seed), msg, sig)
            })
            .collect();
        let entries: Vec<BatchEntry> = entries_data
            .iter()
            .map(|(pk, msg, sig)| BatchEntry {
                public_key: pk,
                message: msg,
                signature: sig,
            })
            .collect();
        verify_batch(&entries).unwrap();
        // Empty and single-entry batches.
        verify_batch(&[]).unwrap();
        verify_batch(&entries[..1]).unwrap();
    }

    #[test]
    fn batch_rejects_any_invalid() {
        let seeds: Vec<[u8; 32]> = (0..5u8).map(|i| [i + 40; 32]).collect();
        let msgs: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 20]).collect();
        let pks: Vec<[u8; 32]> = seeds.iter().map(public_key).collect();
        let mut sigs: Vec<[u8; 64]> = seeds.iter().zip(&msgs).map(|(s, m)| sign(s, m)).collect();
        // Tamper with the middle signature.
        sigs[2][5] ^= 0x40;
        let entries: Vec<BatchEntry> = (0..5)
            .map(|i| BatchEntry {
                public_key: &pks[i],
                message: &msgs[i],
                signature: &sigs[i],
            })
            .collect();
        assert!(verify_batch(&entries).is_err());
        // The per-entry fallback agrees: exactly entry 2 fails.
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(verify(e.public_key, e.message, e.signature).is_ok(), i != 2);
        }
    }

    #[test]
    fn batch_matches_individual_verdicts() {
        // For several corruption patterns, batch-accept must equal
        // all-individually-accept.
        for tamper in [None, Some(0), Some(3)] {
            let seeds: Vec<[u8; 32]> = (0..4u8).map(|i| [i + 90; 32]).collect();
            let msgs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i ^ 0x5a; 33]).collect();
            let pks: Vec<[u8; 32]> = seeds.iter().map(public_key).collect();
            let mut sigs: Vec<[u8; 64]> =
                seeds.iter().zip(&msgs).map(|(s, m)| sign(s, m)).collect();
            if let Some(t) = tamper {
                sigs[t][33] ^= 1;
            }
            let entries: Vec<BatchEntry> = (0..4)
                .map(|i| BatchEntry {
                    public_key: &pks[i],
                    message: &msgs[i],
                    signature: &sigs[i],
                })
                .collect();
            let individual_ok = entries
                .iter()
                .all(|e| verify(e.public_key, e.message, e.signature).is_ok());
            assert_eq!(verify_batch(&entries).is_ok(), individual_ok);
        }
    }

    #[test]
    fn batch_rejects_non_canonical_s() {
        let seed = [77u8; 32];
        let pk = public_key(&seed);
        let msg = b"m".to_vec();
        let mut sig = sign(&seed, &msg);
        let mut s = [0i64; 33];
        for i in 0..32 {
            s[i] = sig[32 + i] as i64 + L[i];
        }
        for i in 0..32 {
            s[i + 1] += s[i] >> 8;
            sig[32 + i] = (s[i] & 255) as u8;
        }
        let other_seed = [78u8; 32];
        let other_pk = public_key(&other_seed);
        let other_sig = sign(&other_seed, &msg);
        let entries = [
            BatchEntry {
                public_key: &other_pk,
                message: &msg,
                signature: &other_sig,
            },
            BatchEntry {
                public_key: &pk,
                message: &msg,
                signature: &sig,
            },
        ];
        assert!(verify_batch(&entries).is_err());
    }

    #[test]
    fn mul_add_small_numbers() {
        // 3 * 4 + 5 = 17 mod L.
        let mut a = [0u8; 32];
        a[0] = 3;
        let mut b = [0u8; 32];
        b[0] = 4;
        let mut c = [0u8; 32];
        c[0] = 5;
        let r = mul_add(&a, &b, &c);
        let mut expect = [0u8; 32];
        expect[0] = 17;
        assert_eq!(r, expect);
    }
}

//! X25519 Diffie–Hellman key agreement (RFC 7748).
//!
//! This is the public-key primitive behind `enc(K_V, PubK_u)` in the paper:
//! view keys are sealed to a reader's public key with ephemeral-static
//! X25519 plus the symmetric AEAD (see [`crate::keys::seal`]).
//!
//! The field arithmetic uses five 51-bit limbs with `u128` intermediates,
//! the standard portable representation for 2²⁵⁵ − 19.

const MASK: u64 = (1u64 << 51) - 1;

/// An element of GF(2²⁵⁵ − 19), kept partially reduced (limbs < 2⁵²).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Fe(pub(crate) [u64; 5]);

impl Fe {
    pub(crate) const ZERO: Fe = Fe([0; 5]);
    pub(crate) const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Load from 32 little-endian bytes, masking the top bit (RFC 7748 §5).
    pub(crate) fn from_bytes(b: &[u8; 32]) -> Fe {
        let load = |i: usize| u64::from_le_bytes(b[i..i + 8].try_into().expect("8 bytes"));
        let lo0 = load(0);
        let lo1 = load(6) >> 3;
        let lo2 = load(12) >> 6;
        let lo3 = load(19) >> 1;
        let lo4 = load(24) >> 12;
        Fe([
            lo0 & MASK,
            lo1 & MASK,
            lo2 & MASK,
            lo3 & MASK,
            lo4 & ((1u64 << 51) - 1) & 0x0007ffffffffffff & MASK,
        ])
    }

    /// Serialize to 32 little-endian bytes in fully reduced form.
    pub(crate) fn to_bytes(self) -> [u8; 32] {
        let t = self.reduce_full();
        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for limb in t.0 {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 {
                out[idx] = (acc & 0xff) as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        // 5*51 = 255 bits; 31 bytes consumed 248 bits, one partial byte left.
        if idx < 32 {
            out[idx] = (acc & 0xff) as u8;
        }
        out
    }

    /// Fully reduce into [0, p).
    fn reduce_full(self) -> Fe {
        let mut t = self.carry();
        t = t.carry();
        // Now limbs < 2^51, value V < 2^255 = p + 19, so at most one
        // conditional subtraction of p. V >= p iff V + 19 overflows bit 255.
        let mut plus = t.0;
        plus[0] += 19;
        for i in 0..4 {
            plus[i + 1] += plus[i] >> 51;
            plus[i] &= MASK;
        }
        let overflow = plus[4] >> 51;
        if overflow != 0 {
            plus[4] &= MASK;
            Fe(plus)
        } else {
            t
        }
    }

    /// One carry-propagation pass with the ×19 wraparound.
    fn carry(self) -> Fe {
        let mut t = self.0;
        let mut c: u64;
        for i in 0..4 {
            c = t[i] >> 51;
            t[i] &= MASK;
            t[i + 1] += c;
        }
        c = t[4] >> 51;
        t[4] &= MASK;
        t[0] += c * 19;
        Fe(t)
    }

    pub(crate) fn add(self, rhs: Fe) -> Fe {
        let a = self.0;
        let b = rhs.0;
        Fe([
            a[0] + b[0],
            a[1] + b[1],
            a[2] + b[2],
            a[3] + b[3],
            a[4] + b[4],
        ])
        .carry()
    }

    pub(crate) fn sub(self, rhs: Fe) -> Fe {
        // Add 2p so no limb underflows (inputs are < 2^52 < 2p's limbs).
        const TWO_P: [u64; 5] = [
            0xfffffffffffda,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
        ];
        let a = self.0;
        let b = rhs.0;
        Fe([
            a[0] + TWO_P[0] - b[0],
            a[1] + TWO_P[1] - b[1],
            a[2] + TWO_P[2] - b[2],
            a[3] + TWO_P[3] - b[3],
            a[4] + TWO_P[4] - b[4],
        ])
        .carry()
    }

    pub(crate) fn mul(self, rhs: Fe) -> Fe {
        let f = self.0;
        let g = rhs.0;
        let m = |a: u64, b: u64| (a as u128) * (b as u128);
        let g1_19 = g[1] * 19;
        let g2_19 = g[2] * 19;
        let g3_19 = g[3] * 19;
        let g4_19 = g[4] * 19;

        let h0 = m(f[0], g[0]) + m(f[1], g4_19) + m(f[2], g3_19) + m(f[3], g2_19) + m(f[4], g1_19);
        let h1 = m(f[0], g[1]) + m(f[1], g[0]) + m(f[2], g4_19) + m(f[3], g3_19) + m(f[4], g2_19);
        let h2 = m(f[0], g[2]) + m(f[1], g[1]) + m(f[2], g[0]) + m(f[3], g4_19) + m(f[4], g3_19);
        let h3 = m(f[0], g[3]) + m(f[1], g[2]) + m(f[2], g[1]) + m(f[3], g[0]) + m(f[4], g4_19);
        let h4 = m(f[0], g[4]) + m(f[1], g[3]) + m(f[2], g[2]) + m(f[3], g[1]) + m(f[4], g[0]);

        carry_wide([h0, h1, h2, h3, h4])
    }

    pub(crate) fn square(self) -> Fe {
        self.mul(self)
    }

    /// Multiply by the curve constant a24 = 121665.
    fn mul_small(self, s: u64) -> Fe {
        let f = self.0;
        let h: [u128; 5] = [
            (f[0] as u128) * s as u128,
            (f[1] as u128) * s as u128,
            (f[2] as u128) * s as u128,
            (f[3] as u128) * s as u128,
            (f[4] as u128) * s as u128,
        ];
        carry_wide(h)
    }

    /// Raise to the power 2²⁵⁵ − 21 (the inverse, by Fermat's little theorem).
    pub(crate) fn invert(self) -> Fe {
        // Exponent p - 2 as little-endian bytes: 0xeb, 0xff × 30, 0x7f.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb;
        exp[31] = 0x7f;
        self.pow_le(&exp)
    }

    /// Generic left-to-right square-and-multiply with a little-endian
    /// exponent. Not constant time (see crate disclaimer).
    pub(crate) fn pow_le(self, exp_le: &[u8; 32]) -> Fe {
        let mut result = Fe::ONE;
        let mut started = false;
        for byte_idx in (0..32).rev() {
            for bit in (0..8).rev() {
                if started {
                    result = result.square();
                }
                if (exp_le[byte_idx] >> bit) & 1 == 1 {
                    if started {
                        result = result.mul(self);
                    } else {
                        result = self;
                        started = true;
                    }
                }
            }
        }
        result
    }

    pub(crate) fn is_zero(self) -> bool {
        self.to_bytes() == [0u8; 32]
    }
}

fn carry_wide(mut h: [u128; 5]) -> Fe {
    let mut c: u128;
    let mask = MASK as u128;
    c = h[0] >> 51;
    h[0] &= mask;
    h[1] += c;
    c = h[1] >> 51;
    h[1] &= mask;
    h[2] += c;
    c = h[2] >> 51;
    h[2] &= mask;
    h[3] += c;
    c = h[3] >> 51;
    h[3] &= mask;
    h[4] += c;
    c = h[4] >> 51;
    h[4] &= mask;
    h[0] += c * 19;
    c = h[0] >> 51;
    h[0] &= mask;
    h[1] += c;
    Fe([
        h[0] as u64,
        h[1] as u64,
        h[2] as u64,
        h[3] as u64,
        h[4] as u64,
    ])
}

/// Clamp a 32-byte scalar per RFC 7748 §5.
pub fn clamp_scalar(mut k: [u8; 32]) -> [u8; 32] {
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

/// The X25519 function: multiply the point with u-coordinate `u` by the
/// clamped scalar `k`, returning the resulting u-coordinate.
pub fn x25519(k: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp_scalar(*k);
    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = false;

    for t in (0..255).rev() {
        let k_t = (k[t / 8] >> (t % 8)) & 1 == 1;
        swap ^= k_t;
        if swap {
            std::mem::swap(&mut x2, &mut x3);
            std::mem::swap(&mut z2, &mut z3);
        }
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121665)));
    }
    if swap {
        std::mem::swap(&mut x2, &mut x3);
        std::mem::swap(&mut z2, &mut z3);
    }
    x2.mul(z2.invert()).to_bytes()
}

/// The base point u = 9.
pub const BASE_POINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// Derive the public key for a private scalar: `X25519(k, 9)`.
pub fn public_key(private: &[u8; 32]) -> [u8; 32] {
    x25519(private, &BASE_POINT)
}

/// Compute the shared secret between a private scalar and a peer public key.
///
/// Returns `None` if the result is the all-zero point (low-order peer key),
/// which callers must treat as an error per RFC 7748 §6.1.
pub fn shared_secret(private: &[u8; 32], peer_public: &[u8; 32]) -> Option<[u8; 32]> {
    let s = x25519(private, peer_public);
    if s == [0u8; 32] {
        None
    } else {
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn arr(s: &str) -> [u8; 32] {
        hex::decode(s).unwrap().try_into().unwrap()
    }

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector1() {
        let k = arr("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = arr("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        assert_eq!(
            hex::encode(&x25519(&k, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    // RFC 7748 §5.2 test vector 2.
    #[test]
    fn rfc7748_vector2() {
        let k = arr("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = arr("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        assert_eq!(
            hex::encode(&x25519(&k, &u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    // RFC 7748 §6.1 Diffie–Hellman example.
    #[test]
    fn rfc7748_dh() {
        let alice_priv = arr("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let alice_pub = public_key(&alice_priv);
        assert_eq!(
            hex::encode(&alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        let bob_priv = arr("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let bob_pub = public_key(&bob_priv);
        assert_eq!(
            hex::encode(&bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let s1 = shared_secret(&alice_priv, &bob_pub).unwrap();
        let s2 = shared_secret(&bob_priv, &alice_pub).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(
            hex::encode(&s1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    // RFC 7748 §5.2 iterated test (1 and 1000 iterations).
    #[test]
    fn rfc7748_iterated() {
        let mut k = arr("0900000000000000000000000000000000000000000000000000000000000000");
        let mut u = k;
        // 1 iteration.
        let r = x25519(&k, &u);
        u = k;
        k = r;
        assert_eq!(
            hex::encode(&k),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
        // 999 more.
        for _ in 0..999 {
            let r = x25519(&k, &u);
            u = k;
            k = r;
        }
        assert_eq!(
            hex::encode(&k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51"
        );
    }

    #[test]
    fn low_order_point_rejected() {
        let priv_key = arr("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let zero_point = [0u8; 32];
        assert!(shared_secret(&priv_key, &zero_point).is_none());
    }

    #[test]
    fn field_arithmetic_basics() {
        let a = Fe::from_bytes(&arr(
            "0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20",
        ));
        // a * a⁻¹ = 1
        assert_eq!(a.mul(a.invert()).to_bytes(), Fe::ONE.to_bytes());
        // a - a = 0
        assert!(a.sub(a).is_zero());
        // (a + a) = 2a = a * 2
        let two = Fe([2, 0, 0, 0, 0]);
        assert_eq!(a.add(a).to_bytes(), a.mul(two).to_bytes());
    }

    #[test]
    fn to_from_bytes_round_trip() {
        // A canonical value (< p) must round-trip exactly.
        let bytes = arr("0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20");
        assert_eq!(Fe::from_bytes(&bytes).to_bytes(), bytes);
    }

    #[test]
    fn clamping() {
        let k = clamp_scalar([0xffu8; 32]);
        assert_eq!(k[0] & 7, 0);
        assert_eq!(k[31] & 0x80, 0);
        assert_eq!(k[31] & 0x40, 0x40);
    }
}

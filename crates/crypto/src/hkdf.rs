//! HKDF (RFC 5869) over HMAC-SHA-256.
//!
//! Used to derive symmetric keys from X25519 shared secrets in the hybrid
//! public-key encryption of [`crate::keys`], and to rotate view keys.

use crate::hmac::hmac_sha256;

/// HKDF-Extract: derive a pseudorandom key from input keying material.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derive `out.len()` bytes of output keying material.
///
/// # Panics
/// Panics if more than `255 * 32` bytes are requested (RFC 5869 limit).
pub fn expand(prk: &[u8; 32], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * 32, "HKDF output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut written = 0;
    let mut counter = 1u8;
    while written < out.len() {
        let mut msg = Vec::with_capacity(t.len() + info.len() + 1);
        msg.extend_from_slice(&t);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        let take = (out.len() - written).min(32);
        out[written..written + take].copy_from_slice(&block[..take]);
        written += take;
        t = block.to_vec();
        counter = counter.checked_add(1).expect("output length bounded above");
    }
}

/// One-shot HKDF: extract then expand into a fixed-size output.
pub fn derive<const N: usize>(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; N] {
    let prk = extract(salt, ikm);
    let mut out = [0u8; N];
    expand(&prk, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 5869 Test Case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex::encode(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex::encode(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
        );
    }

    // RFC 5869 Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let prk = extract(&[], &ikm);
        let mut okm = [0u8; 42];
        expand(&prk, &[], &mut okm);
        assert_eq!(
            hex::encode(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn derive_is_extract_then_expand() {
        let out: [u8; 32] = derive(b"salt", b"ikm", b"info");
        let prk = extract(b"salt", b"ikm");
        let mut manual = [0u8; 32];
        expand(&prk, b"info", &mut manual);
        assert_eq!(out, manual);
    }

    #[test]
    fn different_info_different_keys() {
        let a: [u8; 32] = derive(b"s", b"k", b"view-key");
        let b: [u8; 32] = derive(b"s", b"k", b"mac-key");
        assert_ne!(a, b);
    }

    #[test]
    fn multi_block_expand() {
        let prk = extract(b"salt", b"ikm");
        let mut long = [0u8; 100];
        expand(&prk, b"info", &mut long);
        // First 32 bytes must match a 32-byte expansion (prefix property).
        let mut short = [0u8; 32];
        expand(&prk, b"info", &mut short);
        assert_eq!(&long[..32], &short);
    }
}

//! HMAC (RFC 2104) over SHA-256 and SHA-512.
//!
//! Used by the [`crate::aead`] module for encrypt-then-MAC authentication
//! and by [`crate::hkdf`] for key derivation.

use crate::sha256::Sha256;
use crate::sha512::Sha512;

/// Compute HMAC-SHA-256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    hmac_sha256_multi(key, &[message])
}

/// HMAC-SHA-256 over the concatenation of several message parts, without
/// materializing the concatenation.
pub fn hmac_sha256_multi(key: &[u8], parts: &[&[u8]]) -> [u8; 32] {
    const BLOCK: usize = 64;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = crate::sha256::sha256(key);
        key_block[..32].copy_from_slice(d.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    for p in parts {
        inner.update(p);
    }
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize().0
}

/// Compute HMAC-SHA-512 of `message` under `key`.
pub fn hmac_sha512(key: &[u8], message: &[u8]) -> [u8; 64] {
    const BLOCK: usize = 128;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = crate::sha512::sha512(key);
        key_block[..64].copy_from_slice(d.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha512::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha512::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize().0
}

/// Constant-shape equality check for MAC tags.
///
/// Compares all bytes regardless of where the first mismatch occurs so the
/// comparison result does not leak a prefix length. (The rest of the crate is
/// not constant-time; this is the one place where a timing oracle would be
/// trivially exploitable, so we close it.)
pub fn verify_tag(expected: &[u8], actual: &[u8]) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    let mut acc = 0u8;
    for (a, b) in expected.iter().zip(actual.iter()) {
        acc |= a ^ b;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let msg = b"Hi There";
        assert_eq!(
            hex::encode(&hmac_sha256(&key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex::encode(&hmac_sha512(&key, msg)),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let key = b"Jefe";
        let msg = b"what do ya want for nothing?";
        assert_eq!(
            hex::encode(&hmac_sha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        assert_eq!(
            hex::encode(&hmac_sha512(key, msg)),
            "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554\
             9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        assert_eq!(
            hex::encode(&hmac_sha256(&key, &msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        // Key longer than block size: hashed first.
        let key = [0xaau8; 131];
        let msg = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex::encode(&hmac_sha256(&key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn multi_part_matches_joined() {
        let key = b"some-key";
        let joined = hmac_sha256(key, b"hello world");
        let parts = hmac_sha256_multi(key, &[b"hello", b" ", b"world"]);
        assert_eq!(joined, parts);
    }

    #[test]
    fn verify_tag_semantics() {
        assert!(verify_tag(b"abcd", b"abcd"));
        assert!(!verify_tag(b"abcd", b"abce"));
        assert!(!verify_tag(b"abcd", b"abc"));
        assert!(verify_tag(b"", b""));
    }
}

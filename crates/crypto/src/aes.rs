//! AES block cipher (FIPS 197) with 128-, 192- and 256-bit keys.
//!
//! The S-box and its inverse are *computed* at compile time from the GF(2⁸)
//! definition rather than transcribed, so there is no 256-entry table to
//! mistype; the FIPS 197 example vectors in the tests pin the result.

/// Multiply two elements of GF(2⁸) modulo the AES polynomial x⁸+x⁴+x³+x+1.
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

const fn build_sbox() -> [u8; 256] {
    // Multiplicative inverse by brute force (const context), then the
    // affine transform of FIPS 197 §5.1.1.
    let mut sbox = [0u8; 256];
    let mut x = 0usize;
    while x < 256 {
        let inv = if x == 0 {
            0u8
        } else {
            let mut c = 1usize;
            let mut found = 0u8;
            while c < 256 {
                if gmul(x as u8, c as u8) == 1 {
                    found = c as u8;
                    break;
                }
                c += 1;
            }
            found
        };
        let mut s = inv;
        let mut r = inv;
        let mut i = 0;
        while i < 4 {
            r = r.rotate_left(1);
            s ^= r;
            i += 1;
        }
        sbox[x] = s ^ 0x63;
        x += 1;
    }
    sbox
}

const fn invert_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

const SBOX: [u8; 256] = build_sbox();
const INV_SBOX: [u8; 256] = invert_sbox(&SBOX);

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// An expanded AES key schedule, ready for encryption or decryption.
#[derive(Clone)]
pub struct Aes {
    /// Round keys as 4-byte words; `4 * (rounds + 1)` words are used.
    round_keys: [u32; 60],
    rounds: usize,
}

impl Aes {
    /// Expand a 128-bit key (10 rounds).
    pub fn new_128(key: &[u8; 16]) -> Aes {
        Self::expand(key, 4, 10)
    }

    /// Expand a 192-bit key (12 rounds).
    pub fn new_192(key: &[u8; 24]) -> Aes {
        Self::expand(key, 6, 12)
    }

    /// Expand a 256-bit key (14 rounds).
    pub fn new_256(key: &[u8; 32]) -> Aes {
        Self::expand(key, 8, 14)
    }

    fn expand(key: &[u8], nk: usize, rounds: usize) -> Aes {
        let mut w = [0u32; 60];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            *word = u32::from_be_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        let total = 4 * (rounds + 1);
        for i in nk..total {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp = sub_word(temp.rotate_left(8)) ^ ((RCON[i / nk - 1] as u32) << 24);
            } else if nk > 6 && i % nk == 4 {
                temp = sub_word(temp);
            }
            w[i] = w[i - nk] ^ temp;
        }
        Aes {
            round_keys: w,
            rounds,
        }
    }

    /// Encrypt a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        self.add_round_key(block, 0);
        for round in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            self.add_round_key(block, round);
        }
        sub_bytes(block);
        shift_rows(block);
        self.add_round_key(block, self.rounds);
    }

    /// Decrypt a single 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        self.add_round_key(block, self.rounds);
        for round in (1..self.rounds).rev() {
            inv_shift_rows(block);
            inv_sub_bytes(block);
            self.add_round_key(block, round);
            inv_mix_columns(block);
        }
        inv_shift_rows(block);
        inv_sub_bytes(block);
        self.add_round_key(block, 0);
    }

    fn add_round_key(&self, block: &mut [u8; 16], round: usize) {
        for c in 0..4 {
            let word = self.round_keys[round * 4 + c].to_be_bytes();
            for r in 0..4 {
                block[c * 4 + r] ^= word[r];
            }
        }
    }
}

fn sub_word(w: u32) -> u32 {
    let b = w.to_be_bytes();
    u32::from_be_bytes([
        SBOX[b[0] as usize],
        SBOX[b[1] as usize],
        SBOX[b[2] as usize],
        SBOX[b[3] as usize],
    ])
}

fn sub_bytes(block: &mut [u8; 16]) {
    for b in block.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(block: &mut [u8; 16]) {
    for b in block.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

// The state is laid out column-major: byte `c*4 + r` is row r, column c.
// ShiftRows rotates row r left by r positions.
fn shift_rows(block: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [block[r], block[4 + r], block[8 + r], block[12 + r]];
        for c in 0..4 {
            block[c * 4 + r] = row[(c + r) % 4];
        }
    }
}

fn inv_shift_rows(block: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [block[r], block[4 + r], block[8 + r], block[12 + r]];
        for c in 0..4 {
            block[c * 4 + r] = row[(c + 4 - r) % 4];
        }
    }
}

fn mix_columns(block: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            block[c * 4],
            block[c * 4 + 1],
            block[c * 4 + 2],
            block[c * 4 + 3],
        ];
        block[c * 4] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        block[c * 4 + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        block[c * 4 + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        block[c * 4 + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

fn inv_mix_columns(block: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            block[c * 4],
            block[c * 4 + 1],
            block[c * 4 + 2],
            block[c * 4 + 3],
        ];
        block[c * 4] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        block[c * 4 + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        block[c * 4 + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        block[c * 4 + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn sbox_known_entries() {
        // FIPS 197 Figure 7 spot checks.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0xed], 0x53);
    }

    fn block(hexstr: &str) -> [u8; 16] {
        hex::decode(hexstr).unwrap().try_into().unwrap()
    }

    // FIPS 197 Appendix C example vectors.
    #[test]
    fn fips197_aes128() {
        let key: [u8; 16] = hex::decode("000102030405060708090a0b0c0d0e0f")
            .unwrap()
            .try_into()
            .unwrap();
        let aes = Aes::new_128(&key);
        let mut b = block("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut b);
        assert_eq!(hex::encode(&b), "69c4e0d86a7b0430d8cdb78070b4c55a");
        aes.decrypt_block(&mut b);
        assert_eq!(hex::encode(&b), "00112233445566778899aabbccddeeff");
    }

    #[test]
    fn fips197_aes192() {
        let key: [u8; 24] = hex::decode("000102030405060708090a0b0c0d0e0f1011121314151617")
            .unwrap()
            .try_into()
            .unwrap();
        let aes = Aes::new_192(&key);
        let mut b = block("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut b);
        assert_eq!(hex::encode(&b), "dda97ca4864cdfe06eaf70a0ec0d7191");
        aes.decrypt_block(&mut b);
        assert_eq!(hex::encode(&b), "00112233445566778899aabbccddeeff");
    }

    #[test]
    fn fips197_aes256() {
        let key: [u8; 32] =
            hex::decode("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .unwrap()
                .try_into()
                .unwrap();
        let aes = Aes::new_256(&key);
        let mut b = block("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut b);
        assert_eq!(hex::encode(&b), "8ea2b7ca516745bfeafc49904b496089");
        aes.decrypt_block(&mut b);
        assert_eq!(hex::encode(&b), "00112233445566778899aabbccddeeff");
    }

    // SP 800-38A single-block ECB vectors.
    #[test]
    fn sp800_38a_ecb_block() {
        let key: [u8; 16] = hex::decode("2b7e151628aed2a6abf7158809cf4f3c")
            .unwrap()
            .try_into()
            .unwrap();
        let aes = Aes::new_128(&key);
        let mut b = block("6bc1bee22e409f96e93d7e117393172a");
        aes.encrypt_block(&mut b);
        assert_eq!(hex::encode(&b), "3ad77bb40d7a3660a89ecaf32466ef97");
    }

    #[test]
    fn encrypt_decrypt_round_trip_all_key_sizes() {
        let mut data = [0u8; 16];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 17 + 3) as u8;
        }
        let original = data;

        let a128 = Aes::new_128(&[7u8; 16]);
        a128.encrypt_block(&mut data);
        assert_ne!(data, original);
        a128.decrypt_block(&mut data);
        assert_eq!(data, original);

        let a192 = Aes::new_192(&[9u8; 24]);
        a192.encrypt_block(&mut data);
        a192.decrypt_block(&mut data);
        assert_eq!(data, original);

        let a256 = Aes::new_256(&[11u8; 32]);
        a256.encrypt_block(&mut data);
        a256.decrypt_block(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn gmul_identities() {
        for x in 0..=255u8 {
            assert_eq!(gmul(x, 1), x);
            assert_eq!(gmul(x, 0), 0);
        }
        // x * x⁻¹ = 1 is implied by the S-box construction; spot-check 0x02·0x8d=1.
        assert_eq!(gmul(0x02, 0x8d), 0x01);
        assert_eq!(gmul(0x53, 0xca), 0x01);
    }
}

//! Key types used across the workspace, and hybrid public-key encryption.
//!
//! The paper's notation maps onto this module as follows:
//!
//! | Paper | Here |
//! |---|---|
//! | per-transaction key `K_ij` (§4.1) | [`SymmetricKey`] |
//! | view key `K_V` | [`SymmetricKey`] |
//! | `PubK_u`, `PrivK_u` | [`EncryptionKeyPair`] / [`PublicKey`] |
//! | `enc(K_V, PubK_u)` | [`seal`] (ephemeral X25519 + AEAD) |
//! | endorsement signatures (substrate) | [`SigningKeyPair`] |

use std::fmt;

use rand::RngCore;

use crate::aead;
use crate::ed25519;
use crate::error::CryptoError;
use crate::hkdf;
use crate::rng::random_array;
use crate::x25519;

/// A 256-bit symmetric key (a transaction key `K_i` or a view key `K_V`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymmetricKey(pub [u8; 32]);

impl SymmetricKey {
    /// Generate a fresh random key.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R) -> SymmetricKey {
        SymmetricKey(random_array(rng))
    }

    /// Encrypt `plaintext` under this key. See [`crate::aead::seal_sym`].
    pub fn seal<R: RngCore + ?Sized>(&self, rng: &mut R, plaintext: &[u8]) -> Vec<u8> {
        aead::seal_sym(&self.0, rng, plaintext)
    }

    /// Decrypt a ciphertext produced by [`SymmetricKey::seal`].
    pub fn open(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        aead::open_sym(&self.0, ciphertext)
    }

    /// Raw key bytes (e.g. for embedding in a view's key list).
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Reconstruct a key from raw bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> SymmetricKey {
        SymmetricKey(bytes)
    }
}

impl fmt::Debug for SymmetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "SymmetricKey(..)")
    }
}

/// An X25519 public key, the `PubK_u` of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(pub [u8; 32]);

impl PublicKey {
    /// Raw public key bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Hex rendering, used as a user identifier in dissemination lists.
    pub fn to_hex(&self) -> String {
        crate::hex::encode(&self.0)
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({}..)", &self.to_hex()[..12])
    }
}

/// An X25519 key pair used to receive sealed payloads (`PrivK_u`, `PubK_u`).
#[derive(Clone)]
pub struct EncryptionKeyPair {
    secret: [u8; 32],
    public: PublicKey,
}

impl EncryptionKeyPair {
    /// Generate a fresh key pair.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R) -> EncryptionKeyPair {
        let secret: [u8; 32] = random_array(rng);
        let public = PublicKey(x25519::public_key(&secret));
        EncryptionKeyPair { secret, public }
    }

    /// The public half, safe to publish on the ledger.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Export the secret scalar. Used for *role keys* (§4.6 of the paper):
    /// the role's private key is itself sealed to each member's public key
    /// and disseminated, so members must be able to reconstruct the pair.
    pub fn secret_bytes(&self) -> &[u8; 32] {
        &self.secret
    }

    /// Reconstruct a key pair from an exported secret scalar.
    pub fn from_secret_bytes(secret: [u8; 32]) -> EncryptionKeyPair {
        let public = PublicKey(x25519::public_key(&secret));
        EncryptionKeyPair { secret, public }
    }
}

impl fmt::Debug for EncryptionKeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EncryptionKeyPair(pub: {:?})", self.public)
    }
}

/// Hybrid public-key encryption: the `enc(m, PubK_u)` of the paper.
///
/// An ephemeral X25519 key pair is generated; the shared secret with the
/// recipient key is run through HKDF (bound to both public keys) to derive
/// an AEAD key; the output is `ephemeral_pk (32) || aead_ciphertext`.
pub fn seal<R: RngCore + ?Sized>(recipient: &PublicKey, rng: &mut R, plaintext: &[u8]) -> Vec<u8> {
    // Loop until the ephemeral key produces a contributory shared secret
    // (an all-zero secret only occurs for adversarial low-order keys).
    loop {
        let eph_secret: [u8; 32] = random_array(rng);
        let eph_public = x25519::public_key(&eph_secret);
        let Some(shared) = x25519::shared_secret(&eph_secret, &recipient.0) else {
            continue;
        };
        let key = derive_seal_key(&shared, &eph_public, &recipient.0);
        let mut out = Vec::with_capacity(32 + plaintext.len() + aead::OVERHEAD);
        out.extend_from_slice(&eph_public);
        out.extend_from_slice(&aead::seal_sym(&key, rng, plaintext));
        return out;
    }
}

/// Decrypt a payload produced by [`seal`] for this key pair.
pub fn open(recipient: &EncryptionKeyPair, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if ciphertext.len() < 32 + aead::OVERHEAD {
        return Err(CryptoError::DecryptionFailed);
    }
    let eph_public: [u8; 32] = ciphertext[..32].try_into().expect("32 bytes");
    let shared = x25519::shared_secret(&recipient.secret, &eph_public)
        .ok_or(CryptoError::DecryptionFailed)?;
    let key = derive_seal_key(&shared, &eph_public, &recipient.public.0);
    aead::open_sym(&key, &ciphertext[32..])
}

fn derive_seal_key(shared: &[u8; 32], eph_public: &[u8; 32], recipient: &[u8; 32]) -> [u8; 32] {
    let mut info = Vec::with_capacity(64 + 20);
    info.extend_from_slice(b"ledgerview-hybrid-v1");
    info.extend_from_slice(eph_public);
    info.extend_from_slice(recipient);
    hkdf::derive(b"", shared, &info)
}

/// An Ed25519 signing key pair, used by the Fabric substrate for
/// endorsements, block signatures and identity certificates.
#[derive(Clone)]
pub struct SigningKeyPair {
    seed: [u8; 32],
    public: [u8; 32],
}

impl SigningKeyPair {
    /// Generate a fresh signing key pair.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R) -> SigningKeyPair {
        let seed: [u8; 32] = random_array(rng);
        let public = ed25519::public_key(&seed);
        SigningKeyPair { seed, public }
    }

    /// The 32-byte verification key.
    pub fn public(&self) -> [u8; 32] {
        self.public
    }

    /// Sign a message.
    pub fn sign(&self, message: &[u8]) -> [u8; 64] {
        ed25519::sign(&self.seed, message)
    }
}

impl fmt::Debug for SigningKeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SigningKeyPair(pub: {}..)",
            &crate::hex::encode(&self.public)[..12]
        )
    }
}

/// Verify an Ed25519 signature (free function mirror of
/// [`SigningKeyPair::sign`]).
pub fn verify_signature(
    public: &[u8; 32],
    message: &[u8],
    signature: &[u8; 64],
) -> Result<(), CryptoError> {
    ed25519::verify(public, message, signature)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn hybrid_round_trip() {
        let mut rng = seeded(10);
        let bob = EncryptionKeyPair::generate(&mut rng);
        let ct = seal(&bob.public(), &mut rng, b"the view key K_V");
        assert_eq!(open(&bob, &ct).unwrap(), b"the view key K_V");
    }

    #[test]
    fn wrong_recipient_fails() {
        let mut rng = seeded(11);
        let bob = EncryptionKeyPair::generate(&mut rng);
        let eve = EncryptionKeyPair::generate(&mut rng);
        let ct = seal(&bob.public(), &mut rng, b"for bob only");
        assert!(open(&eve, &ct).is_err());
    }

    #[test]
    fn tampered_hybrid_fails() {
        let mut rng = seeded(12);
        let bob = EncryptionKeyPair::generate(&mut rng);
        let ct = seal(&bob.public(), &mut rng, b"data");
        for i in [0, 16, 31, 32, 48, ct.len() - 1] {
            let mut bad = ct.clone();
            bad[i] ^= 1;
            assert!(open(&bob, &bad).is_err(), "byte {i} tamper accepted");
        }
    }

    #[test]
    fn short_ciphertext_fails() {
        let mut rng = seeded(13);
        let bob = EncryptionKeyPair::generate(&mut rng);
        assert!(open(&bob, &[0u8; 10]).is_err());
        assert!(open(&bob, &[]).is_err());
    }

    #[test]
    fn signing_round_trip() {
        let mut rng = seeded(14);
        let kp = SigningKeyPair::generate(&mut rng);
        let sig = kp.sign(b"endorse: tx-123");
        verify_signature(&kp.public(), b"endorse: tx-123", &sig).unwrap();
        assert!(verify_signature(&kp.public(), b"endorse: tx-124", &sig).is_err());
    }

    #[test]
    fn symmetric_key_round_trip() {
        let mut rng = seeded(15);
        let k = SymmetricKey::generate(&mut rng);
        let ct = k.seal(&mut rng, b"secret part");
        assert_eq!(k.open(&ct).unwrap(), b"secret part");
        let other = SymmetricKey::generate(&mut rng);
        assert!(other.open(&ct).is_err());
    }

    #[test]
    fn debug_does_not_leak_key_material() {
        let mut rng = seeded(16);
        let k = SymmetricKey::generate(&mut rng);
        let rendered = format!("{k:?}");
        assert!(!rendered.contains(&crate::hex::encode(k.as_bytes())[..8]));
    }

    #[test]
    fn distinct_seals_of_same_plaintext_differ() {
        let mut rng = seeded(17);
        let bob = EncryptionKeyPair::generate(&mut rng);
        let c1 = seal(&bob.public(), &mut rng, b"same");
        let c2 = seal(&bob.public(), &mut rng, b"same");
        assert_ne!(c1, c2);
    }
}

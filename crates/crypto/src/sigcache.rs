//! A bounded LRU cache of signature-verification outcomes.
//!
//! Block validation re-checks endorsement signatures that were already
//! verified at endorsement time, and identical `(public key, message,
//! signature)` triples recur whenever certificates are re-verified or
//! blocks are re-validated. Caching the boolean outcome keyed by a digest
//! of the triple turns those repeats into a hash lookup.
//!
//! The cache is internally synchronised (a single `Mutex`), so one instance
//! can be shared by the worker threads of a parallel validation pipeline.
//! Both positive and negative outcomes are cached; entries are evicted in
//! least-recently-used order once `capacity` is reached.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use crate::sha256::Sha256;

/// Aggregate hit/miss counters, for benchmarking and diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

struct Inner {
    /// key digest → (verification outcome, recency stamp).
    map: HashMap<[u8; 32], (bool, u64)>,
    /// recency stamp → key digest, for O(log n) LRU eviction.
    order: BTreeMap<u64, [u8; 32]>,
    tick: u64,
    stats: CacheStats,
}

/// Bounded LRU cache of `(pubkey, message, signature)` verification
/// outcomes.
pub struct SigCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl SigCache {
    /// Create a cache holding at most `capacity` entries. A capacity of 0
    /// disables the cache (lookups miss, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        SigCache {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    fn key(public_key: &[u8; 32], message: &[u8], signature: &[u8; 64]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(public_key);
        h.update(signature);
        h.update(message);
        h.finalize().0
    }

    /// Return the cached outcome for a triple, if present, refreshing its
    /// recency.
    pub fn lookup(
        &self,
        public_key: &[u8; 32],
        message: &[u8],
        signature: &[u8; 64],
    ) -> Option<bool> {
        if self.capacity == 0 {
            return None;
        }
        let key = Self::key(public_key, message, signature);
        let mut inner = self.inner.lock().expect("sig cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                let old = entry.1;
                let outcome = entry.0;
                entry.1 = tick;
                inner.order.remove(&old);
                inner.order.insert(tick, key);
                inner.stats.hits += 1;
                Some(outcome)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Record the verification outcome for a triple, evicting the least
    /// recently used entry if the cache is full.
    pub fn record(&self, public_key: &[u8; 32], message: &[u8], signature: &[u8; 64], valid: bool) {
        if self.capacity == 0 {
            return;
        }
        let key = Self::key(public_key, message, signature);
        let mut inner = self.inner.lock().expect("sig cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            let old = entry.1;
            entry.0 = valid;
            entry.1 = tick;
            inner.order.remove(&old);
            inner.order.insert(tick, key);
            return;
        }
        if inner.map.len() >= self.capacity {
            if let Some((&oldest, &victim)) = inner.order.iter().next() {
                inner.order.remove(&oldest);
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(key, (valid, tick));
        inner.order.insert(tick, key);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("sig cache poisoned").map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss counters accumulated since construction.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("sig cache poisoned").stats
    }
}

impl std::fmt::Debug for SigCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("sig cache poisoned");
        f.debug_struct("SigCache")
            .field("capacity", &self.capacity)
            .field("len", &inner.map.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triple(i: u8) -> ([u8; 32], Vec<u8>, [u8; 64]) {
        ([i; 32], vec![i, i + 1], [i; 64])
    }

    #[test]
    fn hit_miss_and_outcomes() {
        let cache = SigCache::new(8);
        let (pk, msg, sig) = triple(1);
        assert_eq!(cache.lookup(&pk, &msg, &sig), None);
        cache.record(&pk, &msg, &sig, true);
        assert_eq!(cache.lookup(&pk, &msg, &sig), Some(true));
        cache.record(&pk, &msg, &sig, false);
        assert_eq!(cache.lookup(&pk, &msg, &sig), Some(false));
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn distinct_triples_are_distinct_keys() {
        let cache = SigCache::new(8);
        let (pk, msg, sig) = triple(1);
        cache.record(&pk, &msg, &sig, true);
        let (pk2, _, _) = triple(2);
        assert_eq!(cache.lookup(&pk2, &msg, &sig), None);
        assert_eq!(cache.lookup(&pk, b"other", &sig), None);
        let mut sig2 = sig;
        sig2[0] ^= 1;
        assert_eq!(cache.lookup(&pk, &msg, &sig2), None);
    }

    #[test]
    fn bounded_with_lru_eviction() {
        let cache = SigCache::new(3);
        for i in 0..3u8 {
            let (pk, msg, sig) = triple(i);
            cache.record(&pk, &msg, &sig, true);
        }
        // Touch entry 0 so entry 1 becomes the LRU victim.
        let (pk0, msg0, sig0) = triple(0);
        assert_eq!(cache.lookup(&pk0, &msg0, &sig0), Some(true));
        let (pk3, msg3, sig3) = triple(3);
        cache.record(&pk3, &msg3, &sig3, true);
        assert_eq!(cache.len(), 3);
        let (pk1, msg1, sig1) = triple(1);
        assert_eq!(cache.lookup(&pk1, &msg1, &sig1), None, "LRU entry evicted");
        assert_eq!(cache.lookup(&pk0, &msg0, &sig0), Some(true));
        assert_eq!(cache.lookup(&pk3, &msg3, &sig3), Some(true));
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = SigCache::new(0);
        let (pk, msg, sig) = triple(1);
        cache.record(&pk, &msg, &sig, true);
        assert_eq!(cache.lookup(&pk, &msg, &sig), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_across_threads() {
        let cache = std::sync::Arc::new(SigCache::new(64));
        std::thread::scope(|scope| {
            for t in 0..4u8 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..16u8 {
                        let (pk, msg, sig) = triple(t * 16 + i);
                        cache.record(&pk, &msg, &sig, true);
                        assert_eq!(cache.lookup(&pk, &msg, &sig), Some(true));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 64);
    }
}

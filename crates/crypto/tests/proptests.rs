//! Property-based tests for the cryptographic primitives.

use ledgerview_crypto::keys::{EncryptionKeyPair, SigningKeyPair};
use ledgerview_crypto::rng::seeded;
use ledgerview_crypto::sha256::{sha256, Sha256};
use ledgerview_crypto::sha512::sha512;
use ledgerview_crypto::{aead, hex, hkdf, hmac, x25519};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streaming hashing equals one-shot hashing for any split.
    #[test]
    fn sha256_streaming_equivalence(data in proptest::collection::vec(any::<u8>(), 0..2048), split in any::<usize>()) {
        let split = if data.is_empty() { 0 } else { split % data.len() };
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// SHA-256 and SHA-512 never collide on the inputs we generate (a
    /// sanity property: distinct inputs hash distinctly).
    #[test]
    fn hashes_distinguish_inputs(a in proptest::collection::vec(any::<u8>(), 0..256),
                                 b in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assume!(a != b);
        prop_assert_ne!(sha256(&a), sha256(&b));
        prop_assert_ne!(sha512(&a).0.to_vec(), sha512(&b).0.to_vec());
    }

    /// AEAD round trip for arbitrary keys, plaintexts and AAD; any flipped
    /// bit is rejected.
    #[test]
    fn aead_round_trip_and_tamper(
        key in any::<[u8; 32]>(),
        pt in proptest::collection::vec(any::<u8>(), 0..512),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        seed in any::<u64>(),
        flip in any::<(usize, u8)>(),
    ) {
        let mut rng = seeded(seed);
        let ct = aead::seal_sym_aad(&key, &mut rng, &pt, &aad);
        prop_assert_eq!(aead::open_sym_aad(&key, &ct, &aad).unwrap(), pt);

        let (pos, bit) = flip;
        let mut bad = ct.clone();
        bad[pos % ct.len()] ^= 1 << (bit % 8);
        if bad != ct {
            prop_assert!(aead::open_sym_aad(&key, &bad, &aad).is_err());
        }
    }

    /// Hybrid public-key encryption round trips; other key pairs fail.
    #[test]
    fn hybrid_round_trip(pt in proptest::collection::vec(any::<u8>(), 0..256), seed in any::<u64>()) {
        let mut rng = seeded(seed);
        let me = EncryptionKeyPair::generate(&mut rng);
        let other = EncryptionKeyPair::generate(&mut rng);
        let ct = ledgerview_crypto::seal(&me.public(), &mut rng, &pt);
        prop_assert_eq!(ledgerview_crypto::open(&me, &ct).unwrap(), pt);
        prop_assert!(ledgerview_crypto::open(&other, &ct).is_err());
    }

    /// X25519 Diffie–Hellman agreement for random scalars.
    #[test]
    fn x25519_agreement(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let pa = x25519::public_key(&a);
        let pb = x25519::public_key(&b);
        let sa = x25519::x25519(&a, &pb);
        let sb = x25519::x25519(&b, &pa);
        prop_assert_eq!(sa, sb);
    }

    /// Ed25519 signatures verify and are message-bound.
    #[test]
    fn ed25519_sign_verify(msg in proptest::collection::vec(any::<u8>(), 0..256),
                           tweak in proptest::collection::vec(any::<u8>(), 0..256),
                           seed in any::<u64>()) {
        let mut rng = seeded(seed);
        let kp = SigningKeyPair::generate(&mut rng);
        let sig = kp.sign(&msg);
        prop_assert!(ledgerview_crypto::keys::verify_signature(&kp.public(), &msg, &sig).is_ok());
        if tweak != msg {
            prop_assert!(
                ledgerview_crypto::keys::verify_signature(&kp.public(), &tweak, &sig).is_err()
            );
        }
    }

    /// HMAC is key- and message-sensitive.
    #[test]
    fn hmac_sensitivity(k1 in any::<[u8; 16]>(), k2 in any::<[u8; 16]>(),
                        m1 in proptest::collection::vec(any::<u8>(), 0..128),
                        m2 in proptest::collection::vec(any::<u8>(), 0..128)) {
        if k1 != k2 {
            prop_assert_ne!(hmac::hmac_sha256(&k1, &m1), hmac::hmac_sha256(&k2, &m1));
        }
        if m1 != m2 {
            prop_assert_ne!(hmac::hmac_sha256(&k1, &m1), hmac::hmac_sha256(&k1, &m2));
        }
    }

    /// HKDF expansion has the prefix property and is info-sensitive.
    #[test]
    fn hkdf_properties(ikm in proptest::collection::vec(any::<u8>(), 1..64)) {
        let prk = hkdf::extract(b"salt", &ikm);
        let mut long = [0u8; 64];
        hkdf::expand(&prk, b"ctx", &mut long);
        let mut short = [0u8; 16];
        hkdf::expand(&prk, b"ctx", &mut short);
        prop_assert_eq!(&long[..16], &short[..]);
        let mut other = [0u8; 16];
        hkdf::expand(&prk, b"ctx2", &mut other);
        prop_assert_ne!(short, other);
    }

    /// Hex round trips.
    #[test]
    fn hex_round_trip(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(hex::decode(&hex::encode(&data)).unwrap(), data);
    }
}

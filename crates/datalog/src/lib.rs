//! A datalog engine for recursive view definitions.
//!
//! §3 of the paper defines views by predicates over the non-secret part of
//! transactions and extends them "in a datalog fashion" with recursive
//! rules, e.g. *all transactions that are part of a delivery chain ending
//! at Warehouse 1*. This crate implements positive datalog with recursion,
//! evaluated bottom-up with the semi-naive algorithm:
//!
//! * [`ast`] — values, terms, atoms, rules and programs, with a small
//!   builder API.
//! * [`eval`] — semi-naive fixpoint evaluation over an extensional
//!   database.
//!
//! ```
//! use ledgerview_datalog::ast::{Program, Rule, Atom, Term, Value};
//! use ledgerview_datalog::eval::Database;
//!
//! // delivered(t, from, to) facts; reach(t) = deliveries ending at "W1",
//! // directly or through later hops of the same item.
//! let mut db = Database::new();
//! db.insert("delivered", vec![Value::str("t1"), Value::str("M1"), Value::str("W1")]);
//! db.insert("delivered", vec![Value::str("t2"), Value::str("M2"), Value::str("S1")]);
//!
//! let program = Program::new(vec![Rule::new(
//!     Atom::new("to_w1", vec![Term::var("T")]),
//!     vec![Atom::new(
//!         "delivered",
//!         vec![Term::var("T"), Term::var("F"), Term::constant(Value::str("W1"))],
//!     )],
//! )]);
//! let result = program.evaluate(&db).unwrap();
//! assert!(result.contains("to_w1", &[Value::str("t1")]));
//! assert!(!result.contains("to_w1", &[Value::str("t2")]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod eval;

pub use ast::{Atom, Program, Rule, Term, Value};
pub use eval::{Database, EvalError};

//! Semi-naive bottom-up evaluation.
//!
//! The database maps relation names to sets of tuples. Evaluation computes
//! the least fixpoint of the program over the extensional facts: each
//! iteration joins rule bodies against the *delta* (tuples new in the
//! previous iteration) so work is proportional to new derivations, the
//! standard semi-naive optimisation.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::ast::{Atom, Program, Term, Value};

/// A tuple of constants.
pub type Tuple = Vec<Value>;

/// Errors raised by evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A rule's head uses a variable not bound by its body.
    UnsafeRule(String),
    /// The same relation is used with different arities.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity seen first.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnsafeRule(r) => write!(f, "unsafe rule: {r}"),
            EvalError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation {relation} used with arity {found}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// A set of facts per relation.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: HashMap<String, HashSet<Tuple>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Insert a fact. Returns true if it was new.
    pub fn insert(&mut self, relation: impl Into<String>, tuple: Tuple) -> bool {
        self.relations
            .entry(relation.into())
            .or_default()
            .insert(tuple)
    }

    /// Whether the fact is present.
    pub fn contains(&self, relation: &str, tuple: &[Value]) -> bool {
        self.relations
            .get(relation)
            .is_some_and(|s| s.contains(tuple))
    }

    /// All tuples of a relation (unordered).
    pub fn tuples(&self, relation: &str) -> impl Iterator<Item = &Tuple> {
        self.relations.get(relation).into_iter().flatten()
    }

    /// Number of facts in a relation.
    pub fn len(&self, relation: &str) -> usize {
        self.relations.get(relation).map_or(0, |s| s.len())
    }

    /// Whether the whole database is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(|s| s.is_empty())
    }

    /// Check that every use of each relation has a consistent arity.
    fn check_arities(&self, program: &Program) -> Result<(), EvalError> {
        let mut arity: HashMap<String, usize> = HashMap::new();
        let mut check = |rel: &str, n: usize| -> Result<(), EvalError> {
            match arity.get(rel) {
                Some(&e) if e != n => Err(EvalError::ArityMismatch {
                    relation: rel.to_string(),
                    expected: e,
                    found: n,
                }),
                _ => {
                    arity.insert(rel.to_string(), n);
                    Ok(())
                }
            }
        };
        for (rel, tuples) in &self.relations {
            if let Some(t) = tuples.iter().next() {
                check(rel, t.len())?;
            }
        }
        for rule in &program.rules {
            check(&rule.head.relation, rule.head.terms.len())?;
            for atom in &rule.body {
                check(&atom.relation, atom.terms.len())?;
            }
        }
        Ok(())
    }
}

type Bindings<'a> = HashMap<&'a str, Value>;

/// Try to extend `bindings` by matching `atom` against `tuple`.
fn unify<'a>(atom: &'a Atom, tuple: &[Value], bindings: &Bindings<'a>) -> Option<Bindings<'a>> {
    let mut out = bindings.clone();
    for (term, value) in atom.terms.iter().zip(tuple) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => match out.get(v.as_str()) {
                Some(bound) if bound != value => return None,
                Some(_) => {}
                None => {
                    out.insert(v.as_str(), value.clone());
                }
            },
        }
    }
    Some(out)
}

fn instantiate(head: &Atom, bindings: &Bindings<'_>) -> Tuple {
    head.terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => c.clone(),
            Term::Var(v) => bindings
                .get(v.as_str())
                .cloned()
                .expect("safety check guarantees bound head variables"),
        })
        .collect()
}

/// Evaluate one rule: join body atoms left to right. `delta` constrains one
/// chosen body atom to newly-derived tuples (semi-naive); pass `None` for
/// the naive first round.
fn eval_rule(
    rule: &crate::ast::Rule,
    full: &Database,
    delta: Option<(&Database, usize)>,
) -> HashSet<Tuple> {
    let mut results = HashSet::new();
    // Worklist of partial bindings.
    let mut partials: Vec<Bindings<'_>> = vec![HashMap::new()];
    for (i, atom) in rule.body.iter().enumerate() {
        let source: Box<dyn Iterator<Item = &Tuple>> = match delta {
            Some((d, di)) if di == i => Box::new(d.tuples(&atom.relation)),
            _ => Box::new(full.tuples(&atom.relation)),
        };
        let tuples: Vec<&Tuple> = source.collect();
        let mut next = Vec::new();
        for b in &partials {
            for t in &tuples {
                if let Some(extended) = unify(atom, t, b) {
                    next.push(extended);
                }
            }
        }
        partials = next;
        if partials.is_empty() {
            return results;
        }
    }
    for b in &partials {
        results.insert(instantiate(&rule.head, b));
    }
    results
}

impl Program {
    /// Compute the least fixpoint of this program over `edb`, returning a
    /// database containing the extensional facts plus all derived facts.
    pub fn evaluate(&self, edb: &Database) -> Result<Database, EvalError> {
        for rule in &self.rules {
            if !rule.is_safe() {
                return Err(EvalError::UnsafeRule(rule.to_string()));
            }
        }
        edb.check_arities(self)?;

        let mut full = edb.clone();
        // Naive first round: derive everything once.
        let mut delta = Database::new();
        for rule in &self.rules {
            for tuple in eval_rule(rule, &full, None) {
                if !full.contains(&rule.head.relation, &tuple) {
                    full.insert(rule.head.relation.clone(), tuple.clone());
                    delta.insert(rule.head.relation.clone(), tuple);
                }
            }
        }
        // Semi-naive iterations: each round only joins against the delta.
        while !delta.is_empty() {
            let mut next_delta = Database::new();
            for rule in &self.rules {
                for i in 0..rule.body.len() {
                    if delta.len(&rule.body[i].relation) == 0 {
                        continue;
                    }
                    for tuple in eval_rule(rule, &full, Some((&delta, i))) {
                        if !full.contains(&rule.head.relation, &tuple) {
                            full.insert(rule.head.relation.clone(), tuple.clone());
                            next_delta.insert(rule.head.relation.clone(), tuple);
                        }
                    }
                }
            }
            delta = next_delta;
        }
        Ok(full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Rule;

    fn v(s: &str) -> Value {
        Value::str(s)
    }

    fn var(s: &str) -> Term {
        Term::var(s)
    }

    fn cst(s: &str) -> Term {
        Term::constant(Value::str(s))
    }

    /// edge facts over a chain a→b→c→d plus an island x→y.
    fn chain_db() -> Database {
        let mut db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d"), ("x", "y")] {
            db.insert("edge", vec![v(a), v(b)]);
        }
        db
    }

    /// Classic transitive closure.
    fn closure_program() -> Program {
        Program::new(vec![
            Rule::new(
                Atom::new("path", vec![var("X"), var("Y")]),
                vec![Atom::new("edge", vec![var("X"), var("Y")])],
            ),
            Rule::new(
                Atom::new("path", vec![var("X"), var("Z")]),
                vec![
                    Atom::new("edge", vec![var("X"), var("Y")]),
                    Atom::new("path", vec![var("Y"), var("Z")]),
                ],
            ),
        ])
    }

    #[test]
    fn transitive_closure() {
        let result = closure_program().evaluate(&chain_db()).unwrap();
        assert!(result.contains("path", &[v("a"), v("d")]));
        assert!(result.contains("path", &[v("b"), v("d")]));
        assert!(result.contains("path", &[v("x"), v("y")]));
        assert!(!result.contains("path", &[v("a"), v("y")]));
        assert!(!result.contains("path", &[v("d"), v("a")]));
        // 3+2+1 chain paths + 1 island = 7.
        assert_eq!(result.len("path"), 7);
    }

    #[test]
    fn constants_filter() {
        let program = Program::new(vec![Rule::new(
            Atom::new("to_d", vec![var("X")]),
            vec![Atom::new("edge", vec![var("X"), cst("d")])],
        )]);
        let result = program.evaluate(&chain_db()).unwrap();
        assert_eq!(result.len("to_d"), 1);
        assert!(result.contains("to_d", &[v("c")]));
    }

    #[test]
    fn repeated_variable_forces_equality() {
        let mut db = Database::new();
        db.insert("pair", vec![v("a"), v("a")]);
        db.insert("pair", vec![v("a"), v("b")]);
        let program = Program::new(vec![Rule::new(
            Atom::new("diag", vec![var("X")]),
            vec![Atom::new("pair", vec![var("X"), var("X")])],
        )]);
        let result = program.evaluate(&db).unwrap();
        assert_eq!(result.len("diag"), 1);
        assert!(result.contains("diag", &[v("a")]));
    }

    #[test]
    fn paper_delivery_chain_example() {
        // §3 of the paper: P(t) = transactions that are part of a delivery
        // chain reaching "Warehouse 1". delivered(T, Item, From, To).
        let mut db = Database::new();
        // Item i1: M1 → D1 → Warehouse 1.
        db.insert("delivered", vec![v("t1"), v("i1"), v("M1"), v("D1")]);
        db.insert(
            "delivered",
            vec![v("t2"), v("i1"), v("D1"), v("Warehouse 1")],
        );
        // Item i2: M2 → Shop 9 (never reaches Warehouse 1).
        db.insert("delivered", vec![v("t3"), v("i2"), v("M2"), v("Shop 9")]);

        // reaches_w1(Item, From): there is a delivery chain for Item from
        // `From` to Warehouse 1. p(T): transaction T participates.
        let program = Program::new(vec![
            Rule::new(
                Atom::new("reaches_w1", vec![var("I"), var("F")]),
                vec![Atom::new(
                    "delivered",
                    vec![var("T"), var("I"), var("F"), cst("Warehouse 1")],
                )],
            ),
            Rule::new(
                Atom::new("reaches_w1", vec![var("I"), var("F")]),
                vec![
                    Atom::new("delivered", vec![var("T"), var("I"), var("F"), var("M")]),
                    Atom::new("reaches_w1", vec![var("I"), var("M")]),
                ],
            ),
            Rule::new(
                Atom::new("p", vec![var("T")]),
                vec![
                    Atom::new("delivered", vec![var("T"), var("I"), var("F"), var("To")]),
                    Atom::new("reaches_w1", vec![var("I"), var("F")]),
                ],
            ),
        ]);
        let result = program.evaluate(&db).unwrap();
        assert!(result.contains("p", &[v("t1")]));
        assert!(result.contains("p", &[v("t2")]));
        assert!(!result.contains("p", &[v("t3")]));
    }

    #[test]
    fn union_of_rules() {
        let mut db = Database::new();
        db.insert("p1", vec![v("a")]);
        db.insert("p2", vec![v("b")]);
        let program = Program::new(vec![
            Rule::new(
                Atom::new("q", vec![var("X")]),
                vec![Atom::new("p1", vec![var("X")])],
            ),
            Rule::new(
                Atom::new("q", vec![var("X")]),
                vec![Atom::new("p2", vec![var("X")])],
            ),
        ]);
        let result = program.evaluate(&db).unwrap();
        assert_eq!(result.len("q"), 2);
    }

    #[test]
    fn unsafe_rule_rejected() {
        let program = Program::new(vec![Rule::new(
            Atom::new("q", vec![var("Y")]),
            vec![Atom::new("p", vec![var("X")])],
        )]);
        assert!(matches!(
            program.evaluate(&Database::new()),
            Err(EvalError::UnsafeRule(_))
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut db = Database::new();
        db.insert("p", vec![v("a")]);
        let program = Program::new(vec![Rule::new(
            Atom::new("q", vec![var("X")]),
            vec![Atom::new("p", vec![var("X"), var("Y")])],
        )]);
        assert!(matches!(
            program.evaluate(&db),
            Err(EvalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn empty_program_returns_edb() {
        let db = chain_db();
        let result = Program::default().evaluate(&db).unwrap();
        assert_eq!(result.len("edge"), 4);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "a")] {
            db.insert("edge", vec![v(a), v(b)]);
        }
        let result = closure_program().evaluate(&db).unwrap();
        // Full closure of a 3-cycle: 9 pairs.
        assert_eq!(result.len("path"), 9);
        assert!(result.contains("path", &[v("a"), v("a")]));
    }

    #[test]
    fn semi_naive_matches_monotonicity() {
        // Adding facts can only grow derived relations.
        let mut db = chain_db();
        let small = closure_program().evaluate(&db).unwrap();
        db.insert("edge", vec![v("d"), v("e")]);
        let large = closure_program().evaluate(&db).unwrap();
        assert!(large.len("path") > small.len("path"));
        for t in small.tuples("path") {
            assert!(large.contains("path", t));
        }
    }

    #[test]
    fn long_chain_performance_shape() {
        // 200-node chain: 200*201/2 = 20100 paths; must terminate quickly
        // thanks to semi-naive evaluation.
        let mut db = Database::new();
        for i in 0..200 {
            db.insert("edge", vec![Value::int(i), Value::int(i + 1)]);
        }
        let result = closure_program().evaluate(&db).unwrap();
        assert_eq!(result.len("path"), 200 * 201 / 2);
    }
}

//! Abstract syntax: values, terms, atoms, rules, programs.

use std::collections::HashSet;
use std::fmt;

/// A constant value appearing in facts and rules.
///
/// Transaction attributes in LedgerView are strings (entities, item ids)
/// and integers (timestamps, block numbers), so those are the two carried
/// types.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Value {
    /// A string constant.
    Str(String),
    /// An integer constant.
    Int(i64),
}

impl Value {
    /// Shorthand string constructor.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Shorthand integer constructor.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

/// A term in an atom: a variable or a constant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A named variable.
    Var(String),
    /// A constant.
    Const(Value),
}

impl Term {
    /// Shorthand variable constructor.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Shorthand constant constructor.
    pub fn constant(v: Value) -> Term {
        Term::Const(v)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// An atom: `relation(term, term, ...)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Atom {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Variables appearing in this atom.
    pub fn variables(&self) -> HashSet<&str> {
        self.terms
            .iter()
            .filter_map(|t| match t {
                Term::Var(v) => Some(v.as_str()),
                Term::Const(_) => None,
            })
            .collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A rule: `head :- body₁, body₂, ...`.
#[derive(Clone, Debug)]
pub struct Rule {
    /// The derived atom.
    pub head: Atom,
    /// The conjunctive body.
    pub body: Vec<Atom>,
}

impl Rule {
    /// Construct a rule.
    pub fn new(head: Atom, body: Vec<Atom>) -> Rule {
        Rule { head, body }
    }

    /// A rule is *range-restricted* (safe) if every head variable appears
    /// in the body. Unsafe rules are rejected at evaluation time.
    pub fn is_safe(&self) -> bool {
        let body_vars: HashSet<&str> = self.body.iter().flat_map(|a| a.variables()).collect();
        self.head.variables().is_subset(&body_vars)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A datalog program: a set of rules.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// The rules, in declaration order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Construct a program.
    pub fn new(rules: Vec<Rule>) -> Program {
        Program { rules }
    }

    /// Relations derived by rules (intensional database).
    pub fn idb_relations(&self) -> HashSet<&str> {
        self.rules
            .iter()
            .map(|r| r.head.relation.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_variables() {
        let a = Atom::new(
            "delivered",
            vec![
                Term::var("T"),
                Term::constant(Value::str("W1")),
                Term::var("T"),
            ],
        );
        let vars = a.variables();
        assert_eq!(vars.len(), 1);
        assert!(vars.contains("T"));
    }

    #[test]
    fn rule_safety() {
        let safe = Rule::new(
            Atom::new("p", vec![Term::var("X")]),
            vec![Atom::new("q", vec![Term::var("X"), Term::var("Y")])],
        );
        assert!(safe.is_safe());
        let unsafe_rule = Rule::new(
            Atom::new("p", vec![Term::var("Z")]),
            vec![Atom::new("q", vec![Term::var("X")])],
        );
        assert!(!unsafe_rule.is_safe());
        // Ground head is trivially safe.
        let ground = Rule::new(
            Atom::new("p", vec![Term::constant(Value::int(1))]),
            vec![Atom::new("q", vec![Term::var("X")])],
        );
        assert!(ground.is_safe());
    }

    #[test]
    fn display_forms() {
        let r = Rule::new(
            Atom::new("p", vec![Term::var("X")]),
            vec![Atom::new(
                "q",
                vec![Term::var("X"), Term::constant(Value::str("W1"))],
            )],
        );
        assert_eq!(r.to_string(), "p(X) :- q(X, \"W1\")");
        assert_eq!(Value::int(3).to_string(), "3");
    }

    #[test]
    fn idb_relations() {
        let p = Program::new(vec![
            Rule::new(Atom::new("a", vec![]), vec![Atom::new("b", vec![])]),
            Rule::new(Atom::new("a", vec![]), vec![Atom::new("c", vec![])]),
            Rule::new(Atom::new("d", vec![]), vec![Atom::new("a", vec![])]),
        ]);
        let idb = p.idb_relations();
        assert_eq!(idb.len(), 2);
        assert!(idb.contains("a") && idb.contains("d"));
    }
}

//! The twelve-consistency-style invariant checks, recomputed from
//! committed state.
//!
//! Two tiers, matching what the protocol actually guarantees at each
//! point:
//!
//! * **Local** ([`check_warehouse_local`]) — invariants the contract
//!   preserves within every single transaction, so they hold on every
//!   committed block boundary *even while cross-shard operations are in
//!   flight*: warehouse YTD equals the sum of its district YTDs (the
//!   payment home leg moves both atomically), district order allocation
//!   matches the order/order-line/new-order row counts.
//! * **Global** ([`check_global`]) — invariants spanning shards that 2PC
//!   restores at quiescence: every cent of warehouse YTD is some
//!   customer's YTD payment (cross-warehouse payments conserve money
//!   through the protocol), stock movements equal ordered quantities,
//!   customer balances reconcile against deliveries minus payments, and
//!   no prepared-but-undecided leg survives anywhere.
//!
//! The checkers parse raw state — they share nothing with the contract
//! but the pure [`schema`] functions — so a bug in the contract's
//! bookkeeping cannot hide in a shared code path.

use fabric_sim::statedb::VersionedState;

use crate::schema::{self, warehouse_key, DISTRICTS};

fn parse(s: &[u8], what: &str) -> Result<Vec<i64>, String> {
    std::str::from_utf8(s)
        .map_err(|_| format!("{what}: not UTF-8"))?
        .split(',')
        .map(|f| {
            f.parse::<i64>()
                .map_err(|_| format!("{what}: bad field {f:?}"))
        })
        .collect()
}

/// Split a composite key into its `~`-separated components.
fn parts(key: &str) -> Vec<&str> {
    key.split('~').collect()
}

/// Local invariants for one warehouse on its shard's committed state.
/// A warehouse that is not yet populated passes vacuously. Returns the
/// number of checks evaluated.
pub fn check_warehouse_local(state: &dyn VersionedState, w: u64) -> Result<u64, String> {
    let Some(wh) = state.get(&warehouse_key(w)) else {
        return Ok(0);
    };
    let w_ytd = parse(&wh, "warehouse")?[0];
    let mut checks = 0u64;

    let mut district_ytd_sum = 0i64;
    for d in 0..DISTRICTS {
        let Some(dist) = state.get(&schema::district_key(w, d)) else {
            continue;
        };
        let dist = parse(&dist, "district")?;
        let (next_o_id, d_ytd) = (dist[0], dist[1]);
        district_ytd_sum += d_ytd;

        let ord_prefix = format!("wh~w{w}~ord~{d:02}~");
        let orders = state.prefix_scan(&ord_prefix);
        if next_o_id - 1 != orders.len() as i64 {
            return Err(format!(
                "w{w}/d{d}: next_o_id {next_o_id} but {} orders",
                orders.len()
            ));
        }
        checks += 1;

        let mut ol_cnt_sum = 0i64;
        let mut undelivered = 0i64;
        for (key, value) in &orders {
            let ord = parse(value, "order")?;
            ol_cnt_sum += ord[3];
            if ord[2] == 0 {
                undelivered += 1;
                let o = parts(key)[4]
                    .parse::<u64>()
                    .map_err(|_| format!("bad order key {key}"))?;
                if state.get(&schema::new_order_key(w, d, o)).is_none() {
                    return Err(format!("w{w}/d{d}/o{o}: undelivered but no marker"));
                }
            }
        }
        let ol_rows = state.prefix_scan(&format!("wh~w{w}~ol~{d:02}~")).len() as i64;
        if ol_cnt_sum != ol_rows {
            return Err(format!(
                "w{w}/d{d}: orders claim {ol_cnt_sum} lines, found {ol_rows}"
            ));
        }
        checks += 1;

        let markers = state.prefix_scan(&format!("wh~w{w}~no~{d:02}~")).len() as i64;
        if markers != undelivered {
            return Err(format!(
                "w{w}/d{d}: {markers} new-order markers, {undelivered} undelivered orders"
            ));
        }
        checks += 1;
    }
    if w_ytd != district_ytd_sum {
        return Err(format!(
            "w{w}: warehouse YTD {w_ytd} ≠ Σ district YTD {district_ytd_sum}"
        ));
    }
    checks += 1;
    Ok(checks)
}

/// Global invariants over every shard's committed state at quiescence.
/// Returns the number of checks evaluated.
pub fn check_global(states: &[&dyn VersionedState]) -> Result<u64, String> {
    let mut w_ytd_sum = 0i64;
    let mut cust_ytd_sum = 0i64;
    let mut cust_balance_sum = 0i64;
    let mut stock_ytd_sum = 0i64;
    let mut ol_qty_sum = 0i64;
    let mut delivered_amount_sum = 0i64;

    for state in states {
        for (key, value) in state.prefix_scan("wh~") {
            let p = parts(&key);
            match p.get(2).copied() {
                Some("meta") => w_ytd_sum += parse(&value, "warehouse")?[0],
                Some("cust") => {
                    let cust = parse(&value, "customer")?;
                    cust_balance_sum += cust[0];
                    cust_ytd_sum += cust[1];
                }
                Some("stock") => stock_ytd_sum += parse(&value, "stock")?[1],
                Some("ol") => ol_qty_sum += parse(&value, "order line")?[2],
                Some("ord") => {
                    let ord = parse(&value, "order")?;
                    if ord[2] != 0 {
                        // Delivered: its lines' amounts were credited to
                        // the customer. Recompute from the line rows.
                        let (w, d, o) = (p[1], p[3], p[4]);
                        for (_, ol) in state.prefix_scan(&format!("wh~{w}~ol~{d}~{o}~")) {
                            delivered_amount_sum += parse(&ol, "order line")?[3];
                        }
                    }
                }
                _ => {}
            }
        }
        let stranded = state.prefix_scan("tpend~");
        if !stranded.is_empty() {
            return Err(format!(
                "{} prepared-but-undecided legs after quiescence: {:?}",
                stranded.len(),
                stranded.iter().map(|(k, _)| k).collect::<Vec<_>>()
            ));
        }
    }

    if w_ytd_sum != cust_ytd_sum {
        return Err(format!(
            "Σ warehouse YTD {w_ytd_sum} ≠ Σ customer YTD payments {cust_ytd_sum} \
             (a cross-warehouse payment leg was lost or duplicated)"
        ));
    }
    if stock_ytd_sum != ol_qty_sum {
        return Err(format!(
            "Σ stock YTD {stock_ytd_sum} ≠ Σ order-line qty {ol_qty_sum} \
             (a remote stock leg was lost or duplicated)"
        ));
    }
    if cust_balance_sum != delivered_amount_sum - cust_ytd_sum {
        return Err(format!(
            "Σ customer balance {cust_balance_sum} ≠ deliveries {delivered_amount_sum} \
             − payments {cust_ytd_sum}"
        ));
    }
    Ok(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::TpccContract;
    use crate::schema::TPCC_CC;
    use fabric_sim::endorsement::EndorsementPolicy;
    use fabric_sim::identity::OrgId;
    use fabric_sim::FabricChain;
    use ledgerview_crypto::rng::seeded;

    #[test]
    fn invariants_hold_on_a_scripted_chain_and_catch_tampering() {
        let mut rng = seeded(0x117);
        let mut chain = FabricChain::new(&["OrgA"], &mut rng);
        chain.deploy(
            TPCC_CC,
            Box::new(TpccContract),
            EndorsementPolicy::AllOf(chain.org_ids()),
        );
        let id = chain.enroll(&OrgId::new("OrgA"), "t", &mut rng).unwrap();
        let call = |chain: &mut FabricChain, rng: &mut _, f: &str, args: &[&str]| {
            let args: Vec<Vec<u8>> = args.iter().map(|a| a.as_bytes().to_vec()).collect();
            chain.invoke_commit(&id, TPCC_CC, f, args, rng).unwrap();
        };
        call(&mut chain, &mut rng, "load_warehouse", &["0", "4"]);
        for d in 0..4u64 {
            call(
                &mut chain,
                &mut rng,
                "load_customers",
                &["0", &d.to_string(), "8"],
            );
        }
        call(&mut chain, &mut rng, "load_stock", &["0", "0", "32"]);
        call(
            &mut chain,
            &mut rng,
            "new_order",
            &["0", "1", "2", "4:0:3;11:0:1", "50"],
        );
        call(
            &mut chain,
            &mut rng,
            "payment",
            &["0", "0", "0", "1", "2", "700"],
        );
        call(&mut chain, &mut rng, "delivery", &["0", "3", "4"]);

        let checks = check_warehouse_local(chain.state(), 0).unwrap();
        assert!(checks > 0);
        assert_eq!(check_warehouse_local(chain.state(), 9).unwrap(), 0);
        check_global(&[chain.state()]).unwrap();

        // Tamper: a payment that only touches the customer half is the
        // signature of a half-applied cross-warehouse payment.
        call(
            &mut chain,
            &mut rng,
            "prepare_pay_cust",
            &["rx", "0", "1", "2", "100"],
        );
        call(&mut chain, &mut rng, "commit", &["rx"]);
        let err = check_global(&[chain.state()]).unwrap_err();
        assert!(err.contains("Σ warehouse YTD"), "{err}");
    }
}

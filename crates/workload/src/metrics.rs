//! `lv_workload_*` metric handles. Observational only: a run with and
//! without telemetry produces bit-identical reports.

use std::collections::BTreeMap;

use ledgerview_telemetry::{Counter, HistogramHandle, Telemetry};

use crate::mix::TxProfile;

pub(crate) struct WorkloadMetrics {
    /// Scheduled transactions by profile.
    submitted: BTreeMap<TxProfile, Counter>,
    /// Committed transactions by profile.
    committed: BTreeMap<TxProfile, Counter>,
    /// Aborted or shed transactions by profile.
    aborted: BTreeMap<TxProfile, Counter>,
    /// Wall-clock cost of one invariant sweep (the only real-time metric
    /// here: it measures the checker, not the simulation).
    pub invariant_check_us: HistogramHandle,
    /// Viewing-key grants issued by the confidential layer.
    pub viewing_grants: Counter,
    /// Typed viewing-key denials, by reason.
    denials: BTreeMap<&'static str, Counter>,
    /// Per-warehouse view queries, by outcome.
    pub view_queries_ok: Counter,
    pub view_queries_denied: Counter,
}

impl WorkloadMetrics {
    pub fn new(telemetry: &Telemetry) -> WorkloadMetrics {
        let r = telemetry.registry();
        let per_profile = |name: &str| {
            TxProfile::ALL
                .iter()
                .map(|&p| (p, r.counter(name, &[("profile", p.label())])))
                .collect::<BTreeMap<_, _>>()
        };
        WorkloadMetrics {
            submitted: per_profile("lv_workload_submitted_total"),
            committed: per_profile("lv_workload_committed_total"),
            aborted: per_profile("lv_workload_aborted_total"),
            invariant_check_us: r.histogram("lv_workload_invariant_check_us", &[]),
            viewing_grants: r.counter("lv_workload_viewing_grants_total", &[]),
            denials: ["no_grant", "bad_key", "revoked", "policy"]
                .into_iter()
                .map(|reason| {
                    (
                        reason,
                        r.counter("lv_workload_viewing_denials_total", &[("reason", reason)]),
                    )
                })
                .collect(),
            view_queries_ok: r.counter("lv_workload_view_queries_total", &[("result", "ok")]),
            view_queries_denied: r
                .counter("lv_workload_view_queries_total", &[("result", "denied")]),
        }
    }

    pub fn inc_submitted(&self, p: TxProfile) {
        if let Some(c) = self.submitted.get(&p) {
            c.inc();
        }
    }

    pub fn inc_committed(&self, p: TxProfile) {
        if let Some(c) = self.committed.get(&p) {
            c.inc();
        }
    }

    pub fn inc_aborted(&self, p: TxProfile) {
        if let Some(c) = self.aborted.get(&p) {
            c.inc();
        }
    }

    pub fn inc_denial(&self, reason: &str) {
        if let Some(c) = self.denials.get(reason) {
            c.inc();
        }
    }
}

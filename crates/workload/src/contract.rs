//! The TPC-C-class chaincode: population loaders, the five transaction
//! profiles, and 2PC participant legs for cross-warehouse work.
//!
//! Direct profile functions assume every key they touch routes to the
//! executing shard — the driver only submits them that way (the shard
//! router proves co-residency before choosing the direct path). When a
//! transaction spans warehouses on different shards, the driver runs it
//! through the deployment's 2PC instead: each `prepare_*` function
//! records its effects as a pending action under `tpend~<req>~…` and
//! votes YES, `commit(req)` applies every pending action on this shard
//! atomically, and `abort(req)` discards them. Terminal markers
//! (`tfin~<req>`) make both finalize functions idempotent and give the
//! contract presumed-abort semantics, exactly like the crosschain
//! participants it is modeled on.
//!
//! Argument convention: all numeric arguments are ASCII decimal strings;
//! order-line lists use the `i:sw:q;…` wire form from [`schema`].

use fabric_sim::chaincode::{Chaincode, TxContext};
use fabric_sim::error::FabricError;

use crate::schema::{
    self, audit_key, customer_key, decode_lines, district_key, fields, item_price, new_order_key,
    order_key, order_line_key, parse_i64, parse_u64, stock_key, tfin_key, tpend_prefix,
    warehouse_key, OrderLine,
};

/// The TPC-C participant/profile chaincode. Stateless; all state lives
/// in the channel's world state under the [`schema`] keys.
pub struct TpccContract;

fn arg<'a>(args: &'a [Vec<u8>], i: usize, what: &str) -> Result<&'a [u8], FabricError> {
    args.get(i)
        .map(|v| v.as_slice())
        .ok_or_else(|| FabricError::Malformed(format!("missing arg {i} ({what})")))
}

fn arg_str(args: &[Vec<u8>], i: usize, what: &str) -> Result<String, FabricError> {
    String::from_utf8(arg(args, i, what)?.to_vec())
        .map_err(|_| FabricError::Malformed(format!("arg {i} ({what}) not UTF-8")))
}

fn arg_u64(args: &[Vec<u8>], i: usize, what: &str) -> Result<u64, FabricError> {
    parse_u64(&arg_str(args, i, what)?, what)
}

fn read_record(
    ctx: &mut TxContext<'_>,
    key: &str,
    n: usize,
    what: &str,
) -> Result<Vec<String>, FabricError> {
    let value = ctx
        .get_state(key)
        .ok_or_else(|| FabricError::ChaincodeError(format!("{what} {key} not populated")))?;
    fields(&value, n, what)
}

fn write_record(ctx: &mut TxContext<'_>, key: String, parts: &[String]) {
    ctx.put_state(key, parts.join(",").into_bytes());
}

/// Apply a new order against the executing shard's state: allocate the
/// order id from the district, write the order, marker, and order lines,
/// and update stock for those lines supplied by warehouses resident
/// here (`apply_stock` filter).
fn apply_new_order(
    ctx: &mut TxContext<'_>,
    w: u64,
    d: u64,
    c: u64,
    lines: &[OrderLine],
    entry_us: u64,
    apply_stock: impl Fn(&OrderLine) -> bool,
) -> Result<u64, FabricError> {
    let mut dist = read_record(ctx, &district_key(w, d), 2, "district")?;
    let o_id = parse_u64(&dist[0], "next_o_id")?;
    dist[0] = (o_id + 1).to_string();
    write_record(ctx, district_key(w, d), &dist);

    write_record(
        ctx,
        order_key(w, d, o_id),
        &[
            c.to_string(),
            entry_us.to_string(),
            "0".to_string(),
            lines.len().to_string(),
        ],
    );
    ctx.put_state(new_order_key(w, d, o_id), vec![1]);
    for (l, line) in lines.iter().enumerate() {
        let amount = line.qty * item_price(line.item);
        write_record(
            ctx,
            order_line_key(w, d, o_id, l as u64),
            &[
                line.item.to_string(),
                line.supply_w.to_string(),
                line.qty.to_string(),
                amount.to_string(),
            ],
        );
        if apply_stock(line) {
            apply_stock_update(ctx, line.supply_w, line.item, line.qty, line.supply_w != w)?;
        }
    }
    Ok(o_id)
}

/// Decrement stock, restocking TPC-C style when quantity runs low; bump
/// the per-row year-to-date, order, and remote counters.
fn apply_stock_update(
    ctx: &mut TxContext<'_>,
    w: u64,
    item: u64,
    qty: u64,
    remote: bool,
) -> Result<(), FabricError> {
    let mut stock = read_record(ctx, &stock_key(w, item), 4, "stock")?;
    let on_hand = parse_u64(&stock[0], "stock qty")?;
    stock[0] = if on_hand < qty + 10 {
        (on_hand + 91 - qty.min(on_hand + 91)).to_string()
    } else {
        (on_hand - qty).to_string()
    };
    stock[1] = (parse_u64(&stock[1], "stock ytd")? + qty).to_string();
    stock[2] = (parse_u64(&stock[2], "stock order_cnt")? + 1).to_string();
    if remote {
        stock[3] = (parse_u64(&stock[3], "stock remote_cnt")? + 1).to_string();
    }
    write_record(ctx, stock_key(w, item), &stock);
    Ok(())
}

/// Apply the home half of a payment: warehouse and district year-to-date
/// move together, which is what keeps `W_YTD = Σ D_YTD` true at every
/// committed block boundary.
fn apply_payment_home(
    ctx: &mut TxContext<'_>,
    w: u64,
    d: u64,
    amount: u64,
) -> Result<(), FabricError> {
    let mut wh = read_record(ctx, &warehouse_key(w), 1, "warehouse")?;
    wh[0] = (parse_u64(&wh[0], "warehouse ytd")? + amount).to_string();
    write_record(ctx, warehouse_key(w), &wh);
    let mut dist = read_record(ctx, &district_key(w, d), 2, "district")?;
    dist[1] = (parse_u64(&dist[1], "district ytd")? + amount).to_string();
    write_record(ctx, district_key(w, d), &dist);
    Ok(())
}

/// Apply the customer half of a payment.
fn apply_payment_customer(
    ctx: &mut TxContext<'_>,
    cw: u64,
    cd: u64,
    c: u64,
    amount: u64,
) -> Result<(), FabricError> {
    let mut cust = read_record(ctx, &customer_key(cw, cd, c), 4, "customer")?;
    cust[0] = (parse_i64(&cust[0], "balance")? - amount as i64).to_string();
    cust[1] = (parse_u64(&cust[1], "ytd_payment")? + amount).to_string();
    cust[2] = (parse_u64(&cust[2], "payment_cnt")? + 1).to_string();
    write_record(ctx, customer_key(cw, cd, c), &cust);
    Ok(())
}

/// A pending 2PC action, encoded `kind|field|field|…` under
/// `tpend~<req>~<suffix>`.
fn apply_pending(ctx: &mut TxContext<'_>, encoded: &str) -> Result<(), FabricError> {
    let parts: Vec<&str> = encoded.split('|').collect();
    match parts.first().copied() {
        Some("no_home") if parts.len() == 6 => {
            let w = parse_u64(parts[1], "pend w")?;
            let lines = decode_lines(parts[4])?;
            apply_new_order(
                ctx,
                w,
                parse_u64(parts[2], "pend d")?,
                parse_u64(parts[3], "pend c")?,
                &lines,
                parse_u64(parts[5], "pend entry")?,
                |line| line.supply_w == w,
            )?;
            Ok(())
        }
        Some("stock") if parts.len() == 4 => apply_stock_update(
            ctx,
            parse_u64(parts[1], "pend sw")?,
            parse_u64(parts[2], "pend item")?,
            parse_u64(parts[3], "pend qty")?,
            true,
        ),
        Some("pay_home") if parts.len() == 4 => apply_payment_home(
            ctx,
            parse_u64(parts[1], "pend w")?,
            parse_u64(parts[2], "pend d")?,
            parse_u64(parts[3], "pend amount")?,
        ),
        Some("pay_cust") if parts.len() == 5 => apply_payment_customer(
            ctx,
            parse_u64(parts[1], "pend cw")?,
            parse_u64(parts[2], "pend cd")?,
            parse_u64(parts[3], "pend c")?,
            parse_u64(parts[4], "pend amount")?,
        ),
        _ => Err(FabricError::Malformed(format!(
            "bad pending action {encoded:?}"
        ))),
    }
}

impl Chaincode for TpccContract {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, FabricError> {
        match function {
            // ---- population ----
            "load_warehouse" => {
                let w = arg_u64(args, 0, "w")?;
                let districts = arg_u64(args, 1, "districts")?;
                write_record(ctx, warehouse_key(w), &["0".to_string()]);
                for d in 0..districts {
                    write_record(ctx, district_key(w, d), &["1".to_string(), "0".to_string()]);
                }
                Ok(vec![])
            }
            "load_customers" => {
                let w = arg_u64(args, 0, "w")?;
                let d = arg_u64(args, 1, "d")?;
                let count = arg_u64(args, 2, "count")?;
                for c in 0..count {
                    write_record(
                        ctx,
                        customer_key(w, d, c),
                        &[
                            "0".to_string(),
                            "0".to_string(),
                            "0".to_string(),
                            "0".to_string(),
                        ],
                    );
                }
                Ok(vec![])
            }
            "load_stock" => {
                let w = arg_u64(args, 0, "w")?;
                let lo = arg_u64(args, 1, "lo")?;
                let hi = arg_u64(args, 2, "hi")?;
                for i in lo..hi {
                    write_record(
                        ctx,
                        stock_key(w, i),
                        &[
                            schema::INITIAL_STOCK.to_string(),
                            "0".to_string(),
                            "0".to_string(),
                            "0".to_string(),
                        ],
                    );
                }
                Ok(vec![])
            }

            // ---- direct profiles (all keys co-resident) ----
            "new_order" => {
                let w = arg_u64(args, 0, "w")?;
                let lines = decode_lines(&arg_str(args, 3, "lines")?)?;
                let o_id = apply_new_order(
                    ctx,
                    w,
                    arg_u64(args, 1, "d")?,
                    arg_u64(args, 2, "c")?,
                    &lines,
                    arg_u64(args, 4, "entry_us")?,
                    |_| true,
                )?;
                Ok(o_id.to_string().into_bytes())
            }
            "payment" => {
                let w = arg_u64(args, 0, "w")?;
                let d = arg_u64(args, 1, "d")?;
                let cw = arg_u64(args, 2, "cw")?;
                let cd = arg_u64(args, 3, "cd")?;
                let c = arg_u64(args, 4, "c")?;
                let amount = arg_u64(args, 5, "amount")?;
                apply_payment_home(ctx, w, d, amount)?;
                apply_payment_customer(ctx, cw, cd, c, amount)?;
                Ok(vec![])
            }
            "order_status" => {
                let w = arg_u64(args, 0, "w")?;
                let d = arg_u64(args, 1, "d")?;
                let c = arg_u64(args, 2, "c")?;
                let cust = read_record(ctx, &customer_key(w, d, c), 4, "customer")?;
                Ok(cust.join(",").into_bytes())
            }
            "delivery" => {
                let w = arg_u64(args, 0, "w")?;
                let carrier = arg_u64(args, 1, "carrier")?;
                let districts = arg_u64(args, 2, "districts")?;
                let mut delivered = 0u64;
                for d in 0..districts {
                    let prefix = format!("wh~w{w}~no~{d:02}~");
                    let markers = ctx.get_state_by_prefix(&prefix);
                    let Some((marker, _)) = markers.first() else {
                        continue;
                    };
                    let o_id = parse_u64(&marker[prefix.len()..], "marker o_id")?;
                    ctx.delete_state(marker.clone());
                    let mut order = read_record(ctx, &order_key(w, d, o_id), 4, "order")?;
                    order[2] = carrier.max(1).to_string();
                    let c = parse_u64(&order[0], "order c_id")?;
                    let ol_cnt = parse_u64(&order[3], "order ol_cnt")?;
                    write_record(ctx, order_key(w, d, o_id), &order);
                    let mut total = 0u64;
                    for l in 0..ol_cnt {
                        let ol = read_record(ctx, &order_line_key(w, d, o_id, l), 4, "order line")?;
                        total += parse_u64(&ol[3], "ol amount")?;
                    }
                    let mut cust = read_record(ctx, &customer_key(w, d, c), 4, "customer")?;
                    cust[0] = (parse_i64(&cust[0], "balance")? + total as i64).to_string();
                    cust[3] = (parse_u64(&cust[3], "delivery_cnt")? + 1).to_string();
                    write_record(ctx, customer_key(w, d, c), &cust);
                    delivered += 1;
                }
                Ok(delivered.to_string().into_bytes())
            }
            "stock_level" => {
                let w = arg_u64(args, 0, "w")?;
                let d = arg_u64(args, 1, "d")?;
                let threshold = arg_u64(args, 2, "threshold")?;
                // Each district monitors its slice of the catalog — a
                // bounded read set instead of a whole-warehouse scan.
                let per = schema::ITEMS / schema::DISTRICTS;
                let mut low = 0u64;
                for i in (d * per)..((d + 1) * per) {
                    let stock = read_record(ctx, &stock_key(w, i), 4, "stock")?;
                    if parse_u64(&stock[0], "stock qty")? < threshold {
                        low += 1;
                    }
                }
                Ok(low.to_string().into_bytes())
            }
            "audit_flush" => {
                let w = arg_u64(args, 0, "w")?;
                let seq = arg_u64(args, 1, "seq")?;
                ctx.put_state(audit_key(w, seq), vec![1]);
                Ok(vec![])
            }

            // ---- 2PC participant legs ----
            "prepare_no_home" => {
                let req = arg_str(args, 0, "req")?;
                let w = arg_str(args, 1, "w")?;
                let d = arg_str(args, 2, "d")?;
                let c = arg_str(args, 3, "c")?;
                let lines = arg_str(args, 4, "lines")?;
                let entry = arg_str(args, 5, "entry_us")?;
                if ctx.get_state(&tfin_key(&req)).is_some() {
                    return Err(FabricError::ChaincodeError(format!("{req} already final")));
                }
                ctx.put_state(
                    format!("{}h", tpend_prefix(&req)),
                    format!("no_home|{w}|{d}|{c}|{lines}|{entry}").into_bytes(),
                );
                Ok(vec![])
            }
            "prepare_stock" => {
                let req = arg_str(args, 0, "req")?;
                let sw = arg_u64(args, 1, "sw")?;
                let item = arg_u64(args, 2, "item")?;
                let qty = arg_u64(args, 3, "qty")?;
                if ctx.get_state(&tfin_key(&req)).is_some() {
                    return Err(FabricError::ChaincodeError(format!("{req} already final")));
                }
                ctx.put_state(
                    format!("{}s~{sw}~{item:04}", tpend_prefix(&req)),
                    format!("stock|{sw}|{item}|{qty}").into_bytes(),
                );
                Ok(vec![])
            }
            "prepare_pay_home" => {
                let req = arg_str(args, 0, "req")?;
                let w = arg_str(args, 1, "w")?;
                let d = arg_str(args, 2, "d")?;
                let amount = arg_str(args, 3, "amount")?;
                if ctx.get_state(&tfin_key(&req)).is_some() {
                    return Err(FabricError::ChaincodeError(format!("{req} already final")));
                }
                ctx.put_state(
                    format!("{}ph", tpend_prefix(&req)),
                    format!("pay_home|{w}|{d}|{amount}").into_bytes(),
                );
                Ok(vec![])
            }
            "prepare_pay_cust" => {
                let req = arg_str(args, 0, "req")?;
                let cw = arg_str(args, 1, "cw")?;
                let cd = arg_str(args, 2, "cd")?;
                let c = arg_str(args, 3, "c")?;
                let amount = arg_str(args, 4, "amount")?;
                if ctx.get_state(&tfin_key(&req)).is_some() {
                    return Err(FabricError::ChaincodeError(format!("{req} already final")));
                }
                ctx.put_state(
                    format!("{}pc", tpend_prefix(&req)),
                    format!("pay_cust|{cw}|{cd}|{c}|{amount}").into_bytes(),
                );
                Ok(vec![])
            }
            "commit" => {
                let req = arg_str(args, 0, "req")?;
                if ctx.get_state(&tfin_key(&req)).is_some() {
                    return Ok(vec![]); // idempotent terminal
                }
                let pending = ctx.get_state_by_prefix(&tpend_prefix(&req));
                for (key, value) in pending {
                    let encoded = String::from_utf8(value)
                        .map_err(|_| FabricError::Malformed("pending action not UTF-8".into()))?;
                    apply_pending(ctx, &encoded)?;
                    ctx.delete_state(key);
                }
                ctx.put_state(tfin_key(&req), vec![1]);
                Ok(vec![])
            }
            "abort" => {
                let req = arg_str(args, 0, "req")?;
                if ctx.get_state(&tfin_key(&req)).is_some() {
                    return Ok(vec![]); // idempotent terminal
                }
                // Presumed abort: drop whatever was prepared here (possibly
                // nothing) and fence the request.
                for (key, _) in ctx.get_state_by_prefix(&tpend_prefix(&req)) {
                    ctx.delete_state(key);
                }
                ctx.put_state(tfin_key(&req), vec![0]);
                Ok(vec![])
            }
            other => Err(FabricError::ChaincodeError(format!(
                "TpccContract: unknown function {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::endorsement::EndorsementPolicy;
    use fabric_sim::identity::{Identity, OrgId};
    use fabric_sim::FabricChain;
    use ledgerview_crypto::rng::seeded;
    use rand::rngs::StdRng;

    fn tpcc_chain() -> (FabricChain, Identity, StdRng) {
        let mut rng = seeded(0x7CC);
        let mut chain = FabricChain::new(&["OrgA", "OrgB"], &mut rng);
        let policy = EndorsementPolicy::AllOf(chain.org_ids());
        chain.deploy(schema::TPCC_CC, Box::new(TpccContract), policy);
        let id = chain
            .enroll(&OrgId::new("OrgA"), "tester", &mut rng)
            .unwrap();
        (chain, id, rng)
    }

    fn call(
        chain: &mut FabricChain,
        id: &Identity,
        rng: &mut StdRng,
        function: &str,
        args: &[&str],
    ) -> Result<(), FabricError> {
        let args: Vec<Vec<u8>> = args.iter().map(|a| a.as_bytes().to_vec()).collect();
        chain
            .invoke_commit(id, schema::TPCC_CC, function, args, rng)
            .map(|_| ())
    }

    fn get(chain: &FabricChain, key: &str) -> Option<Vec<u8>> {
        chain.state().get(key)
    }

    fn populate(chain: &mut FabricChain, id: &Identity, rng: &mut StdRng) {
        call(chain, id, rng, "load_warehouse", &["0", "4"]).unwrap();
        for d in 0..4u64 {
            call(
                chain,
                id,
                rng,
                "load_customers",
                &["0", &d.to_string(), "8"],
            )
            .unwrap();
        }
        call(chain, id, rng, "load_stock", &["0", "0", "32"]).unwrap();
    }

    #[test]
    fn new_order_payment_delivery_flow() {
        let (mut chain, id, mut rng) = tpcc_chain();
        populate(&mut chain, &id, &mut rng);

        call(
            &mut chain,
            &id,
            &mut rng,
            "new_order",
            &["0", "1", "3", "5:0:2;9:0:1", "777"],
        )
        .unwrap();
        // District bumped, marker present, lines priced deterministically.
        let dist = get(&chain, &district_key(0, 1)).unwrap();
        assert!(String::from_utf8(dist).unwrap().starts_with("2,"));
        assert!(get(&chain, &new_order_key(0, 1, 1)).is_some());
        let ol = fields(&get(&chain, &order_line_key(0, 1, 1, 0)).unwrap(), 4, "ol").unwrap();
        assert_eq!(ol[3], (2 * item_price(5)).to_string());

        call(
            &mut chain,
            &id,
            &mut rng,
            "payment",
            &["0", "1", "0", "1", "3", "250"],
        )
        .unwrap();
        let wh = fields(&get(&chain, &warehouse_key(0)).unwrap(), 1, "wh").unwrap();
        assert_eq!(wh[0], "250");
        let cust = fields(&get(&chain, &customer_key(0, 1, 3)).unwrap(), 4, "cust").unwrap();
        assert_eq!(cust[0], "-250");
        assert_eq!(cust[1], "250");

        call(&mut chain, &id, &mut rng, "delivery", &["0", "7", "4"]).unwrap();
        assert!(
            get(&chain, &new_order_key(0, 1, 1)).is_none(),
            "marker consumed"
        );
        let order = fields(&get(&chain, &order_key(0, 1, 1)).unwrap(), 4, "ord").unwrap();
        assert_eq!(order[2], "7");
        let cust = fields(&get(&chain, &customer_key(0, 1, 3)).unwrap(), 4, "cust").unwrap();
        let total = (2 * item_price(5) + item_price(9)) as i64;
        assert_eq!(cust[0], (total - 250).to_string());
    }

    #[test]
    fn prepared_legs_apply_on_commit_and_vanish_on_abort() {
        let (mut chain, id, mut rng) = tpcc_chain();
        populate(&mut chain, &id, &mut rng);

        call(
            &mut chain,
            &id,
            &mut rng,
            "prepare_pay_home",
            &["r1", "0", "2", "100"],
        )
        .unwrap();
        call(&mut chain, &id, &mut rng, "commit", &["r1"]).unwrap();
        let wh = fields(&get(&chain, &warehouse_key(0)).unwrap(), 1, "wh").unwrap();
        assert_eq!(wh[0], "100");
        // Idempotent: replaying commit is a no-op.
        call(&mut chain, &id, &mut rng, "commit", &["r1"]).unwrap();
        let wh = fields(&get(&chain, &warehouse_key(0)).unwrap(), 1, "wh").unwrap();
        assert_eq!(wh[0], "100");
        // A late prepare after the terminal marker is fenced.
        assert!(call(
            &mut chain,
            &id,
            &mut rng,
            "prepare_pay_home",
            &["r1", "0", "2", "5"],
        )
        .is_err());

        call(
            &mut chain,
            &id,
            &mut rng,
            "prepare_stock",
            &["r2", "0", "4", "3"],
        )
        .unwrap();
        call(&mut chain, &id, &mut rng, "abort", &["r2"]).unwrap();
        let stock = fields(&get(&chain, &stock_key(0, 4)).unwrap(), 4, "stock").unwrap();
        assert_eq!(stock[1], "0", "aborted leg left no trace");
        assert_eq!(get(&chain, &tfin_key("r2")), Some(vec![0]));
        // Presumed abort: aborting an unknown request just fences it.
        call(&mut chain, &id, &mut rng, "abort", &["r9"]).unwrap();
        assert_eq!(get(&chain, &tfin_key("r9")), Some(vec![0]));
    }

    #[test]
    fn cross_warehouse_new_order_splits_stock_between_legs() {
        let (mut chain, id, mut rng) = tpcc_chain();
        populate(&mut chain, &id, &mut rng);
        call(&mut chain, &id, &mut rng, "load_warehouse", &["1", "4"]).unwrap();
        call(&mut chain, &id, &mut rng, "load_stock", &["1", "0", "32"]).unwrap();

        // Home leg: one home line, one remote line (supply_w = 1).
        call(
            &mut chain,
            &id,
            &mut rng,
            "prepare_no_home",
            &["r5", "0", "2", "1", "3:0:2;7:1:4", "900"],
        )
        .unwrap();
        call(
            &mut chain,
            &id,
            &mut rng,
            "prepare_stock",
            &["r5", "1", "7", "4"],
        )
        .unwrap();
        call(&mut chain, &id, &mut rng, "commit", &["r5"]).unwrap();

        // Home stock moved only for the home-supplied line…
        let home = fields(&get(&chain, &stock_key(0, 3)).unwrap(), 4, "stock").unwrap();
        assert_eq!(home[1], "2");
        let untouched = fields(&get(&chain, &stock_key(0, 7)).unwrap(), 4, "stock").unwrap();
        assert_eq!(untouched[1], "0");
        // …and the remote leg covered warehouse 1 with remote_cnt bumped.
        let remote = fields(&get(&chain, &stock_key(1, 7)).unwrap(), 4, "stock").unwrap();
        assert_eq!(remote[1], "4");
        assert_eq!(remote[3], "1");
        // Both order lines exist on the home warehouse.
        assert!(get(&chain, &order_line_key(0, 2, 1, 0)).is_some());
        assert!(get(&chain, &order_line_key(0, 2, 1, 1)).is_some());
    }
}

//! Viewing-key confidential state, Secret Network style: per-scope
//! entries encrypted under HKDF-derived viewing keys, with grant/revoke
//! gated by a Datalog authorization policy.
//!
//! The design mirrors the CosmWasm `viewing_key` idiom: a *viewing key*
//! is a capability string handed to a user out of band; the contract
//! stores only its hash, and a query presents the key, which is checked
//! against the stored hash before any plaintext leaves the store. Here
//! the key doubles as the actual decryption key for the scope's
//! entries, derived as `HKDF(master, user, scope ‖ generation)` — so
//! revocation is a *generation bump* plus re-encryption, exactly the
//! key-rotation move LedgerView's revocable views make (§4.2), and an
//! old key is cryptographically dead, not just policy-dead.
//!
//! Authorization layers a Datalog program over the raw grants, the same
//! engine the predicate machinery uses:
//!
//! ```text
//! can_read(U, S) :- grant(U, S), role(U, "auditor").
//! can_read(U, S) :- delegate(V, U), can_read(V, S).
//! ```
//!
//! A grant without the auditor role (directly or by delegation) denies
//! with [`Denial::PolicyDenied`] — possession of a key is necessary but
//! not sufficient. Every refusal is typed so callers (and the soundness
//! tests) can assert the *reason*, not just the absence of plaintext.

use std::collections::{BTreeMap, BTreeSet};

use ledgerview_crypto::rng::seeded;
use ledgerview_crypto::sha256::sha256;
use ledgerview_crypto::{aead, hkdf};
use ledgerview_datalog::{Atom, Database, Program, Rule, Term, Value};

/// Why a read was refused. Typed, so soundness checks can distinguish
/// "never granted" from "had a key that no longer works".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Denial {
    /// No grant for this user and scope was ever issued.
    NoGrant,
    /// A grant exists but the presented key does not hash to it.
    BadKey,
    /// The grant was revoked (the scope's keys have rotated since).
    Revoked,
    /// Grant and key are fine, but the Datalog policy does not derive
    /// `can_read(user, scope)`.
    PolicyDenied,
    /// Authenticated decryption failed (tampered ciphertext).
    Corrupt,
    /// No such entry in the scope.
    NotFound,
}

impl Denial {
    /// Metric label for the denial reason.
    pub fn label(&self) -> &'static str {
        match self {
            Denial::NoGrant => "no_grant",
            Denial::BadKey => "bad_key",
            Denial::Revoked => "revoked",
            Denial::PolicyDenied => "policy",
            Denial::Corrupt => "corrupt",
            Denial::NotFound => "not_found",
        }
    }
}

/// A per-user, per-scope viewing key (32 bytes, HKDF-derived).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewingKey(pub [u8; 32]);

/// The confidential store: encrypted entries grouped into scopes (one
/// scope per TPC-C warehouse in the workload), viewing-key grants, and
/// the Datalog policy.
pub struct ConfidentialStore {
    master: [u8; 32],
    seal_seed: u64,
    /// scope → key → ciphertext under the scope's current generation.
    entries: BTreeMap<String, BTreeMap<String, Vec<u8>>>,
    /// scope → key-rotation generation.
    generations: BTreeMap<String, u64>,
    /// (user, scope) → sha256(viewing key) at the grant's generation.
    grants: BTreeMap<(String, String), [u8; 32]>,
    /// (user, scope) pairs whose grant was revoked.
    revoked: BTreeSet<(String, String)>,
    /// Extensional facts: `role(user, role)`, `grant(user, scope)`,
    /// `delegate(from, to)`.
    facts: Database,
    policy: Program,
}

fn scope_info(scope: &str, generation: u64) -> Vec<u8> {
    let mut info = scope.as_bytes().to_vec();
    info.extend_from_slice(&generation.to_be_bytes());
    info
}

impl ConfidentialStore {
    /// An empty store with the given master secret seed.
    pub fn new(seed: u64) -> ConfidentialStore {
        let master =
            hkdf::derive::<32>(b"lv-workload-confidential", &seed.to_be_bytes(), b"master");
        let can_read = |terms: Vec<Term>| Atom::new("can_read", terms);
        let policy = Program::new(vec![
            // can_read(U, S) :- grant(U, S), role(U, "auditor").
            Rule::new(
                can_read(vec![Term::var("U"), Term::var("S")]),
                vec![
                    Atom::new("grant", vec![Term::var("U"), Term::var("S")]),
                    Atom::new(
                        "role",
                        vec![Term::var("U"), Term::constant(Value::str("auditor"))],
                    ),
                ],
            ),
            // can_read(U, S) :- delegate(V, U), can_read(V, S).
            Rule::new(
                can_read(vec![Term::var("U"), Term::var("S")]),
                vec![
                    Atom::new("delegate", vec![Term::var("V"), Term::var("U")]),
                    Atom::new("can_read", vec![Term::var("V"), Term::var("S")]),
                ],
            ),
        ]);
        ConfidentialStore {
            master,
            seal_seed: seed ^ 0x5EA1_5EA1_5EA1_5EA1,
            entries: BTreeMap::new(),
            generations: BTreeMap::new(),
            grants: BTreeMap::new(),
            revoked: BTreeSet::new(),
            facts: Database::new(),
            policy,
        }
    }

    fn scope_key(&self, scope: &str, generation: u64) -> [u8; 32] {
        hkdf::derive::<32>(
            &self.master,
            scope.as_bytes(),
            &scope_info(scope, generation),
        )
    }

    /// Record a fact `role(user, role)`.
    pub fn assign_role(&mut self, user: &str, role: &str) {
        self.facts
            .insert("role", vec![Value::str(user), Value::str(role)]);
    }

    /// Record a delegation `delegate(from, to)`: `to` reads whatever
    /// `from` can (transitively, per the recursive policy rule).
    pub fn delegate(&mut self, from: &str, to: &str) {
        self.facts
            .insert("delegate", vec![Value::str(from), Value::str(to)]);
    }

    /// Encrypt `plaintext` into `scope` under the scope's current
    /// generation key, bound to the entry key as associated data.
    pub fn put(&mut self, scope: &str, key: &str, plaintext: &[u8]) {
        let generation = *self.generations.entry(scope.to_string()).or_insert(0);
        let sk = self.scope_key(scope, generation);
        let mut rng = seeded(
            self.seal_seed ^ ledgerview_gateway::keydist::mix64(key.len() as u64 ^ generation),
        );
        let ct = aead::seal_sym_aad(&sk, &mut rng, plaintext, key.as_bytes());
        self.entries
            .entry(scope.to_string())
            .or_default()
            .insert(key.to_string(), ct);
    }

    /// Grant `user` a viewing key for `scope`: records the Datalog fact
    /// `grant(user, scope)`, stores the key's hash, and returns the key.
    /// The caller decides (and the policy enforces) whether the user's
    /// roles actually let the key be used.
    pub fn grant(&mut self, user: &str, scope: &str) -> ViewingKey {
        let generation = *self.generations.entry(scope.to_string()).or_insert(0);
        let vk = ViewingKey(self.scope_key(scope, generation));
        self.grants
            .insert((user.to_string(), scope.to_string()), sha256(&vk.0).0);
        self.revoked.remove(&(user.to_string(), scope.to_string()));
        self.facts
            .insert("grant", vec![Value::str(user), Value::str(scope)]);
        vk
    }

    /// Revoke `user`'s grant on `scope`: bump the scope generation,
    /// re-encrypt every entry under the new key, and refresh the
    /// surviving members' grants. The revoked user's key is dead at the
    /// crypto layer, not just the policy layer.
    pub fn revoke(&mut self, user: &str, scope: &str) {
        let pair = (user.to_string(), scope.to_string());
        if self.grants.remove(&pair).is_none() {
            return;
        }
        self.revoked.insert(pair);

        let old_gen = *self.generations.get(scope).unwrap_or(&0);
        let new_gen = old_gen + 1;
        let old_key = self.scope_key(scope, old_gen);
        let new_key = self.scope_key(scope, new_gen);
        if let Some(entries) = self.entries.get_mut(scope) {
            for (key, ct) in entries.iter_mut() {
                let pt = aead::open_sym_aad(&old_key, ct, key.as_bytes())
                    .expect("store-internal ciphertext decrypts under its own generation");
                let mut rng = seeded(
                    self.seal_seed ^ ledgerview_gateway::keydist::mix64(key.len() as u64 ^ new_gen),
                );
                *ct = aead::seal_sym_aad(&new_key, &mut rng, &pt, key.as_bytes());
            }
        }
        self.generations.insert(scope.to_string(), new_gen);

        // Surviving members of the scope get the rotated key hash (their
        // callers re-fetch via `grant`, which also re-inserts the fact).
        let survivors: Vec<String> = self
            .grants
            .keys()
            .filter(|(_, s)| s == scope)
            .map(|(u, _)| u.clone())
            .collect();
        for u in survivors {
            let vk = ViewingKey(new_key);
            self.grants.insert((u, scope.to_string()), sha256(&vk.0).0);
        }
    }

    /// Whether the policy derives `can_read(user, scope)` from the
    /// current facts.
    fn policy_allows(&self, user: &str, scope: &str) -> bool {
        match self.policy.evaluate(&self.facts) {
            Ok(derived) => derived.contains("can_read", &[Value::str(user), Value::str(scope)]),
            Err(_) => false,
        }
    }

    /// Read one entry with a viewing key. Checks, in order: a live grant
    /// exists (else [`Denial::Revoked`] / [`Denial::NoGrant`]), the key
    /// hashes to the granted one (else [`Denial::BadKey`]), the Datalog
    /// policy derives access (else [`Denial::PolicyDenied`]) — and only
    /// then decrypts.
    pub fn read(
        &self,
        user: &str,
        vk: &ViewingKey,
        scope: &str,
        key: &str,
    ) -> Result<Vec<u8>, Denial> {
        let pair = (user.to_string(), scope.to_string());
        let Some(expected_hash) = self.grants.get(&pair) else {
            return Err(if self.revoked.contains(&pair) {
                Denial::Revoked
            } else {
                Denial::NoGrant
            });
        };
        if &sha256(&vk.0).0 != expected_hash {
            return Err(Denial::BadKey);
        }
        if !self.policy_allows(user, scope) {
            return Err(Denial::PolicyDenied);
        }
        let ct = self
            .entries
            .get(scope)
            .and_then(|m| m.get(key))
            .ok_or(Denial::NotFound)?;
        aead::open_sym_aad(&vk.0, ct, key.as_bytes()).map_err(|_| Denial::Corrupt)
    }

    /// Number of entries stored under `scope`.
    pub fn scope_len(&self, scope: &str) -> usize {
        self.entries.get(scope).map(BTreeMap::len).unwrap_or(0)
    }

    /// The stored ciphertext of `scope`/`key`, if present — what an
    /// adversary with ledger access (but no viewing key) sees. Exposed
    /// so differential tests can pin seal determinism.
    pub fn ciphertext(&self, scope: &str, key: &str) -> Option<&[u8]> {
        self.entries
            .get(scope)
            .and_then(|m| m.get(key))
            .map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_entry() -> ConfidentialStore {
        let mut s = ConfidentialStore::new(42);
        s.put("w0", "cust~01~0003", b"balance=-250,ytd=250");
        s.put("w1", "cust~00~0001", b"balance=10");
        s
    }

    #[test]
    fn granted_auditor_decrypts_everyone_else_gets_typed_denials() {
        let mut s = store_with_entry();
        s.assign_role("alice", "auditor");
        let vk = s.grant("alice", "w0");
        assert_eq!(
            s.read("alice", &vk, "w0", "cust~01~0003").unwrap(),
            b"balance=-250,ytd=250".to_vec()
        );
        // Same key, wrong scope: no grant there.
        assert_eq!(
            s.read("alice", &vk, "w1", "cust~00~0001"),
            Err(Denial::NoGrant)
        );
        // Unknown user.
        assert_eq!(
            s.read("mallory", &vk, "w0", "cust~01~0003"),
            Err(Denial::NoGrant)
        );
        // Granted but wrong role: the policy, not the crypto, denies.
        s.assign_role("bob", "viewer");
        let bob_vk = s.grant("bob", "w0");
        assert_eq!(
            s.read("bob", &bob_vk, "w0", "cust~01~0003"),
            Err(Denial::PolicyDenied)
        );
        // A fabricated key is caught by the hash check.
        let fake = ViewingKey([7; 32]);
        assert_eq!(
            s.read("alice", &fake, "w0", "cust~01~0003"),
            Err(Denial::BadKey)
        );
        // Missing entry is its own answer.
        assert_eq!(s.read("alice", &vk, "w0", "nope"), Err(Denial::NotFound));
    }

    #[test]
    fn revocation_rotates_keys_and_spares_survivors() {
        let mut s = store_with_entry();
        s.assign_role("alice", "auditor");
        s.assign_role("carol", "auditor");
        let alice_vk = s.grant("alice", "w0");
        s.grant("carol", "w0");

        s.revoke("alice", "w0");
        assert_eq!(
            s.read("alice", &alice_vk, "w0", "cust~01~0003"),
            Err(Denial::Revoked)
        );
        // Carol re-fetches her key post-rotation and still reads.
        let carol_vk = s.grant("carol", "w0");
        assert_ne!(carol_vk, alice_vk, "rotation changed the scope key");
        assert!(s.read("carol", &carol_vk, "w0", "cust~01~0003").is_ok());
        // Re-granting alice restores access under the new generation.
        let alice2 = s.grant("alice", "w0");
        assert!(s.read("alice", &alice2, "w0", "cust~01~0003").is_ok());
    }

    #[test]
    fn delegation_chains_through_the_datalog_policy() {
        let mut s = store_with_entry();
        s.assign_role("alice", "auditor");
        s.grant("alice", "w0");
        // Dave holds a valid key via a grant, but no role. Delegation
        // from alice (who can read) is what turns the key on.
        let dave_vk = s.grant("dave", "w0");
        assert_eq!(
            s.read("dave", &dave_vk, "w0", "cust~01~0003"),
            Err(Denial::PolicyDenied)
        );
        s.delegate("alice", "dave");
        assert!(s.read("dave", &dave_vk, "w0", "cust~01~0003").is_ok());
    }

    #[test]
    fn same_seed_same_ciphertexts() {
        let a = store_with_entry();
        let b = store_with_entry();
        assert_eq!(a.entries, b.entries);
    }
}

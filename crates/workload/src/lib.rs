//! Realistic scenario workloads over the LedgerView stack.
//!
//! Two scenario families share one deterministic harness:
//!
//! * **TPC-C-class multi-warehouse OLTP** — warehouses, districts,
//!   customers, and stock laid out under `~`-separated composite keys
//!   whose routing prefix pins each warehouse to a shard ([`schema`]);
//!   the five classic transaction profiles at their 45/43/4/4/4 shares
//!   ([`mix`]) implemented as a fabric-sim chaincode with 2PC
//!   participant legs for cross-warehouse work ([`contract`]); a driver
//!   that pushes the deck through the sharded deployment's admission,
//!   replication, and cross-shard 2PC pipeline — optionally under a
//!   fault schedule — while sweeping TPC-C's consistency-style
//!   invariants on live committed state ([`driver`], [`invariants`]).
//! * **Access-controlled reads over the workload's data** — the
//!   LedgerView per-warehouse views (each warehouse org reads only its
//!   own customers' payment records, enforced and audited in
//!   [`views`]), and Secret-Network-style viewing keys: per-user
//!   HKDF-derived keys over encrypted per-scope entries, gated by a
//!   Datalog authorization policy with delegation, where revocation
//!   rotates the scope key ([`confidential`]).
//!
//! Everything is a pure function of the run's seed and shape: same
//! [`driver::TpccConfig`] ⇒ bit-identical [`driver::TpccReport`],
//! including latency percentiles, state roots, and every audit counter —
//! the property `tests/workload_equivalence.rs` pins down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confidential;
pub mod contract;
pub mod driver;
pub mod invariants;
mod metrics;
pub mod mix;
pub mod schema;
pub mod views;

// The schema's deterministic pricing reuses the gateway's SplitMix64
// finalizer so the whole stack shares one hash idiom.
pub use ledgerview_gateway::keydist::mix64;

pub use confidential::{ConfidentialStore, Denial, ViewingKey};
pub use contract::TpccContract;
pub use driver::{run, ConfidentialOutcome, ProfileStats, TpccConfig, TpccReport};
pub use mix::{deal, ParamGen, TxProfile};
pub use views::{ViewLayer, ViewsOutcome};

//! The TPC-C-class schema: composite keys, record encodings, and the
//! pure value functions shared by the contract and the invariant
//! checker.
//!
//! Every key starts with the routing prefix `wh~w<W>` (the first two
//! `~`-separated components, see `ledgerview_gateway::shardmap`), so one
//! shard-map pin per warehouse places a warehouse's entire row set —
//! districts, customers, stock, orders — on one shard channel. All
//! record values are ASCII comma-joined decimal fields: trivially
//! diffable in state dumps and stable across encoders.
//!
//! The scale constants are deliberately small (a simulated cluster
//! orders hundreds of transactions per virtual second, not tens of
//! thousands); ratios between them mirror TPC-C's shape, not its
//! magnitudes.

use fabric_sim::error::FabricError;

/// Districts per warehouse (TPC-C: 10).
pub const DISTRICTS: u64 = 4;
/// Customers per district (TPC-C: 3000).
pub const CUSTOMERS: u64 = 8;
/// Stock items per warehouse (TPC-C: 100k item catalog).
pub const ITEMS: u64 = 32;
/// Initial stock quantity per item.
pub const INITIAL_STOCK: u64 = 50;

/// Chaincode name of the TPC-C contract (deployed on every shard via
/// `ShardConfig::workloads`).
pub const TPCC_CC: &str = "wl.tpcc";

/// `wh~w<W>~meta` — the warehouse row (fields: `ytd`). Also the routing
/// key for admission and shard resolution of anything touching `w`.
pub fn warehouse_key(w: u64) -> String {
    format!("wh~w{w}~meta")
}

/// `wh~w<W>~dist~<DD>` — a district row (fields: `next_o_id,ytd`).
pub fn district_key(w: u64, d: u64) -> String {
    format!("wh~w{w}~dist~{d:02}")
}

/// `wh~w<W>~cust~<DD>~<CCCC>` — a customer row (fields:
/// `balance,ytd_payment,payment_cnt,delivery_cnt`; balance is signed).
pub fn customer_key(w: u64, d: u64, c: u64) -> String {
    format!("wh~w{w}~cust~{d:02}~{c:04}")
}

/// `wh~w<W>~stock~<IIII>` — a stock row (fields:
/// `qty,ytd,order_cnt,remote_cnt`).
pub fn stock_key(w: u64, i: u64) -> String {
    format!("wh~w{w}~stock~{i:04}")
}

/// `wh~w<W>~ord~<DD>~<OOOOOOOO>` — an order row (fields:
/// `c_id,entry_us,carrier,ol_cnt`; carrier 0 = undelivered).
pub fn order_key(w: u64, d: u64, o: u64) -> String {
    format!("wh~w{w}~ord~{d:02}~{o:08}")
}

/// `wh~w<W>~no~<DD>~<OOOOOOOO>` — a new-order marker, deleted on
/// delivery.
pub fn new_order_key(w: u64, d: u64, o: u64) -> String {
    format!("wh~w{w}~no~{d:02}~{o:08}")
}

/// `wh~w<W>~ol~<DD>~<OOOOOOOO>~<LL>` — an order line (fields:
/// `i_id,supply_w,qty,amount`).
pub fn order_line_key(w: u64, d: u64, o: u64, l: u64) -> String {
    format!("wh~w{w}~ol~{d:02}~{o:08}~{l:02}")
}

/// `wh~w<W>~audit~<SSSSSS>` — a view-maintenance audit row, written by
/// `audit_flush` when per-warehouse views are enabled.
pub fn audit_key(w: u64, seq: u64) -> String {
    format!("wh~w{w}~audit~{seq:06}")
}

/// `tpend~<req>~…` — a prepared-but-undecided 2PC leg on this shard.
/// Disjoint from the crosschain contracts' `pend~` namespace, so the
/// transfer auditors never see TPC-C residue.
pub fn tpend_prefix(req: &str) -> String {
    format!("tpend~{req}~")
}

/// `tfin~<req>` — the idempotent terminal marker (`[1]` committed,
/// `[0]` aborted).
pub fn tfin_key(req: &str) -> String {
    format!("tfin~{req}")
}

/// Deterministic catalog price of item `i`, in cents: a pure function,
/// so the contract (computing order-line amounts) and the invariant
/// checker (recomputing them from order lines) can never disagree.
pub fn item_price(i: u64) -> u64 {
    100 + super::mix64(i ^ 0xA5A5_5A5A_7C9D_0101) % 900
}

/// Parse an ASCII decimal `u64` field.
pub fn parse_u64(s: &str, what: &str) -> Result<u64, FabricError> {
    s.parse::<u64>()
        .map_err(|_| FabricError::Malformed(format!("{what}: bad u64 {s:?}")))
}

/// Parse an ASCII decimal `i64` field.
pub fn parse_i64(s: &str, what: &str) -> Result<i64, FabricError> {
    s.parse::<i64>()
        .map_err(|_| FabricError::Malformed(format!("{what}: bad i64 {s:?}")))
}

/// Split a comma-joined record into exactly `n` fields.
pub fn fields(value: &[u8], n: usize, what: &str) -> Result<Vec<String>, FabricError> {
    let s = std::str::from_utf8(value)
        .map_err(|_| FabricError::Malformed(format!("{what}: not UTF-8")))?;
    let parts: Vec<String> = s.split(',').map(str::to_string).collect();
    if parts.len() != n {
        return Err(FabricError::Malformed(format!(
            "{what}: expected {n} fields, got {}",
            parts.len()
        )));
    }
    Ok(parts)
}

/// One requested order line: item, supplying warehouse, quantity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrderLine {
    /// Catalog item id.
    pub item: u64,
    /// Supplying warehouse (equals the home warehouse unless remote).
    pub supply_w: u64,
    /// Quantity ordered.
    pub qty: u64,
}

/// Encode order lines as the wire string `i:sw:q;i:sw:q;…`.
pub fn encode_lines(lines: &[OrderLine]) -> String {
    lines
        .iter()
        .map(|l| format!("{}:{}:{}", l.item, l.supply_w, l.qty))
        .collect::<Vec<_>>()
        .join(";")
}

/// Decode the order-line wire string.
pub fn decode_lines(s: &str) -> Result<Vec<OrderLine>, FabricError> {
    s.split(';')
        .filter(|part| !part.is_empty())
        .map(|part| {
            let mut it = part.split(':');
            let (Some(i), Some(sw), Some(q), None) = (it.next(), it.next(), it.next(), it.next())
            else {
                return Err(FabricError::Malformed(format!("bad order line {part:?}")));
            };
            Ok(OrderLine {
                item: parse_u64(i, "line item")?,
                supply_w: parse_u64(sw, "line supply_w")?,
                qty: parse_u64(q, "line qty")?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_share_the_warehouse_routing_prefix() {
        for key in [
            warehouse_key(3),
            district_key(3, 1),
            customer_key(3, 1, 7),
            stock_key(3, 12),
            order_key(3, 1, 42),
            new_order_key(3, 1, 42),
            order_line_key(3, 1, 42, 2),
            audit_key(3, 9),
        ] {
            assert_eq!(ledgerview_gateway::routing_prefix(&key), "wh~w3");
        }
        // Different warehouses route independently.
        assert_ne!(
            ledgerview_gateway::routing_prefix(&warehouse_key(1)),
            ledgerview_gateway::routing_prefix(&warehouse_key(2))
        );
    }

    #[test]
    fn line_roundtrip() {
        let lines = vec![
            OrderLine {
                item: 3,
                supply_w: 0,
                qty: 5,
            },
            OrderLine {
                item: 17,
                supply_w: 2,
                qty: 1,
            },
        ];
        assert_eq!(decode_lines(&encode_lines(&lines)).unwrap(), lines);
        assert!(decode_lines("1:2").is_err());
    }

    #[test]
    fn prices_are_stable_and_bounded() {
        for i in 0..ITEMS {
            let p = item_price(i);
            assert!((100..1000).contains(&p));
            assert_eq!(p, item_price(i));
        }
    }
}

//! Per-warehouse LedgerView views over the TPC-C payment stream.
//!
//! Each warehouse is an organization that may only see its *own*
//! customers' payment records. A side chain (two orgs, cheap majority
//! endorsement — the access control under test lives in the view layer,
//! not the endorsement policy) carries the four LedgerView contracts;
//! one [`EncryptionBasedManager`] per warehouse owns a revocable view
//! `V_w{k}` selecting `warehouse == "w{k}"`. Committed payments from
//! the sharded run are mirrored in as concealed client transactions,
//! and the audit pass then proves the access discipline: every owner
//! reads its own rows back, every foreign reader gets
//! [`ViewError::AccessDenied`], and a revoked reader stays locked out.
//!
//! The layer is strictly downstream of the canonical run — it consumes
//! the committed payment stream and never feeds anything back — so
//! enabling it changes measured throughput (extra audit-flush load is
//! injected by the driver) but never the transaction outcomes.

use fabric_sim::endorsement::EndorsementPolicy;
use fabric_sim::identity::OrgId;
use fabric_sim::{FabricChain, Identity};
use ledgerview_core::contracts::{
    AccessContract, InvokeContract, TxListContract, ViewStorageContract, ACCESS_CC, INVOKE_CC,
    TX_LIST_CC, VIEW_STORAGE_CC,
};
use ledgerview_core::{
    AccessMode, AttrValue, ClientTransaction, EncryptionBasedManager, ViewError, ViewManager,
    ViewPredicate, ViewReader,
};
use ledgerview_crypto::keys::EncryptionKeyPair;
use ledgerview_crypto::rng::seeded;
use rand::rngs::StdRng;

/// What the view audit observed. The soundness acceptance is
/// `unauthorized_reads == 0` with `foreign_denials == warehouses`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ViewsOutcome {
    /// Payments mirrored into per-warehouse views.
    pub mirrored: u64,
    /// Rows each warehouse owner read back from its own view.
    pub owner_reads_ok: u64,
    /// Foreign-view queries correctly refused with `AccessDenied`.
    pub foreign_denials: u64,
    /// Foreign-view queries that *succeeded* — must stay zero.
    pub unauthorized_reads: u64,
    /// Post-revocation queries correctly refused.
    pub revoked_denials: u64,
}

/// The per-warehouse view layer: side chain, one manager and one view
/// per warehouse.
pub struct ViewLayer {
    chain: FabricChain,
    rng: StdRng,
    client: Identity,
    managers: Vec<EncryptionBasedManager>,
    outcome: ViewsOutcome,
}

fn view_name(w: u64) -> String {
    format!("V_w{w}")
}

impl ViewLayer {
    /// Build the side chain, deploy the four LedgerView contracts, and
    /// create one revocable per-warehouse view selecting that
    /// warehouse's attribute.
    pub fn new(warehouses: u64, seed: u64) -> ViewLayer {
        let mut rng = seeded(seed ^ 0x7669_6577_5f6c_6179); // "view_lay"
        let mut chain = FabricChain::new(&["Org1", "Org2"], &mut rng);
        let policy = EndorsementPolicy::MajorityOf(chain.org_ids());
        chain.deploy(INVOKE_CC, Box::new(InvokeContract), policy.clone());
        chain.deploy(
            VIEW_STORAGE_CC,
            Box::new(ViewStorageContract),
            policy.clone(),
        );
        chain.deploy(TX_LIST_CC, Box::new(TxListContract), policy.clone());
        chain.deploy(ACCESS_CC, Box::new(AccessContract), policy);
        let client = chain
            .enroll(&OrgId::new("Org2"), "driver", &mut rng)
            .unwrap();
        let mut managers = Vec::with_capacity(warehouses as usize);
        for w in 0..warehouses {
            let owner = chain
                .enroll(&OrgId::new("Org1"), &format!("owner-w{w}"), &mut rng)
                .unwrap();
            let mut mgr: EncryptionBasedManager = ViewManager::new(owner, true);
            mgr.create_view(
                &mut chain,
                view_name(w),
                ViewPredicate::attr_eq("warehouse", format!("w{w}")),
                AccessMode::Revocable,
                &mut rng,
            )
            .unwrap();
            managers.push(mgr);
        }
        ViewLayer {
            chain,
            rng,
            client,
            managers,
            outcome: ViewsOutcome::default(),
        }
    }

    /// Mirror one committed payment: a concealed transaction routed
    /// through the *customer's* warehouse manager, so it lands in (at
    /// most) that warehouse's view.
    pub fn mirror_payment(&mut self, cw: u64, cd: u64, c: u64, from_w: u64, amount: u64) {
        let Some(mgr) = self.managers.get_mut(cw as usize) else {
            return;
        };
        let tx = ClientTransaction::new(
            vec![
                ("warehouse", AttrValue::str(format!("w{cw}"))),
                ("district", AttrValue::int(cd as i64)),
                ("customer", AttrValue::int(c as i64)),
            ],
            format!("pay|{amount}|from=w{from_w}").into_bytes(),
        );
        mgr.invoke_with_secret(&mut self.chain, &self.client, &tx, &mut self.rng)
            .unwrap();
        self.outcome.mirrored += 1;
    }

    /// Run the access audit and consume the layer. For every warehouse:
    /// the owner's granted reader opens its own view (counted rows), a
    /// *foreign* reader — granted only on the next warehouse's view —
    /// is refused, and a revoked reader is refused again.
    pub fn audit(mut self) -> ViewsOutcome {
        let warehouses = self.managers.len();
        for mgr in &mut self.managers {
            mgr.flush(&mut self.chain, &mut self.rng).unwrap();
        }

        // One reader per warehouse, granted only on its own view.
        let mut readers: Vec<ViewReader> = Vec::with_capacity(warehouses);
        for w in 0..warehouses {
            let kp = EncryptionKeyPair::generate(&mut self.rng);
            self.managers[w]
                .grant_access(
                    &mut self.chain,
                    &view_name(w as u64),
                    kp.public(),
                    &mut self.rng,
                )
                .unwrap();
            let mut reader = ViewReader::new(kp);
            reader
                .obtain_view_key(&self.chain, &view_name(w as u64))
                .unwrap();
            readers.push(reader);
        }

        for w in 0..warehouses {
            let own_view = view_name(w as u64);
            // Owner's reader sees its own rows.
            let resp = self.managers[w]
                .query_view(&own_view, &readers[w].public(), None, &mut self.rng)
                .unwrap();
            let revealed = readers[w]
                .open_response(&self.chain, &own_view, &resp)
                .unwrap();
            for r in &revealed {
                assert_eq!(
                    r.non_secret.get("warehouse"),
                    Some(&AttrValue::str(format!("w{w}"))),
                    "view {own_view} leaked a foreign row"
                );
            }
            self.outcome.owner_reads_ok += revealed.len() as u64;

            // A foreign org's reader (granted on a different view) is
            // refused on this one.
            if warehouses > 1 {
                let foreign = (w + 1) % warehouses;
                match self.managers[w].query_view(
                    &own_view,
                    &readers[foreign].public(),
                    None,
                    &mut self.rng,
                ) {
                    Err(ViewError::AccessDenied(_)) => self.outcome.foreign_denials += 1,
                    Ok(_) => self.outcome.unauthorized_reads += 1,
                    Err(e) => panic!("foreign query on {own_view}: unexpected {e}"),
                }
            }

            // Revocation closes the owner's reader out too.
            self.managers[w]
                .revoke_access(
                    &mut self.chain,
                    &own_view,
                    &readers[w].public(),
                    &mut self.rng,
                )
                .unwrap();
            match self.managers[w].query_view(&own_view, &readers[w].public(), None, &mut self.rng)
            {
                Err(ViewError::AccessDenied(_)) => self.outcome.revoked_denials += 1,
                Ok(_) => self.outcome.unauthorized_reads += 1,
                Err(e) => panic!("revoked query on {own_view}: unexpected {e}"),
            }
        }
        self.outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owners_read_their_rows_and_nobody_elses() {
        let mut layer = ViewLayer::new(3, 9);
        // Payments: two for w0's customers, one for w1, none for w2. The
        // third is a cross-warehouse payment taken at w2 for w1's customer
        // — it must land in V_w1, not V_w2.
        layer.mirror_payment(0, 1, 3, 0, 500);
        layer.mirror_payment(0, 2, 4, 1, 750);
        layer.mirror_payment(1, 0, 0, 2, 900);
        let out = layer.audit();
        assert_eq!(out.mirrored, 3);
        assert_eq!(out.owner_reads_ok, 3, "2 + 1 + 0 rows across owners");
        assert_eq!(out.foreign_denials, 3);
        assert_eq!(out.revoked_denials, 3);
        assert_eq!(out.unauthorized_reads, 0);
    }

    #[test]
    fn deterministic_outcome() {
        let run = || {
            let mut layer = ViewLayer::new(2, 77);
            layer.mirror_payment(1, 3, 7, 0, 123);
            layer.audit()
        };
        assert_eq!(run(), run());
    }
}

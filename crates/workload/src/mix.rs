//! The transaction mix: profile quotas, deterministic shuffling, and
//! per-transaction parameter generation.
//!
//! Everything is a pure function of `(seed, index)` via the SplitMix64
//! finalizer shared with the gateway drivers — no RNG object threads
//! through the harness, so the schedule is identical regardless of how
//! the run is paced or which other subsystems draw randomness.
//!
//! Profile shares follow TPC-C's card deck: ~45% NewOrder, ~43% Payment,
//! 4% OrderStatus, 4% Delivery, 4% StockLevel. The deck is dealt as
//! *exact* quotas shuffled deterministically (Fisher–Yates over the
//! hash stream), so a run's realized mix never drifts from the target —
//! the bench asserts it to ±2 points anyway, catching quota bugs.

use ledgerview_gateway::keydist::{mix64, unit, KeyDistribution};

use crate::schema::{encode_lines, OrderLine, CUSTOMERS, DISTRICTS, ITEMS};

/// The five TPC-C transaction profiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TxProfile {
    /// Order entry: the throughput-counted profile (tpmC).
    NewOrder,
    /// Customer payment (15% to a remote customer when multi-warehouse).
    Payment,
    /// Read-only customer status.
    OrderStatus,
    /// Deliver the oldest undelivered order in every district.
    Delivery,
    /// Read-only low-stock count over a district's catalog slice.
    StockLevel,
}

impl TxProfile {
    /// All profiles, in deck order.
    pub const ALL: [TxProfile; 5] = [
        TxProfile::NewOrder,
        TxProfile::Payment,
        TxProfile::OrderStatus,
        TxProfile::Delivery,
        TxProfile::StockLevel,
    ];

    /// Profile label for metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            TxProfile::NewOrder => "new_order",
            TxProfile::Payment => "payment",
            TxProfile::OrderStatus => "order_status",
            TxProfile::Delivery => "delivery",
            TxProfile::StockLevel => "stock_level",
        }
    }

    /// Target percentage of the mix.
    pub fn share(self) -> u64 {
        match self {
            TxProfile::NewOrder => 45,
            TxProfile::Payment => 43,
            TxProfile::OrderStatus | TxProfile::Delivery | TxProfile::StockLevel => 4,
        }
    }
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn h(seed: u64, i: u64, lane: u64) -> u64 {
    mix64(seed ^ i.wrapping_mul(GOLDEN) ^ (lane << 56))
}

/// Deal the deck: exactly `n` profiles at the target quotas (largest-
/// remainder apportionment, so the realized mix never drifts more than
/// one card from any target share), shuffled by a seed-derived
/// Fisher–Yates.
pub fn deal(seed: u64, n: usize) -> Vec<TxProfile> {
    let mut quotas: Vec<(TxProfile, u64, u64)> = TxProfile::ALL
        .iter()
        .map(|&p| {
            let exact = n as u64 * p.share();
            (p, exact / 100, exact % 100)
        })
        .collect();
    let dealt: u64 = quotas.iter().map(|&(_, q, _)| q).sum();
    // Hand the remainder cards to the largest fractional parts (ties in
    // deck order), one each.
    let mut order: Vec<usize> = (0..quotas.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(quotas[i].2));
    for &i in order.iter().take(n.saturating_sub(dealt as usize)) {
        quotas[i].1 += 1;
    }
    let mut deck = Vec::with_capacity(n);
    for (p, q, _) in quotas {
        deck.extend(std::iter::repeat_n(p, q as usize));
    }
    deck.truncate(n);
    for i in (1..deck.len()).rev() {
        let j = (h(seed, i as u64, 0) % (i as u64 + 1)) as usize;
        deck.swap(i, j);
    }
    deck
}

/// Parameters of one NewOrder.
#[derive(Clone, Debug)]
pub struct NewOrderParams {
    /// Home warehouse.
    pub w: u64,
    /// District.
    pub d: u64,
    /// Customer.
    pub c: u64,
    /// Order lines (Zipf-skewed items; ~1% remote supply when W > 1).
    pub lines: Vec<OrderLine>,
}

impl NewOrderParams {
    /// The wire encoding of the order lines.
    pub fn lines_wire(&self) -> String {
        encode_lines(&self.lines)
    }

    /// Warehouses other than home that supply at least one line.
    pub fn remote_warehouses(&self) -> Vec<u64> {
        let mut ws: Vec<u64> = self
            .lines
            .iter()
            .filter(|l| l.supply_w != self.w)
            .map(|l| l.supply_w)
            .collect();
        ws.sort_unstable();
        ws.dedup();
        ws
    }
}

/// Parameters of one Payment.
#[derive(Clone, Copy, Debug)]
pub struct PaymentParams {
    /// Warehouse taking the payment.
    pub w: u64,
    /// District taking the payment.
    pub d: u64,
    /// Customer's warehouse (≠ `w` for ~15% when W > 1).
    pub cw: u64,
    /// Customer's district.
    pub cd: u64,
    /// Customer.
    pub c: u64,
    /// Amount in cents.
    pub amount: u64,
}

/// Generators for per-transaction parameters: two Zipf samplers (shared
/// with the gateway driver's key-skew machinery) plus the warehouse
/// count.
pub struct ParamGen {
    warehouses: u64,
    customers: KeyDistribution,
    items: KeyDistribution,
}

impl ParamGen {
    /// A generator over `warehouses` warehouses with TPC-C-ish skew:
    /// customers Zipf(1.0), items Zipf(0.9).
    pub fn new(warehouses: u64) -> ParamGen {
        ParamGen {
            warehouses: warehouses.max(1),
            customers: KeyDistribution::new(CUSTOMERS as usize, 1.0),
            items: KeyDistribution::new(ITEMS as usize, 0.9),
        }
    }

    fn warehouse(&self, x: u64) -> u64 {
        x % self.warehouses
    }

    /// A warehouse different from `home` (requires W > 1).
    fn other_warehouse(&self, home: u64, x: u64) -> u64 {
        let r = x % (self.warehouses - 1);
        if r >= home {
            r + 1
        } else {
            r
        }
    }

    /// NewOrder parameters for schedule slot `i`.
    pub fn new_order(&self, seed: u64, i: u64) -> NewOrderParams {
        let w = self.warehouse(h(seed, i, 1));
        let d = h(seed, i, 2) % DISTRICTS;
        let c = self.customers.sample_hash(h(seed, i, 3)) as u64;
        let n_lines = 2 + h(seed, i, 4) % 5; // 2..=6
        let lines = (0..n_lines)
            .map(|l| {
                let item = self.items.sample_hash(h(seed, i, 10 + l)) as u64;
                let remote = self.warehouses > 1 && unit(h(seed, i, 20 + l)) < 0.01;
                let supply_w = if remote {
                    self.other_warehouse(w, h(seed, i, 30 + l))
                } else {
                    w
                };
                OrderLine {
                    item,
                    supply_w,
                    qty: 1 + h(seed, i, 40 + l) % 10,
                }
            })
            .collect();
        NewOrderParams { w, d, c, lines }
    }

    /// Payment parameters for schedule slot `i`.
    pub fn payment(&self, seed: u64, i: u64) -> PaymentParams {
        let w = self.warehouse(h(seed, i, 1));
        let d = h(seed, i, 2) % DISTRICTS;
        let remote = self.warehouses > 1 && unit(h(seed, i, 5)) < 0.15;
        let cw = if remote {
            self.other_warehouse(w, h(seed, i, 6))
        } else {
            w
        };
        PaymentParams {
            w,
            d,
            cw,
            cd: h(seed, i, 7) % DISTRICTS,
            c: self.customers.sample_hash(h(seed, i, 3)) as u64,
            amount: 1 + h(seed, i, 8) % 4999,
        }
    }

    /// `(w, d, c)` for OrderStatus.
    pub fn order_status(&self, seed: u64, i: u64) -> (u64, u64, u64) {
        (
            self.warehouse(h(seed, i, 1)),
            h(seed, i, 2) % DISTRICTS,
            self.customers.sample_hash(h(seed, i, 3)) as u64,
        )
    }

    /// `(w, carrier)` for Delivery.
    pub fn delivery(&self, seed: u64, i: u64) -> (u64, u64) {
        (self.warehouse(h(seed, i, 1)), 1 + h(seed, i, 9) % 9)
    }

    /// `(w, d, threshold)` for StockLevel.
    pub fn stock_level(&self, seed: u64, i: u64) -> (u64, u64, u64) {
        (
            self.warehouse(h(seed, i, 1)),
            h(seed, i, 2) % DISTRICTS,
            10 + h(seed, i, 9) % 11, // 10..=20
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deal_hits_exact_quotas_and_is_deterministic() {
        let deck = deal(42, 600);
        assert_eq!(deck.len(), 600);
        let count = |p: TxProfile| deck.iter().filter(|&&q| q == p).count();
        assert_eq!(count(TxProfile::Payment), 258); // 43%
        assert_eq!(count(TxProfile::OrderStatus), 24); // 4%
        assert_eq!(count(TxProfile::Delivery), 24);
        assert_eq!(count(TxProfile::StockLevel), 24);
        assert_eq!(count(TxProfile::NewOrder), 600 - 258 - 72); // remainder
        assert_eq!(deck, deal(42, 600), "same seed, same deck");
        assert_ne!(deck, deal(43, 600), "different seed shuffles differently");
    }

    #[test]
    fn params_stay_in_range_and_reproduce() {
        let gen = ParamGen::new(4);
        for i in 0..200 {
            let no = gen.new_order(7, i);
            assert!(no.w < 4 && no.d < DISTRICTS && no.c < CUSTOMERS);
            assert!((2..=6).contains(&no.lines.len()));
            for l in &no.lines {
                assert!(l.item < ITEMS && l.supply_w < 4 && (1..=10).contains(&l.qty));
            }
            assert!(!no.remote_warehouses().contains(&no.w));
            let p = gen.payment(7, i);
            assert!(p.w < 4 && p.cw < 4 && p.c < CUSTOMERS);
            assert!((1..5000).contains(&p.amount));
        }
        assert_eq!(gen.new_order(7, 3).lines, gen.new_order(7, 3).lines);
    }

    #[test]
    fn single_warehouse_never_goes_remote() {
        let gen = ParamGen::new(1);
        for i in 0..300 {
            assert!(gen.new_order(1, i).remote_warehouses().is_empty());
            assert_eq!(gen.payment(1, i).cw, 0);
        }
    }

    #[test]
    fn multi_warehouse_produces_remote_payments() {
        let gen = ParamGen::new(8);
        let remote = (0..1000)
            .filter(|&i| {
                let p = gen.payment(9, i);
                p.cw != p.w
            })
            .count();
        // ~15% target; allow a generous band for a 1000-draw sample.
        assert!((80..=220).contains(&remote), "remote payments: {remote}");
    }
}

//! The TPC-C-class scenario driver: populate, run the five-profile mix
//! through the sharded deployment's admission/2PC pipeline, sweep the
//! consistency invariants (also mid-run and under faults), and layer the
//! per-warehouse views and viewing-key confidential reads on top.
//!
//! Everything downstream of the config is deterministic: the deck, the
//! parameters, the fault schedule, and the lock-step deployment are all
//! pure functions of `(seed, shape)`, so two runs of the same
//! [`TpccConfig`] produce bit-identical [`TpccReport`]s — the
//! differential test in `tests/workload_equivalence.rs` holds the harness
//! to exactly that.
//!
//! # Routing
//!
//! Warehouse `w`'s entire key range `wh~w{w}~…` is pinned to shard
//! `w mod shards`, so a transaction that touches one warehouse is a
//! single atomic transaction on one channel, and a transaction that
//! touches two warehouses on different shards runs the full 2PC protocol
//! (cross-warehouse Payment: home leg + customer leg; remote-item
//! NewOrder: home leg + one stock leg per remote `(warehouse, item)`).
//! Remote legs that happen to co-reside on the home shard collapse back
//! into the direct path — the router proves co-residency, the contract
//! exploits it.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use fabric_sim::chaincode::Chaincode;
use fabric_sim::statedb::VersionedState;
use ledgerview_cluster::Fault;
use ledgerview_shard::{OpLeg, OpSpec, ShardConfig, ShardError, ShardedDeployment, TransferStatus};
use ledgerview_simnet::SimTime;
use ledgerview_telemetry::Telemetry;

use crate::confidential::{ConfidentialStore, Denial, ViewingKey};
use crate::contract::TpccContract;
use crate::invariants;
use crate::metrics::WorkloadMetrics;
use crate::mix::{deal, ParamGen, TxProfile};
use crate::schema::{warehouse_key, CUSTOMERS, DISTRICTS, ITEMS, TPCC_CC};
use crate::views::{ViewLayer, ViewsOutcome};

/// Shape of one TPC-C scenario run.
#[derive(Clone, Debug)]
pub struct TpccConfig {
    /// Number of warehouses (each pinned to shard `w mod shards`).
    pub warehouses: u64,
    /// Number of shard channels.
    pub shards: usize,
    /// Master seed for the deck, parameters, and the deployment.
    pub seed: u64,
    /// Root directory for the shards' persistent stores.
    pub storage_root: PathBuf,
    /// Measured transactions (the deck size; population is extra).
    pub ops: usize,
    /// Open-loop interarrival gap between scheduled transactions.
    pub interarrival: SimTime,
    /// Enable the per-warehouse LedgerView layer: audit-flush load during
    /// the run, payment mirroring and the access audit after it.
    pub views: bool,
    /// Enable the fault schedule (leader kill, peer crash/restart,
    /// partition/heal) inside the measurement window.
    pub faults: bool,
}

impl TpccConfig {
    /// A run with the default deck (600 transactions at 5 ms spacing),
    /// views and faults off.
    pub fn new(
        storage_root: impl Into<PathBuf>,
        warehouses: u64,
        shards: usize,
        seed: u64,
    ) -> TpccConfig {
        TpccConfig {
            warehouses: warehouses.max(1),
            shards: shards.max(1),
            seed,
            storage_root: storage_root.into(),
            ops: 600,
            interarrival: SimTime::from_millis(5),
            views: false,
            faults: false,
        }
    }
}

/// Per-profile outcome counters and latency percentiles (virtual time,
/// admission to terminal state).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileStats {
    /// Transactions dealt for this profile.
    pub submitted: u64,
    /// Reached `Committed`.
    pub committed: u64,
    /// Aborted by the protocol or left unfinished.
    pub aborted: u64,
    /// Refused at admission.
    pub shed: u64,
    /// Median commit latency, microseconds of virtual time.
    pub p50_us: u64,
    /// 99th-percentile commit latency.
    pub p99_us: u64,
}

/// What the viewing-key confidential exercise observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConfidentialOutcome {
    /// Customer records ingested (encrypted) into the audited scope.
    pub entries: u64,
    /// Reads that decrypted for the granted auditor.
    pub granted_reads: u64,
    /// `NoGrant` denials observed (outsider).
    pub no_grant_denials: u64,
    /// `PolicyDenied` denials observed (granted key, wrong role).
    pub policy_denials: u64,
    /// `BadKey` denials observed (fabricated key).
    pub bad_key_denials: u64,
    /// `Revoked` denials observed (key used after rotation).
    pub revoked_denials: u64,
}

/// The end-of-run report; bit-identical across reruns of the same config.
#[derive(Clone, Debug, PartialEq)]
pub struct TpccReport {
    /// Warehouses in the run.
    pub warehouses: u64,
    /// Shard channels in the run.
    pub shards: usize,
    /// The master seed.
    pub seed: u64,
    /// Per-profile stats, in [`TxProfile::ALL`] order, keyed by label.
    pub profiles: Vec<(&'static str, ProfileStats)>,
    /// Committed NewOrders (the tpmC numerator).
    pub new_order_committed: u64,
    /// NewOrder commits per minute of virtual time.
    pub tpmc: f64,
    /// Committed deck transactions that ran the cross-shard protocol.
    pub cross_committed: u64,
    /// Committed deck transactions that ran as one direct transaction.
    pub single_committed: u64,
    /// `cross_committed / (cross + single)`, 0 when nothing committed.
    pub cross_fraction: f64,
    /// Total MVCC re-drives across all deck transactions.
    pub redrives: u64,
    /// Virtual time from measurement start to quiescence, microseconds.
    pub makespan_us: u64,
    /// Population transactions that preceded the deck.
    pub population_ops: u64,
    /// Extra audit-flush transactions injected by the views layer.
    pub audit_ops: u64,
    /// Individual invariant checks evaluated (mid-run sweeps + final).
    pub invariant_checks: u64,
    /// Leader transitions summed over every shard's Raft group. Fault
    /// runs kill the shard-0 leader mid-window, so this exceeds the
    /// fault-free count (one initial election per shard) there.
    pub elections: u64,
    /// Canonical state root per shard, hex.
    pub state_roots: Vec<String>,
    /// View-layer audit, when `views` was on.
    pub views: Option<ViewsOutcome>,
    /// The confidential viewing-key exercise (always runs).
    pub confidential: ConfidentialOutcome,
}

fn next_id(n: &mut u64) -> String {
    let id = format!("op{n}");
    *n += 1;
    id
}

/// A single-warehouse transaction: routed by the warehouse key, executed
/// as one direct chaincode call (the leg's prepare is never used — one
/// key can only route to one shard).
fn direct_spec(id: String, w: u64, function: &str, args: Vec<String>) -> OpSpec {
    let args: Vec<Vec<u8>> = args.into_iter().map(String::into_bytes).collect();
    OpSpec {
        id,
        direct: (TPCC_CC.to_string(), function.to_string(), args.clone()),
        legs: vec![OpLeg {
            key: warehouse_key(w),
            chaincode: TPCC_CC.to_string(),
            prepare: function.to_string(),
            args,
        }],
    }
}

fn strs(parts: &[u64]) -> Vec<String> {
    parts.iter().map(u64::to_string).collect()
}

fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 - 1) * p / 100;
    sorted[rank as usize]
}

fn sweep_local(
    dep: &ShardedDeployment,
    cfg: &TpccConfig,
    metrics: &WorkloadMetrics,
) -> Result<u64, ShardError> {
    let t0 = Instant::now();
    let mut checks = 0;
    for w in 0..cfg.warehouses {
        let shard = w as usize % cfg.shards;
        checks += invariants::check_warehouse_local(dep.cluster(shard).canonical_state(), w)
            .map_err(|e| ShardError::Protocol(vec![format!("invariant: {e}")]))?;
    }
    metrics
        .invariant_check_us
        .observe(t0.elapsed().as_micros() as u64);
    Ok(checks)
}

fn exercise_confidential(
    dep: &ShardedDeployment,
    cfg: &TpccConfig,
    metrics: &WorkloadMetrics,
) -> ConfidentialOutcome {
    let mut out = ConfidentialOutcome::default();
    let mut store = ConfidentialStore::new(cfg.seed);
    let scope = "w0";
    // Ingest warehouse 0's committed customer records, encrypted under
    // the scope key.
    let rows = dep.cluster(0).canonical_state().prefix_scan("wh~w0~cust~");
    for (key, value) in &rows {
        store.put(scope, key, value);
    }
    out.entries = store.scope_len(scope) as u64;

    store.assign_role("auditor-0", "auditor");
    let vk = store.grant("auditor-0", scope);
    metrics.viewing_grants.inc();
    for (key, value) in &rows {
        match store.read("auditor-0", &vk, scope, key) {
            Ok(pt) => {
                assert_eq!(&pt, value, "decrypted record differs from canonical state");
                out.granted_reads += 1;
            }
            Err(e) => panic!("granted auditor denied on {key}: {e:?}"),
        }
    }

    let probe = rows.first().map(|(k, _)| k.as_str()).unwrap_or("none");
    // An outsider with a stolen key has no grant at all.
    if store.read("outsider", &vk, scope, probe) == Err(Denial::NoGrant) {
        out.no_grant_denials += 1;
        metrics.inc_denial("no_grant");
    }
    // A granted key without the auditor role fails at the policy layer.
    store.assign_role("clerk-0", "clerk");
    let clerk_vk = store.grant("clerk-0", scope);
    metrics.viewing_grants.inc();
    if store.read("clerk-0", &clerk_vk, scope, probe) == Err(Denial::PolicyDenied) {
        out.policy_denials += 1;
        metrics.inc_denial("policy");
    }
    // A fabricated key is caught by the stored hash.
    if store.read("auditor-0", &ViewingKey([0u8; 32]), scope, probe) == Err(Denial::BadKey) {
        out.bad_key_denials += 1;
        metrics.inc_denial("bad_key");
    }
    // Revocation rotates the scope; the old key is dead.
    store.revoke("auditor-0", scope);
    if store.read("auditor-0", &vk, scope, probe) == Err(Denial::Revoked) {
        out.revoked_denials += 1;
        metrics.inc_denial("revoked");
    }
    out
}

/// Run one configured scenario end to end and return its report.
pub fn run(cfg: &TpccConfig, telemetry: &Telemetry) -> Result<TpccReport, ShardError> {
    let metrics = WorkloadMetrics::new(telemetry);
    let mut shard_cfg = ShardConfig::new(&cfg.storage_root, cfg.shards, cfg.seed);
    for w in 0..cfg.warehouses {
        shard_cfg
            .pins
            .push((format!("wh~w{w}~"), w as usize % cfg.shards));
    }
    shard_cfg.workloads.push((
        TPCC_CC.to_string(),
        Arc::new(|| Box::new(TpccContract) as Box<dyn Chaincode>),
    ));
    let mut dep = ShardedDeployment::new(shard_cfg)?;
    dep.set_telemetry(telemetry);

    // ---- population ----
    let mut n = 0u64;
    let mut at = SimTime::from_millis(10);
    let step = SimTime::from_millis(2);
    for w in 0..cfg.warehouses {
        dep.schedule_op(
            at,
            direct_spec(next_id(&mut n), w, "load_warehouse", strs(&[w, DISTRICTS])),
        );
        at += step;
        for d in 0..DISTRICTS {
            dep.schedule_op(
                at,
                direct_spec(
                    next_id(&mut n),
                    w,
                    "load_customers",
                    strs(&[w, d, CUSTOMERS]),
                ),
            );
            at += step;
        }
        dep.schedule_op(
            at,
            direct_spec(next_id(&mut n), w, "load_stock", strs(&[w, 0, ITEMS])),
        );
        at += step;
    }
    let population_ops = n;
    dep.run_until_converged(at + SimTime::from_secs(120))?;
    let unpopulated: Vec<String> = dep
        .op_records()
        .iter()
        .filter(|r| r.status != TransferStatus::Committed)
        .map(|r| format!("population {} ended {:?}", r.id, r.status))
        .collect();
    if !unpopulated.is_empty() {
        return Err(ShardError::Protocol(unpopulated));
    }

    // ---- the measured deck ----
    let start = dep.now();
    let deck = deal(cfg.seed, cfg.ops);
    let gen = ParamGen::new(cfg.warehouses);
    let mut deck_ops: Vec<(TxProfile, usize)> = Vec::with_capacity(cfg.ops);
    let mut audit_seq = vec![0u64; cfg.warehouses as usize];
    let mut audit_ops = 0u64;
    let mut payments_seen = 0u64;
    for (i, &profile) in deck.iter().enumerate() {
        let at = start + cfg.interarrival.scaled(i as u64);
        metrics.inc_submitted(profile);
        let id = next_id(&mut n);
        let spec = match profile {
            TxProfile::NewOrder => {
                let p = gen.new_order(cfg.seed, i as u64);
                let args = vec![
                    p.w.to_string(),
                    p.d.to_string(),
                    p.c.to_string(),
                    p.lines_wire(),
                    at.as_micros().to_string(),
                ];
                let mut legs = vec![OpLeg {
                    key: warehouse_key(p.w),
                    chaincode: TPCC_CC.to_string(),
                    prepare: "prepare_no_home".to_string(),
                    args: args.iter().map(|a| a.clone().into_bytes()).collect(),
                }];
                // One stock leg per remote (warehouse, item), quantities
                // aggregated so legs never collide on a pending key.
                let mut remote: Vec<(u64, u64, u64)> = Vec::new();
                for l in p.lines.iter().filter(|l| l.supply_w != p.w) {
                    match remote
                        .iter_mut()
                        .find(|(sw, i_, _)| *sw == l.supply_w && *i_ == l.item)
                    {
                        Some((_, _, q)) => *q += l.qty,
                        None => remote.push((l.supply_w, l.item, l.qty)),
                    }
                }
                for (sw, item, qty) in remote {
                    legs.push(OpLeg {
                        key: warehouse_key(sw),
                        chaincode: TPCC_CC.to_string(),
                        prepare: "prepare_stock".to_string(),
                        args: strs(&[sw, item, qty])
                            .into_iter()
                            .map(String::into_bytes)
                            .collect(),
                    });
                }
                OpSpec {
                    id,
                    direct: (
                        TPCC_CC.to_string(),
                        "new_order".to_string(),
                        args.into_iter().map(String::into_bytes).collect(),
                    ),
                    legs,
                }
            }
            TxProfile::Payment => {
                let p = gen.payment(cfg.seed, i as u64);
                OpSpec {
                    id,
                    direct: (
                        TPCC_CC.to_string(),
                        "payment".to_string(),
                        strs(&[p.w, p.d, p.cw, p.cd, p.c, p.amount])
                            .into_iter()
                            .map(String::into_bytes)
                            .collect(),
                    ),
                    legs: vec![
                        OpLeg {
                            key: warehouse_key(p.w),
                            chaincode: TPCC_CC.to_string(),
                            prepare: "prepare_pay_home".to_string(),
                            args: strs(&[p.w, p.d, p.amount])
                                .into_iter()
                                .map(String::into_bytes)
                                .collect(),
                        },
                        OpLeg {
                            key: warehouse_key(p.cw),
                            chaincode: TPCC_CC.to_string(),
                            prepare: "prepare_pay_cust".to_string(),
                            args: strs(&[p.cw, p.cd, p.c, p.amount])
                                .into_iter()
                                .map(String::into_bytes)
                                .collect(),
                        },
                    ],
                }
            }
            TxProfile::OrderStatus => {
                let (w, d, c) = gen.order_status(cfg.seed, i as u64);
                direct_spec(id, w, "order_status", strs(&[w, d, c]))
            }
            TxProfile::Delivery => {
                let (w, carrier) = gen.delivery(cfg.seed, i as u64);
                direct_spec(id, w, "delivery", strs(&[w, carrier, DISTRICTS]))
            }
            TxProfile::StockLevel => {
                let (w, d, threshold) = gen.stock_level(cfg.seed, i as u64);
                direct_spec(id, w, "stock_level", strs(&[w, d, threshold]))
            }
        };
        let idx = dep.schedule_op(at, spec);
        deck_ops.push((profile, idx));

        // The views layer costs throughput while it's on: every fourth
        // payment also flushes an audit row for its warehouse.
        if cfg.views && profile == TxProfile::Payment {
            payments_seen += 1;
            if payments_seen.is_multiple_of(4) {
                let p = gen.payment(cfg.seed, i as u64);
                let seq = audit_seq[p.w as usize];
                audit_seq[p.w as usize] += 1;
                dep.schedule_op(
                    at,
                    direct_spec(next_id(&mut n), p.w, "audit_flush", strs(&[p.w, seq])),
                );
                audit_ops += 1;
            }
        }
    }

    // ---- faults inside the measurement window ----
    let window = cfg.interarrival.scaled(cfg.ops as u64);
    let pct = |p: u64| start + SimTime::from_micros(window.as_micros() * p / 100);
    if cfg.faults {
        dep.schedule_leader_kill(0, pct(30));
        let s1 = 1.min(cfg.shards - 1);
        dep.schedule_fault(s1, pct(45), Fault::CrashPeer(1));
        dep.schedule_fault(s1, pct(65), Fault::RestartPeer(1));
        dep.schedule_fault(0, pct(75), Fault::Partition(vec![2]));
        dep.schedule_fault(0, pct(85), Fault::Heal);
    }

    // ---- run, sweeping the local invariants as we go ----
    let sweep_every = SimTime::from_millis(500);
    let mut next_sweep = start + sweep_every;
    let end = start + window;
    let mut invariant_checks = 0u64;
    while dep.now() < end {
        dep.run_until(next_sweep.min(end));
        if dep.now() >= next_sweep {
            invariant_checks += sweep_local(&dep, cfg, &metrics)?;
            next_sweep += sweep_every;
        }
    }
    let converged_at = dep.run_until_converged(end + SimTime::from_secs(600))?;
    dep.verify()?;

    // ---- final invariants: local per warehouse, then global ----
    invariant_checks += sweep_local(&dep, cfg, &metrics)?;
    let states: Vec<&dyn VersionedState> = (0..cfg.shards)
        .map(|s| dep.cluster(s).canonical_state())
        .collect();
    invariant_checks += invariants::check_global(&states)
        .map_err(|e| ShardError::Protocol(vec![format!("global invariant: {e}")]))?;

    // ---- per-profile stats ----
    let mut profiles = Vec::with_capacity(TxProfile::ALL.len());
    let mut cross_committed = 0u64;
    let mut single_committed = 0u64;
    let mut redrives = 0u64;
    for p in TxProfile::ALL {
        let mut stats = ProfileStats::default();
        let mut latencies = Vec::new();
        for &(profile, idx) in deck_ops.iter().filter(|(q, _)| *q == p) {
            let rec = dep.op(idx);
            redrives += rec.redrives;
            match rec.status {
                TransferStatus::Committed => {
                    stats.committed += 1;
                    metrics.inc_committed(profile);
                    latencies.push(rec.completed_us - rec.submitted_us);
                    if rec.cross {
                        cross_committed += 1;
                    } else {
                        single_committed += 1;
                    }
                }
                TransferStatus::Shed => {
                    stats.shed += 1;
                    metrics.inc_aborted(profile);
                }
                _ => {
                    stats.aborted += 1;
                    metrics.inc_aborted(profile);
                }
            }
            stats.submitted += 1;
        }
        latencies.sort_unstable();
        stats.p50_us = percentile(&latencies, 50);
        stats.p99_us = percentile(&latencies, 99);
        profiles.push((p.label(), stats));
    }
    let new_order_committed = profiles
        .iter()
        .find(|(l, _)| *l == "new_order")
        .map(|(_, s)| s.committed)
        .unwrap_or(0);
    let makespan_us = converged_at.as_micros() - start.as_micros();
    let tpmc = if makespan_us == 0 {
        0.0
    } else {
        new_order_committed as f64 / (makespan_us as f64 / 60_000_000.0)
    };
    let committed_total = cross_committed + single_committed;
    let cross_fraction = if committed_total == 0 {
        0.0
    } else {
        cross_committed as f64 / committed_total as f64
    };

    // ---- views layer: mirror committed payments, audit access ----
    let views = if cfg.views {
        let mut layer = ViewLayer::new(cfg.warehouses, cfg.seed);
        for (i, &(profile, idx)) in deck_ops.iter().enumerate() {
            if profile == TxProfile::Payment && dep.op(idx).status == TransferStatus::Committed {
                let p = gen.payment(cfg.seed, i as u64);
                layer.mirror_payment(p.cw, p.cd, p.c, p.w, p.amount);
            }
        }
        let out = layer.audit();
        metrics.view_queries_ok.add(out.owner_reads_ok);
        metrics
            .view_queries_denied
            .add(out.foreign_denials + out.revoked_denials);
        Some(out)
    } else {
        None
    };

    // ---- viewing-key confidential exercise over committed state ----
    let confidential = exercise_confidential(&dep, cfg, &metrics);

    let elections: u64 = (0..cfg.shards)
        .map(|s| dep.cluster(s).report().elections)
        .sum();

    Ok(TpccReport {
        warehouses: cfg.warehouses,
        shards: cfg.shards,
        seed: cfg.seed,
        profiles,
        new_order_committed,
        tpmc,
        cross_committed,
        single_committed,
        cross_fraction,
        redrives,
        makespan_us,
        population_ops,
        audit_ops,
        invariant_checks,
        elections,
        state_roots: dep.state_roots().iter().map(|d| d.to_hex()).collect(),
        views,
        confidential,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_store::testdir::TestDir;

    fn small(dir: &TestDir, shards: usize, views: bool, faults: bool) -> TpccConfig {
        let mut cfg = TpccConfig::new(dir.path(), 4, shards, 0xC0FFEE);
        cfg.ops = 120;
        cfg.interarrival = SimTime::from_millis(8);
        cfg.views = views;
        cfg.faults = faults;
        cfg
    }

    #[test]
    fn two_shard_run_commits_the_mix_and_holds_invariants() {
        let dir = TestDir::new("workload_driver_2s");
        let telemetry = Telemetry::wall_clock();
        let report = run(&small(&dir, 2, false, false), &telemetry).unwrap();
        assert_eq!(report.population_ops, 4 * (2 + DISTRICTS));
        let total: u64 = report.profiles.iter().map(|(_, s)| s.submitted).sum();
        assert_eq!(total, 120);
        // The deck is exact: 120 ⇒ 54/51/5/5/5 by largest remainder.
        let get = |l: &str| {
            report
                .profiles
                .iter()
                .find(|(p, _)| *p == l)
                .map(|(_, s)| s.clone())
                .unwrap()
        };
        assert_eq!(get("payment").submitted, 51);
        assert_eq!(
            get("order_status").submitted + get("delivery").submitted,
            10
        );
        // Nearly everything commits in a fault-free run.
        let committed: u64 = report.profiles.iter().map(|(_, s)| s.committed).sum();
        assert!(committed * 10 >= total * 9, "committed {committed}/{total}");
        assert!(report.new_order_committed > 0 && report.tpmc > 0.0);
        // Cross-warehouse payments exist at 4 warehouses / 2 shards.
        assert!(report.cross_committed > 0, "expected some 2PC traffic");
        assert!(report.invariant_checks > 0);
        // Confidential soundness: auditor read everything, every denial
        // class fired exactly once.
        assert_eq!(
            report.confidential.granted_reads,
            report.confidential.entries
        );
        assert_eq!(report.confidential.no_grant_denials, 1);
        assert_eq!(report.confidential.policy_denials, 1);
        assert_eq!(report.confidential.bad_key_denials, 1);
        assert_eq!(report.confidential.revoked_denials, 1);
    }

    #[test]
    fn views_layer_audits_cleanly_and_costs_extra_ops() {
        let dir = TestDir::new("workload_driver_views");
        let telemetry = Telemetry::wall_clock();
        let report = run(&small(&dir, 2, true, false), &telemetry).unwrap();
        assert!(report.audit_ops > 0, "views runs inject audit load");
        let v = report.views.expect("views outcome present");
        assert!(v.mirrored > 0 && v.owner_reads_ok == v.mirrored);
        assert_eq!(v.unauthorized_reads, 0);
        assert_eq!(v.foreign_denials, report.warehouses);
        assert_eq!(v.revoked_denials, report.warehouses);
    }

    #[test]
    fn faulted_run_still_converges_and_holds_invariants() {
        let dir = TestDir::new("workload_driver_faults");
        let telemetry = Telemetry::wall_clock();
        let report = run(&small(&dir, 2, false, true), &telemetry).unwrap();
        let committed: u64 = report.profiles.iter().map(|(_, s)| s.committed).sum();
        assert!(committed > 0, "faulted run still makes progress");
        assert!(report.invariant_checks > 0);
        // The leader kill really happened: shard 0 re-elected, so the
        // run records more leader transitions than the one-per-shard a
        // fault-free run pays at startup.
        assert!(
            report.elections > report.shards as u64,
            "no extra election: kill not applied ({} transitions)",
            report.elections
        );
    }
}

//! The client-driven 2PC protocol (§6.1).
//!
//! The main blockchain records the request and the global decision; each
//! involved view blockchain receives a Prepare and then a Commit (or
//! Abort) transaction. A request over `n` views therefore costs `2n`
//! view-chain transactions — the structural overhead that dominates the
//! baseline in every experiment.

use rand::RngCore;

use crate::contracts::{
    self, read_committed_payload, read_coord_state, CoordState, COORDINATOR_CC, SHARD_CC,
};
use crate::deployment::CrossChainDeployment;
use fabric_sim::FabricError;

/// A cross-chain insertion request.
#[derive(Clone, Debug)]
pub struct CrossChainRequest {
    /// Globally unique request id.
    pub id: String,
    /// The transaction payload to replicate into each view chain.
    pub payload: Vec<u8>,
    /// The views (blockchains) that must include the payload.
    pub views: Vec<String>,
}

/// Result of running a request through 2PC.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// All view chains committed.
    Committed {
        /// Number of view-chain transactions used (2n).
        view_chain_txs: u32,
    },
    /// Some participant voted abort; nothing became visible.
    Aborted {
        /// The view whose Prepare failed.
        failed_view: String,
    },
}

/// Execute a request: coordinator begin, Prepare on every involved chain,
/// decision, then Commit (or Abort) on every prepared chain.
pub fn execute_request<R: RngCore + ?Sized>(
    dep: &mut CrossChainDeployment,
    request: &CrossChainRequest,
    rng: &mut R,
) -> Result<RequestOutcome, FabricError> {
    // Coordinator: record the request on the main chain.
    let coordinator = dep.coordinator.clone();
    dep.main.invoke_commit(
        &coordinator,
        COORDINATOR_CC,
        "begin",
        vec![request.id.as_bytes().to_vec()],
        rng,
    )?;

    // Phase 1: Prepare on each involved view chain.
    let mut prepared: Vec<usize> = Vec::new();
    let mut failed_view: Option<String> = None;
    let mut view_chain_txs = 0u32;
    for view in &request.views {
        let Some(idx) = dep.view_index(view) else {
            failed_view = Some(view.clone());
            break;
        };
        let vc = &mut dep.views[idx];
        let submitter = vc.submitter.clone();
        let result = vc.chain.invoke_commit(
            &submitter,
            SHARD_CC,
            "prepare",
            vec![request.id.as_bytes().to_vec(), request.payload.clone()],
            rng,
        );
        match result {
            Ok(_) => {
                view_chain_txs += 1;
                prepared.push(idx);
            }
            Err(_) => {
                failed_view = Some(view.clone());
                break;
            }
        }
    }

    // Decision on the main chain.
    let commit = failed_view.is_none();
    dep.main.invoke_commit(
        &coordinator,
        COORDINATOR_CC,
        "decide",
        vec![
            request.id.as_bytes().to_vec(),
            vec![if commit { 1 } else { 0 }],
        ],
        rng,
    )?;

    // Phase 2: Commit or Abort on every prepared chain.
    let function = if commit { "commit" } else { "abort" };
    for idx in prepared {
        let vc = &mut dep.views[idx];
        let submitter = vc.submitter.clone();
        vc.chain.invoke_commit(
            &submitter,
            SHARD_CC,
            function,
            vec![request.id.as_bytes().to_vec()],
            rng,
        )?;
        view_chain_txs += 1;
    }

    Ok(match failed_view {
        None => RequestOutcome::Committed { view_chain_txs },
        Some(v) => RequestOutcome::Aborted { failed_view: v },
    })
}

/// Audit atomicity of a request across the deployment: returns true iff
/// the payload is visible on *all* intended chains or on *none*.
pub fn is_atomic(dep: &CrossChainDeployment, request: &CrossChainRequest) -> bool {
    let mut visible = 0usize;
    for view in &request.views {
        if let Some(idx) = dep.view_index(view) {
            if read_committed_payload(dep.views[idx].chain.state(), &request.id).is_some() {
                visible += 1;
            }
        }
    }
    visible == 0 || visible == request.views.len()
}

/// The coordinator's recorded decision for a request.
pub fn decision(dep: &CrossChainDeployment, request_id: &str) -> Option<CoordState> {
    read_coord_state(dep.main.state(), request_id)
}

/// Poison one view chain so its next Prepares vote abort (failure
/// injection for atomicity tests).
pub fn poison_view<R: RngCore + ?Sized>(
    dep: &mut CrossChainDeployment,
    view: &str,
    rng: &mut R,
) -> Result<(), FabricError> {
    let idx = dep
        .view_index(view)
        .ok_or_else(|| FabricError::Malformed(format!("unknown view {view}")))?;
    let vc = &mut dep.views[idx];
    let submitter = vc.submitter.clone();
    vc.chain
        .invoke_commit(&submitter, SHARD_CC, "set_poison", vec![], rng)?;
    Ok(())
}

/// Total committed payload bytes duplicated across view chains.
pub fn duplicated_payload_bytes(dep: &CrossChainDeployment) -> u64 {
    dep.views
        .iter()
        .map(|v| contracts::committed_bytes(v.chain.state()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ledgerview_crypto::rng::seeded;

    fn request(id: &str, views: &[&str]) -> CrossChainRequest {
        CrossChainRequest {
            id: id.to_string(),
            payload: format!("payload-of-{id}").into_bytes(),
            views: views.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn commit_path_makes_payload_visible_everywhere() {
        let mut rng = seeded(1);
        let mut dep = CrossChainDeployment::new(&["V1", "V2", "V3"], &mut rng);
        let req = request("r1", &["V1", "V3"]);
        let outcome = execute_request(&mut dep, &req, &mut rng).unwrap();
        assert_eq!(outcome, RequestOutcome::Committed { view_chain_txs: 4 });
        assert!(is_atomic(&dep, &req));
        assert_eq!(decision(&dep, "r1"), Some(CoordState::Committed));
        // Visible exactly on the two intended chains.
        assert!(read_committed_payload(dep.views[0].chain.state(), "r1").is_some());
        assert!(read_committed_payload(dep.views[1].chain.state(), "r1").is_none());
        assert!(read_committed_payload(dep.views[2].chain.state(), "r1").is_some());
    }

    #[test]
    fn abort_path_leaves_nothing_visible() {
        let mut rng = seeded(2);
        let mut dep = CrossChainDeployment::new(&["V1", "V2"], &mut rng);
        poison_view(&mut dep, "V2", &mut rng).unwrap();
        let req = request("r2", &["V1", "V2"]);
        let outcome = execute_request(&mut dep, &req, &mut rng).unwrap();
        assert_eq!(
            outcome,
            RequestOutcome::Aborted {
                failed_view: "V2".into()
            }
        );
        assert!(is_atomic(&dep, &req));
        assert_eq!(decision(&dep, "r2"), Some(CoordState::Aborted));
        // V1 prepared then aborted: no residue.
        assert!(!contracts::is_prepared(dep.views[0].chain.state(), "r2"));
        assert!(read_committed_payload(dep.views[0].chain.state(), "r2").is_none());
    }

    #[test]
    fn unknown_view_aborts_atomically() {
        let mut rng = seeded(3);
        let mut dep = CrossChainDeployment::new(&["V1"], &mut rng);
        let req = request("r3", &["V1", "ghost"]);
        let outcome = execute_request(&mut dep, &req, &mut rng).unwrap();
        assert!(matches!(outcome, RequestOutcome::Aborted { .. }));
        assert!(read_committed_payload(dep.views[0].chain.state(), "r3").is_none());
    }

    #[test]
    fn duplicate_request_id_rejected_by_coordinator() {
        let mut rng = seeded(4);
        let mut dep = CrossChainDeployment::new(&["V1"], &mut rng);
        let req = request("dup", &["V1"]);
        execute_request(&mut dep, &req, &mut rng).unwrap();
        assert!(execute_request(&mut dep, &req, &mut rng).is_err());
    }

    #[test]
    fn transaction_cost_is_2n_plus_coordination() {
        let mut rng = seeded(5);
        let n = 5usize;
        let names: Vec<String> = (0..n).map(|i| format!("V{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut dep = CrossChainDeployment::new(&name_refs, &mut rng);
        let req = CrossChainRequest {
            id: "cost".into(),
            payload: vec![0u8; 64],
            views: names.clone(),
        };
        let outcome = execute_request(&mut dep, &req, &mut rng).unwrap();
        assert_eq!(
            outcome,
            RequestOutcome::Committed {
                view_chain_txs: 2 * n as u32
            }
        );
        // Total ledger txs: 2n on view chains + 2 coordinator records.
        assert_eq!(dep.total_onchain_txs(), 2 * n as u64 + 2);
    }

    #[test]
    fn storage_duplicates_payload_per_view() {
        let mut rng = seeded(6);
        let names = ["V0", "V1", "V2", "V3"];
        let mut dep = CrossChainDeployment::new(&names, &mut rng);
        let payload = vec![7u8; 1000];
        let req = CrossChainRequest {
            id: "dupbytes".into(),
            payload: payload.clone(),
            views: names.iter().map(|s| s.to_string()).collect(),
        };
        execute_request(&mut dep, &req, &mut rng).unwrap();
        let dup = duplicated_payload_bytes(&dep);
        // The payload is stored once per view chain.
        assert!(dup >= (payload.len() * names.len()) as u64);
    }

    #[test]
    fn poison_then_clear_allows_later_commits() {
        let mut rng = seeded(7);
        let mut dep = CrossChainDeployment::new(&["V1"], &mut rng);
        poison_view(&mut dep, "V1", &mut rng).unwrap();
        let r1 = request("p1", &["V1"]);
        assert!(matches!(
            execute_request(&mut dep, &r1, &mut rng).unwrap(),
            RequestOutcome::Aborted { .. }
        ));
        let submitter = dep.views[0].submitter.clone();
        dep.views[0]
            .chain
            .invoke_commit(&submitter, SHARD_CC, "clear_poison", vec![], &mut rng)
            .unwrap();
        let r2 = request("p2", &["V1"]);
        assert!(matches!(
            execute_request(&mut dep, &r2, &mut rng).unwrap(),
            RequestOutcome::Committed { .. }
        ));
    }
}

//! The cross-blockchain baseline (§6.1): one blockchain per view,
//! kept consistent with the main chain by AHL-style two-phase commit.
//!
//! Each view is stored on its own *view blockchain* accessible only to
//! users with permission for that view. A transaction included in `n`
//! views becomes a cross-chain transaction: the main blockchain acts as
//! the 2PC coordinator (via a smart contract), each view blockchain is a
//! 2PC participant whose protocol logic is also a smart contract, and a
//! request turns into `2n` view-chain transactions (`n` Prepares, then
//! `n` Commits) plus the coordinator's begin/decide records.
//!
//! This is the baseline LedgerView is compared against in Figs 4–9: it is
//! atomic and verifiably consistent, but pays 2n on-chain transactions and
//! duplicates every payload once per view.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contracts;
pub mod deployment;
pub mod protocol;

pub use contracts::{
    read_balance, read_terminal_state, read_transfer_terminal, total_balances, CoordinatorContract,
    ShardContract, TerminalState, TransferContract, COORDINATOR_CC, SHARD_CC, TRANSFER_CC,
};
pub use deployment::CrossChainDeployment;
pub use protocol::{execute_request, CrossChainRequest, RequestOutcome};

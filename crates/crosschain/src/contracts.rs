//! The coordinator and participant smart contracts.

use fabric_sim::chaincode::{Chaincode, TxContext};
use fabric_sim::statedb::VersionedState;
use fabric_sim::FabricError;

/// Chaincode name of the coordinator (deployed on the main chain).
pub const COORDINATOR_CC: &str = "xc.coordinator";
/// Chaincode name of the participant (deployed on each view chain).
pub const SHARD_CC: &str = "xc.shard";

fn arg(args: &[Vec<u8>], i: usize) -> Result<&[u8], FabricError> {
    args.get(i)
        .map(|a| a.as_slice())
        .ok_or_else(|| FabricError::Malformed(format!("missing argument {i}")))
}

fn arg_str(args: &[Vec<u8>], i: usize) -> Result<String, FabricError> {
    String::from_utf8(arg(args, i)?.to_vec())
        .map_err(|_| FabricError::Malformed(format!("argument {i} not UTF-8")))
}

/// Coordinator states recorded on the main chain per request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoordState {
    /// Prepares issued, outcome pending.
    Begun,
    /// Global commit decided.
    Committed,
    /// Global abort decided.
    Aborted,
}

impl CoordState {
    fn to_byte(self) -> u8 {
        match self {
            CoordState::Begun => 0,
            CoordState::Committed => 1,
            CoordState::Aborted => 2,
        }
    }

    fn from_byte(b: u8) -> Option<CoordState> {
        Some(match b {
            0 => CoordState::Begun,
            1 => CoordState::Committed,
            2 => CoordState::Aborted,
            _ => return None,
        })
    }
}

fn coord_key(request: &str) -> String {
    format!("2pc~{request}")
}

/// The 2PC coordinator contract: records `begin` and the final decision
/// for each cross-chain request (write-ahead decision log on the ledger).
pub struct CoordinatorContract;

impl Chaincode for CoordinatorContract {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, FabricError> {
        match function {
            "begin" => {
                let request = arg_str(args, 0)?;
                let key = coord_key(&request);
                if ctx.get_state(&key).is_some() {
                    return Err(FabricError::ChaincodeError(format!(
                        "request {request:?} already begun"
                    )));
                }
                ctx.put_state(key, vec![CoordState::Begun.to_byte()]);
                Ok(vec![])
            }
            "decide" => {
                let request = arg_str(args, 0)?;
                let commit = *arg(args, 1)?
                    .first()
                    .ok_or_else(|| FabricError::Malformed("empty decision".into()))?;
                let key = coord_key(&request);
                match ctx.get_state(&key).as_deref() {
                    Some([b]) if *b == CoordState::Begun.to_byte() => {}
                    Some(_) => {
                        return Err(FabricError::ChaincodeError(format!(
                            "request {request:?} already decided"
                        )))
                    }
                    None => {
                        return Err(FabricError::ChaincodeError(format!(
                            "request {request:?} was never begun"
                        )))
                    }
                }
                let state = if commit == 1 {
                    CoordState::Committed
                } else {
                    CoordState::Aborted
                };
                ctx.put_state(key, vec![state.to_byte()]);
                Ok(vec![])
            }
            other => Err(FabricError::ChaincodeError(format!(
                "CoordinatorContract: unknown function {other}"
            ))),
        }
    }
}

/// Read a request's coordinator state from the main chain.
pub fn read_coord_state(state: &dyn VersionedState, request: &str) -> Option<CoordState> {
    state
        .get(&coord_key(request))
        .and_then(|v| v.first().copied())
        .and_then(CoordState::from_byte)
}

fn prep_key(request: &str) -> String {
    format!("prep~{request}")
}

fn committed_key(request: &str) -> String {
    format!("xtx~{request}")
}

fn aborted_key(request: &str) -> String {
    format!("abt~{request}")
}

const POISON_KEY: &str = "shard~poison";

/// A participant's terminal 2PC state for a request, if it reached one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminalState {
    /// The payload is committed (visible).
    Committed,
    /// The request was aborted; any lock was released.
    Aborted,
}

/// A participant's recorded terminal state for a request, if any.
pub fn read_terminal_state(state: &dyn VersionedState, request: &str) -> Option<TerminalState> {
    if state.get(&committed_key(request)).is_some() {
        Some(TerminalState::Committed)
    } else if state.get(&aborted_key(request)).is_some() {
        Some(TerminalState::Aborted)
    } else {
        None
    }
}

/// The 2PC participant contract on each view blockchain.
///
/// `prepare` locks the payload; `commit` makes it visible as view data;
/// `abort` discards it. `set_poison` makes future prepares vote abort —
/// the failure-injection hook used by the atomicity tests.
///
/// Terminal states are **idempotent**: a coordinator that crashes after
/// recording its decision replays that decision on recovery, so every
/// participant must absorb a duplicate `commit` or `abort` as a no-op
/// instead of failing the replayed transaction. An `abort` for a request
/// that never prepared here is also accepted (presumed abort) and leaves
/// a terminal marker that fences any late `prepare` for the same request.
pub struct ShardContract;

impl Chaincode for ShardContract {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, FabricError> {
        match function {
            "prepare" => {
                if ctx.get_state(POISON_KEY).is_some() {
                    return Err(FabricError::ChaincodeError(
                        "shard votes abort (poisoned)".into(),
                    ));
                }
                let request = arg_str(args, 0)?;
                let payload = arg(args, 1)?.to_vec();
                let key = prep_key(&request);
                if ctx.get_state(&key).is_some()
                    || ctx.get_state(&committed_key(&request)).is_some()
                    || ctx.get_state(&aborted_key(&request)).is_some()
                {
                    return Err(FabricError::ChaincodeError(format!(
                        "request {request:?} already prepared or terminal"
                    )));
                }
                ctx.put_state(key, payload);
                Ok(vec![])
            }
            "commit" => {
                let request = arg_str(args, 0)?;
                if ctx.get_state(&committed_key(&request)).is_some() {
                    // Crash-replayed decision: already terminal, no-op.
                    return Ok(vec![]);
                }
                if ctx.get_state(&aborted_key(&request)).is_some() {
                    return Err(FabricError::ChaincodeError(format!(
                        "request {request:?} was aborted; cannot commit"
                    )));
                }
                let Some(payload) = ctx.get_state(&prep_key(&request)) else {
                    return Err(FabricError::ChaincodeError(format!(
                        "request {request:?} was not prepared"
                    )));
                };
                ctx.delete_state(prep_key(&request));
                ctx.put_state(committed_key(&request), payload);
                Ok(vec![])
            }
            "abort" => {
                let request = arg_str(args, 0)?;
                if ctx.get_state(&aborted_key(&request)).is_some() {
                    // Crash-replayed decision: already terminal, no-op.
                    return Ok(vec![]);
                }
                if ctx.get_state(&committed_key(&request)).is_some() {
                    return Err(FabricError::ChaincodeError(format!(
                        "request {request:?} was committed; cannot abort"
                    )));
                }
                // Presumed abort: release the lock if one exists, and leave
                // a terminal marker either way so a late prepare is fenced.
                ctx.delete_state(prep_key(&request));
                ctx.put_state(aborted_key(&request), vec![1]);
                Ok(vec![])
            }
            "set_poison" => {
                ctx.put_state(POISON_KEY, vec![1]);
                Ok(vec![])
            }
            "clear_poison" => {
                ctx.delete_state(POISON_KEY);
                Ok(vec![])
            }
            other => Err(FabricError::ChaincodeError(format!(
                "ShardContract: unknown function {other}"
            ))),
        }
    }
}

/// Whether a request's payload is committed (visible) on a view chain.
pub fn read_committed_payload(state: &dyn VersionedState, request: &str) -> Option<Vec<u8>> {
    state.get(&committed_key(request))
}

/// Chaincode name of the transfer participant (deployed on each shard
/// channel of a sharded deployment).
pub const TRANSFER_CC: &str = "xc.transfer";

fn acct_key(acct: &str) -> String {
    format!("acct~{acct}")
}

fn lock_key(request: &str) -> String {
    format!("lock~{request}")
}

fn pend_key(request: &str) -> String {
    format!("pend~{request}")
}

fn fin_key(request: &str) -> String {
    format!("fin~{request}")
}

fn u64_be(v: u64) -> Vec<u8> {
    v.to_be_bytes().to_vec()
}

fn parse_u64(bytes: &[u8], what: &str) -> Result<u64, FabricError> {
    let arr: [u8; 8] = bytes
        .try_into()
        .map_err(|_| FabricError::Malformed(format!("{what}: expected 8 bytes")))?;
    Ok(u64::from_be_bytes(arr))
}

/// Encode a 2PC leg record: the reserved/intended amount plus the account
/// it debits or credits.
fn leg_value(acct: &str, amount: u64) -> Vec<u8> {
    let mut v = u64_be(amount);
    v.extend_from_slice(acct.as_bytes());
    v
}

fn leg_amount(value: &[u8]) -> Result<u64, FabricError> {
    if value.len() < 8 {
        return Err(FabricError::Malformed("truncated leg record".into()));
    }
    parse_u64(&value[..8], "leg amount")
}

fn leg_account(value: &[u8]) -> Result<String, FabricError> {
    if value.len() < 8 {
        return Err(FabricError::Malformed("truncated leg record".into()));
    }
    String::from_utf8(value[8..].to_vec())
        .map_err(|_| FabricError::Malformed("leg account not UTF-8".into()))
}

/// The money-moving 2PC participant for sharded deployments.
///
/// Accounts live under `acct~<name>`; a cross-shard transfer runs as a
/// *debit leg* on the source account's shard and a *credit leg* on the
/// destination's:
///
/// * `prepare_debit(req, src, amount)` reserves the amount by moving it
///   out of the balance and into a `lock~<req>` record — the classic
///   AHL-style reservation, so concurrent spends cannot double-spend the
///   locked funds. Votes abort (fails endorsement) on insufficient funds.
/// * `prepare_credit(req, dst, amount)` records the intent under
///   `pend~<req>`; the credit itself is deferred to `commit`.
/// * `commit(req)` releases the lock for good (debit side) or applies the
///   credit (credit side) and records the terminal marker `fin~<req>`.
/// * `abort(req)` refunds the lock / drops the intent and records the
///   terminal marker.
///
/// Terminal states are idempotent exactly like [`ShardContract`]'s: a
/// replayed `commit`/`abort` after the marker exists is a no-op, and an
/// `abort` for a request with no leg here is presumed-abort (marker only).
/// The conservation invariant audited by the shard tests is
/// `Σ balances + Σ lock amounts = Σ opened`, since a lock holds in-flight
/// money and a pending credit does not.
pub struct TransferContract;

impl Chaincode for TransferContract {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, FabricError> {
        match function {
            "open" => {
                let acct = arg_str(args, 0)?;
                let amount = parse_u64(arg(args, 1)?, "open amount")?;
                if ctx.get_state(&acct_key(&acct)).is_some() {
                    return Err(FabricError::ChaincodeError(format!(
                        "account {acct:?} already exists"
                    )));
                }
                ctx.put_state(acct_key(&acct), u64_be(amount));
                Ok(vec![])
            }
            "transfer" => {
                // Single-shard fast path: both accounts live here, no 2PC.
                let src = arg_str(args, 0)?;
                let dst = arg_str(args, 1)?;
                let amount = parse_u64(arg(args, 2)?, "transfer amount")?;
                let src_bal = ctx
                    .get_state(&acct_key(&src))
                    .ok_or_else(|| FabricError::ChaincodeError(format!("unknown account {src:?}")))
                    .and_then(|v| parse_u64(&v, "balance"))?;
                let dst_bal = ctx
                    .get_state(&acct_key(&dst))
                    .ok_or_else(|| FabricError::ChaincodeError(format!("unknown account {dst:?}")))
                    .and_then(|v| parse_u64(&v, "balance"))?;
                if src_bal < amount {
                    return Err(FabricError::ChaincodeError(format!(
                        "insufficient funds: {src:?} has {src_bal}, needs {amount}"
                    )));
                }
                ctx.put_state(acct_key(&src), u64_be(src_bal - amount));
                ctx.put_state(acct_key(&dst), u64_be(dst_bal + amount));
                Ok(vec![])
            }
            "prepare_debit" => {
                if ctx.get_state(POISON_KEY).is_some() {
                    return Err(FabricError::ChaincodeError(
                        "shard votes abort (poisoned)".into(),
                    ));
                }
                let request = arg_str(args, 0)?;
                let src = arg_str(args, 1)?;
                let amount = parse_u64(arg(args, 2)?, "debit amount")?;
                if ctx.get_state(&fin_key(&request)).is_some()
                    || ctx.get_state(&lock_key(&request)).is_some()
                    || ctx.get_state(&pend_key(&request)).is_some()
                {
                    return Err(FabricError::ChaincodeError(format!(
                        "request {request:?} already prepared or terminal"
                    )));
                }
                let bal = ctx
                    .get_state(&acct_key(&src))
                    .ok_or_else(|| FabricError::ChaincodeError(format!("unknown account {src:?}")))
                    .and_then(|v| parse_u64(&v, "balance"))?;
                if bal < amount {
                    return Err(FabricError::ChaincodeError(format!(
                        "insufficient funds: {src:?} has {bal}, needs {amount}"
                    )));
                }
                ctx.put_state(acct_key(&src), u64_be(bal - amount));
                ctx.put_state(lock_key(&request), leg_value(&src, amount));
                Ok(vec![])
            }
            "prepare_credit" => {
                if ctx.get_state(POISON_KEY).is_some() {
                    return Err(FabricError::ChaincodeError(
                        "shard votes abort (poisoned)".into(),
                    ));
                }
                let request = arg_str(args, 0)?;
                let dst = arg_str(args, 1)?;
                let amount = parse_u64(arg(args, 2)?, "credit amount")?;
                if ctx.get_state(&fin_key(&request)).is_some()
                    || ctx.get_state(&lock_key(&request)).is_some()
                    || ctx.get_state(&pend_key(&request)).is_some()
                {
                    return Err(FabricError::ChaincodeError(format!(
                        "request {request:?} already prepared or terminal"
                    )));
                }
                if ctx.get_state(&acct_key(&dst)).is_none() {
                    return Err(FabricError::ChaincodeError(format!(
                        "unknown account {dst:?}"
                    )));
                }
                ctx.put_state(pend_key(&request), leg_value(&dst, amount));
                Ok(vec![])
            }
            "commit" => {
                let request = arg_str(args, 0)?;
                match ctx.get_state(&fin_key(&request)).as_deref() {
                    Some([1]) => return Ok(vec![]), // replayed decision
                    Some(_) => {
                        return Err(FabricError::ChaincodeError(format!(
                            "request {request:?} was aborted; cannot commit"
                        )))
                    }
                    None => {}
                }
                if let Some(lock) = ctx.get_state(&lock_key(&request)) {
                    // Debit side: the reserved amount leaves for good.
                    let _ = leg_amount(&lock)?;
                    ctx.delete_state(lock_key(&request));
                } else if let Some(pend) = ctx.get_state(&pend_key(&request)) {
                    let amount = leg_amount(&pend)?;
                    let dst = leg_account(&pend)?;
                    let bal = ctx
                        .get_state(&acct_key(&dst))
                        .ok_or_else(|| {
                            FabricError::ChaincodeError(format!("unknown account {dst:?}"))
                        })
                        .and_then(|v| parse_u64(&v, "balance"))?;
                    ctx.put_state(acct_key(&dst), u64_be(bal + amount));
                    ctx.delete_state(pend_key(&request));
                } else {
                    return Err(FabricError::ChaincodeError(format!(
                        "request {request:?} has no prepared leg to commit"
                    )));
                }
                ctx.put_state(fin_key(&request), vec![1]);
                Ok(vec![])
            }
            "abort" => {
                let request = arg_str(args, 0)?;
                match ctx.get_state(&fin_key(&request)).as_deref() {
                    Some([0]) => return Ok(vec![]), // replayed decision
                    Some(_) => {
                        return Err(FabricError::ChaincodeError(format!(
                            "request {request:?} was committed; cannot abort"
                        )))
                    }
                    None => {}
                }
                if let Some(lock) = ctx.get_state(&lock_key(&request)) {
                    // Refund the reservation.
                    let amount = leg_amount(&lock)?;
                    let src = leg_account(&lock)?;
                    let bal = ctx
                        .get_state(&acct_key(&src))
                        .ok_or_else(|| {
                            FabricError::ChaincodeError(format!("unknown account {src:?}"))
                        })
                        .and_then(|v| parse_u64(&v, "balance"))?;
                    ctx.put_state(acct_key(&src), u64_be(bal + amount));
                    ctx.delete_state(lock_key(&request));
                } else {
                    // Credit side or presumed abort: drop any intent and
                    // fence late prepares with the terminal marker.
                    ctx.delete_state(pend_key(&request));
                }
                ctx.put_state(fin_key(&request), vec![0]);
                Ok(vec![])
            }
            "set_poison" => {
                ctx.put_state(POISON_KEY, vec![1]);
                Ok(vec![])
            }
            "clear_poison" => {
                ctx.delete_state(POISON_KEY);
                Ok(vec![])
            }
            other => Err(FabricError::ChaincodeError(format!(
                "TransferContract: unknown function {other}"
            ))),
        }
    }
}

/// An account's balance on a shard, if the account lives there.
pub fn read_balance(state: &dyn VersionedState, acct: &str) -> Option<u64> {
    state
        .get(&acct_key(acct))
        .and_then(|v| parse_u64(&v, "balance").ok())
}

/// Sum of all account balances on a shard.
pub fn total_balances(state: &dyn VersionedState) -> u64 {
    state
        .prefix_scan("acct~")
        .into_iter()
        .filter_map(|(_, v)| parse_u64(&v, "balance").ok())
        .sum()
}

/// Sum of all in-flight debit reservations on a shard (money held by
/// unresolved 2PC locks; conservation counts it alongside balances).
pub fn locked_total(state: &dyn VersionedState) -> u64 {
    state
        .prefix_scan("lock~")
        .into_iter()
        .filter_map(|(_, v)| leg_amount(&v).ok())
        .sum()
}

/// Unresolved lock/intent records on a shard (empty once every 2PC
/// request reached its terminal state).
pub fn unresolved_requests(state: &dyn VersionedState) -> Vec<String> {
    let mut reqs: Vec<String> = state
        .prefix_scan("lock~")
        .into_iter()
        .map(|(k, _)| k["lock~".len()..].to_string())
        .chain(
            state
                .prefix_scan("pend~")
                .into_iter()
                .map(|(k, _)| k["pend~".len()..].to_string()),
        )
        .collect();
    reqs.sort();
    reqs.dedup();
    reqs
}

/// A transfer request's terminal state on a shard, if it reached one.
pub fn read_transfer_terminal(state: &dyn VersionedState, request: &str) -> Option<TerminalState> {
    match state.get(&fin_key(request)).as_deref() {
        Some([1]) => Some(TerminalState::Committed),
        Some([0]) => Some(TerminalState::Aborted),
        _ => None,
    }
}

/// Whether a request is still in the prepared (locked) state.
pub fn is_prepared(state: &dyn VersionedState, request: &str) -> bool {
    state.get(&prep_key(request)).is_some()
}

/// All committed cross-chain payload bytes on a view chain (storage
/// accounting).
pub fn committed_bytes(state: &dyn VersionedState) -> u64 {
    state
        .prefix_scan("xtx~")
        .into_iter()
        .map(|(k, v)| (k.len() + v.len()) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::endorsement::EndorsementPolicy;
    use fabric_sim::identity::{Identity, OrgId};
    use fabric_sim::FabricChain;
    use ledgerview_crypto::rng::seeded;
    use rand::rngs::StdRng;

    fn chain_with(cc: &str, contract: Box<dyn Chaincode>) -> (FabricChain, Identity, StdRng) {
        let mut rng = seeded(0xC0_2DC);
        let mut chain = FabricChain::new(&["OrgA", "OrgB"], &mut rng);
        let policy = EndorsementPolicy::AllOf(chain.org_ids());
        chain.deploy(cc, contract, policy);
        let id = chain
            .enroll(&OrgId::new("OrgA"), "tester", &mut rng)
            .unwrap();
        (chain, id, rng)
    }

    fn call(
        chain: &mut FabricChain,
        id: &Identity,
        rng: &mut StdRng,
        cc: &str,
        function: &str,
        args: &[&str],
    ) -> Result<(), FabricError> {
        let args: Vec<Vec<u8>> = args.iter().map(|a| a.as_bytes().to_vec()).collect();
        chain.invoke_commit(id, cc, function, args, rng).map(|_| ())
    }

    fn xfer(
        chain: &mut FabricChain,
        id: &Identity,
        rng: &mut StdRng,
        function: &str,
        request: &str,
        acct: &str,
        amount: u64,
    ) -> Result<(), FabricError> {
        let args = vec![
            request.as_bytes().to_vec(),
            acct.as_bytes().to_vec(),
            amount.to_be_bytes().to_vec(),
        ];
        chain
            .invoke_commit(id, TRANSFER_CC, function, args, rng)
            .map(|_| ())
    }

    fn open(
        chain: &mut FabricChain,
        id: &Identity,
        rng: &mut StdRng,
        acct: &str,
        amount: u64,
    ) -> Result<(), FabricError> {
        let args = vec![acct.as_bytes().to_vec(), amount.to_be_bytes().to_vec()];
        chain
            .invoke_commit(id, TRANSFER_CC, "open", args, rng)
            .map(|_| ())
    }

    #[test]
    fn shard_commit_double_delivery_is_idempotent() {
        let (mut chain, id, mut rng) = chain_with(SHARD_CC, Box::new(ShardContract));
        call(
            &mut chain,
            &id,
            &mut rng,
            SHARD_CC,
            "prepare",
            &["r1", "payload"],
        )
        .unwrap();
        assert!(is_prepared(chain.state(), "r1"));
        call(&mut chain, &id, &mut rng, SHARD_CC, "commit", &["r1"]).unwrap();
        // A crash-replayed decision delivers commit a second time: no-op.
        call(&mut chain, &id, &mut rng, SHARD_CC, "commit", &["r1"]).unwrap();
        assert!(!is_prepared(chain.state(), "r1"));
        assert_eq!(
            read_terminal_state(chain.state(), "r1"),
            Some(TerminalState::Committed)
        );
        assert_eq!(
            read_committed_payload(chain.state(), "r1").as_deref(),
            Some(b"payload".as_slice())
        );
        // But flipping the decision is rejected.
        assert!(call(&mut chain, &id, &mut rng, SHARD_CC, "abort", &["r1"]).is_err());
    }

    #[test]
    fn shard_abort_double_delivery_is_idempotent() {
        let (mut chain, id, mut rng) = chain_with(SHARD_CC, Box::new(ShardContract));
        call(&mut chain, &id, &mut rng, SHARD_CC, "prepare", &["r2", "p"]).unwrap();
        call(&mut chain, &id, &mut rng, SHARD_CC, "abort", &["r2"]).unwrap();
        call(&mut chain, &id, &mut rng, SHARD_CC, "abort", &["r2"]).unwrap();
        assert!(!is_prepared(chain.state(), "r2"));
        assert_eq!(
            read_terminal_state(chain.state(), "r2"),
            Some(TerminalState::Aborted)
        );
        assert!(read_committed_payload(chain.state(), "r2").is_none());
        assert!(call(&mut chain, &id, &mut rng, SHARD_CC, "commit", &["r2"]).is_err());
    }

    #[test]
    fn shard_presumed_abort_fences_late_prepare() {
        let (mut chain, id, mut rng) = chain_with(SHARD_CC, Box::new(ShardContract));
        // Abort arrives before any prepare (coordinator timed the request
        // out while this shard was partitioned away).
        call(&mut chain, &id, &mut rng, SHARD_CC, "abort", &["r3"]).unwrap();
        assert_eq!(
            read_terminal_state(chain.state(), "r3"),
            Some(TerminalState::Aborted)
        );
        // The delayed prepare must not re-lock a decided request.
        assert!(call(&mut chain, &id, &mut rng, SHARD_CC, "prepare", &["r3", "p"]).is_err());
        assert!(!is_prepared(chain.state(), "r3"));
    }

    #[test]
    fn transfer_commit_and_abort_double_delivery() {
        let (mut chain, id, mut rng) = chain_with(TRANSFER_CC, Box::new(TransferContract));
        open(&mut chain, &id, &mut rng, "alice", 100).unwrap();
        open(&mut chain, &id, &mut rng, "bob", 50).unwrap();

        // Debit leg commit, delivered twice.
        xfer(
            &mut chain,
            &id,
            &mut rng,
            "prepare_debit",
            "t1",
            "alice",
            30,
        )
        .unwrap();
        assert_eq!(read_balance(chain.state(), "alice"), Some(70));
        assert_eq!(locked_total(chain.state()), 30);
        xfer(&mut chain, &id, &mut rng, "commit", "t1", "", 0).unwrap();
        xfer(&mut chain, &id, &mut rng, "commit", "t1", "", 0).unwrap();
        assert_eq!(read_balance(chain.state(), "alice"), Some(70));
        assert_eq!(locked_total(chain.state()), 0);
        assert_eq!(
            read_transfer_terminal(chain.state(), "t1"),
            Some(TerminalState::Committed)
        );
        assert!(xfer(&mut chain, &id, &mut rng, "abort", "t1", "", 0).is_err());

        // Credit leg abort, delivered twice: the credit never lands.
        xfer(&mut chain, &id, &mut rng, "prepare_credit", "t2", "bob", 30).unwrap();
        xfer(&mut chain, &id, &mut rng, "abort", "t2", "", 0).unwrap();
        xfer(&mut chain, &id, &mut rng, "abort", "t2", "", 0).unwrap();
        assert_eq!(read_balance(chain.state(), "bob"), Some(50));
        assert_eq!(
            read_transfer_terminal(chain.state(), "t2"),
            Some(TerminalState::Aborted)
        );
        assert!(xfer(&mut chain, &id, &mut rng, "commit", "t2", "", 0).is_err());
        assert!(unresolved_requests(chain.state()).is_empty());
    }

    #[test]
    fn transfer_abort_refunds_and_conserves() {
        let (mut chain, id, mut rng) = chain_with(TRANSFER_CC, Box::new(TransferContract));
        open(&mut chain, &id, &mut rng, "carol", 40).unwrap();
        xfer(
            &mut chain,
            &id,
            &mut rng,
            "prepare_debit",
            "t9",
            "carol",
            25,
        )
        .unwrap();
        assert_eq!(
            total_balances(chain.state()) + locked_total(chain.state()),
            40
        );
        xfer(&mut chain, &id, &mut rng, "abort", "t9", "", 0).unwrap();
        assert_eq!(read_balance(chain.state(), "carol"), Some(40));
        assert_eq!(locked_total(chain.state()), 0);
        // Insufficient funds votes abort at endorsement time.
        assert!(xfer(
            &mut chain,
            &id,
            &mut rng,
            "prepare_debit",
            "t10",
            "carol",
            41
        )
        .is_err());
        // Presumed abort fences the late prepare.
        xfer(&mut chain, &id, &mut rng, "abort", "t11", "", 0).unwrap();
        assert!(xfer(
            &mut chain,
            &id,
            &mut rng,
            "prepare_debit",
            "t11",
            "carol",
            5
        )
        .is_err());
        assert_eq!(total_balances(chain.state()), 40);
    }

    #[test]
    fn transfer_single_shard_fast_path() {
        let (mut chain, id, mut rng) = chain_with(TRANSFER_CC, Box::new(TransferContract));
        open(&mut chain, &id, &mut rng, "a", 10).unwrap();
        open(&mut chain, &id, &mut rng, "b", 0).unwrap();
        let args = vec![b"a".to_vec(), b"b".to_vec(), 7u64.to_be_bytes().to_vec()];
        chain
            .invoke_commit(&id, TRANSFER_CC, "transfer", args, &mut rng)
            .unwrap();
        assert_eq!(read_balance(chain.state(), "a"), Some(3));
        assert_eq!(read_balance(chain.state(), "b"), Some(7));
        let args = vec![b"a".to_vec(), b"b".to_vec(), 99u64.to_be_bytes().to_vec()];
        assert!(chain
            .invoke_commit(&id, TRANSFER_CC, "transfer", args, &mut rng)
            .is_err());
    }
}

//! The coordinator and participant smart contracts.

use fabric_sim::chaincode::{Chaincode, TxContext};
use fabric_sim::statedb::VersionedState;
use fabric_sim::FabricError;

/// Chaincode name of the coordinator (deployed on the main chain).
pub const COORDINATOR_CC: &str = "xc.coordinator";
/// Chaincode name of the participant (deployed on each view chain).
pub const SHARD_CC: &str = "xc.shard";

fn arg(args: &[Vec<u8>], i: usize) -> Result<&[u8], FabricError> {
    args.get(i)
        .map(|a| a.as_slice())
        .ok_or_else(|| FabricError::Malformed(format!("missing argument {i}")))
}

fn arg_str(args: &[Vec<u8>], i: usize) -> Result<String, FabricError> {
    String::from_utf8(arg(args, i)?.to_vec())
        .map_err(|_| FabricError::Malformed(format!("argument {i} not UTF-8")))
}

/// Coordinator states recorded on the main chain per request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoordState {
    /// Prepares issued, outcome pending.
    Begun,
    /// Global commit decided.
    Committed,
    /// Global abort decided.
    Aborted,
}

impl CoordState {
    fn to_byte(self) -> u8 {
        match self {
            CoordState::Begun => 0,
            CoordState::Committed => 1,
            CoordState::Aborted => 2,
        }
    }

    fn from_byte(b: u8) -> Option<CoordState> {
        Some(match b {
            0 => CoordState::Begun,
            1 => CoordState::Committed,
            2 => CoordState::Aborted,
            _ => return None,
        })
    }
}

fn coord_key(request: &str) -> String {
    format!("2pc~{request}")
}

/// The 2PC coordinator contract: records `begin` and the final decision
/// for each cross-chain request (write-ahead decision log on the ledger).
pub struct CoordinatorContract;

impl Chaincode for CoordinatorContract {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, FabricError> {
        match function {
            "begin" => {
                let request = arg_str(args, 0)?;
                let key = coord_key(&request);
                if ctx.get_state(&key).is_some() {
                    return Err(FabricError::ChaincodeError(format!(
                        "request {request:?} already begun"
                    )));
                }
                ctx.put_state(key, vec![CoordState::Begun.to_byte()]);
                Ok(vec![])
            }
            "decide" => {
                let request = arg_str(args, 0)?;
                let commit = *arg(args, 1)?
                    .first()
                    .ok_or_else(|| FabricError::Malformed("empty decision".into()))?;
                let key = coord_key(&request);
                match ctx.get_state(&key).as_deref() {
                    Some([b]) if *b == CoordState::Begun.to_byte() => {}
                    Some(_) => {
                        return Err(FabricError::ChaincodeError(format!(
                            "request {request:?} already decided"
                        )))
                    }
                    None => {
                        return Err(FabricError::ChaincodeError(format!(
                            "request {request:?} was never begun"
                        )))
                    }
                }
                let state = if commit == 1 {
                    CoordState::Committed
                } else {
                    CoordState::Aborted
                };
                ctx.put_state(key, vec![state.to_byte()]);
                Ok(vec![])
            }
            other => Err(FabricError::ChaincodeError(format!(
                "CoordinatorContract: unknown function {other}"
            ))),
        }
    }
}

/// Read a request's coordinator state from the main chain.
pub fn read_coord_state(state: &dyn VersionedState, request: &str) -> Option<CoordState> {
    state
        .get(&coord_key(request))
        .and_then(|v| v.first().copied())
        .and_then(CoordState::from_byte)
}

fn prep_key(request: &str) -> String {
    format!("prep~{request}")
}

fn committed_key(request: &str) -> String {
    format!("xtx~{request}")
}

const POISON_KEY: &str = "shard~poison";

/// The 2PC participant contract on each view blockchain.
///
/// `prepare` locks the payload; `commit` makes it visible as view data;
/// `abort` discards it. `set_poison` makes future prepares vote abort —
/// the failure-injection hook used by the atomicity tests.
pub struct ShardContract;

impl Chaincode for ShardContract {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, FabricError> {
        match function {
            "prepare" => {
                if ctx.get_state(POISON_KEY).is_some() {
                    return Err(FabricError::ChaincodeError(
                        "shard votes abort (poisoned)".into(),
                    ));
                }
                let request = arg_str(args, 0)?;
                let payload = arg(args, 1)?.to_vec();
                let key = prep_key(&request);
                if ctx.get_state(&key).is_some()
                    || ctx.get_state(&committed_key(&request)).is_some()
                {
                    return Err(FabricError::ChaincodeError(format!(
                        "request {request:?} already prepared or committed"
                    )));
                }
                ctx.put_state(key, payload);
                Ok(vec![])
            }
            "commit" => {
                let request = arg_str(args, 0)?;
                let Some(payload) = ctx.get_state(&prep_key(&request)) else {
                    return Err(FabricError::ChaincodeError(format!(
                        "request {request:?} was not prepared"
                    )));
                };
                ctx.delete_state(prep_key(&request));
                ctx.put_state(committed_key(&request), payload);
                Ok(vec![])
            }
            "abort" => {
                let request = arg_str(args, 0)?;
                if ctx.get_state(&prep_key(&request)).is_none() {
                    return Err(FabricError::ChaincodeError(format!(
                        "request {request:?} was not prepared"
                    )));
                }
                ctx.delete_state(prep_key(&request));
                Ok(vec![])
            }
            "set_poison" => {
                ctx.put_state(POISON_KEY, vec![1]);
                Ok(vec![])
            }
            "clear_poison" => {
                ctx.delete_state(POISON_KEY);
                Ok(vec![])
            }
            other => Err(FabricError::ChaincodeError(format!(
                "ShardContract: unknown function {other}"
            ))),
        }
    }
}

/// Whether a request's payload is committed (visible) on a view chain.
pub fn read_committed_payload(state: &dyn VersionedState, request: &str) -> Option<Vec<u8>> {
    state.get(&committed_key(request))
}

/// Whether a request is still in the prepared (locked) state.
pub fn is_prepared(state: &dyn VersionedState, request: &str) -> bool {
    state.get(&prep_key(request)).is_some()
}

/// All committed cross-chain payload bytes on a view chain (storage
/// accounting).
pub fn committed_bytes(state: &dyn VersionedState) -> u64 {
    state
        .prefix_scan("xtx~")
        .into_iter()
        .map(|(k, v)| (k.len() + v.len()) as u64)
        .sum()
}

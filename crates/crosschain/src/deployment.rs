//! A multi-chain deployment: the main chain plus one blockchain per view.

use fabric_sim::endorsement::EndorsementPolicy;
use fabric_sim::identity::{Identity, OrgId};
use fabric_sim::FabricChain;
use rand::RngCore;

use crate::contracts::{CoordinatorContract, ShardContract, COORDINATOR_CC, SHARD_CC};

/// One view blockchain with its submitting identity.
pub struct ViewChain {
    /// The view this chain stores.
    pub view: String,
    /// The blockchain.
    pub chain: FabricChain,
    /// Identity used to submit shard transactions.
    pub submitter: Identity,
}

/// The baseline deployment: a main (coordinator) chain and `|V|`
/// independent view blockchains.
pub struct CrossChainDeployment {
    /// The coordinator chain.
    pub main: FabricChain,
    /// Identity submitting coordinator transactions.
    pub coordinator: Identity,
    /// The per-view chains.
    pub views: Vec<ViewChain>,
}

impl CrossChainDeployment {
    /// Create a deployment with the given view names. Each chain runs two
    /// organisations with an all-of endorsement policy, matching the main
    /// deployment's endorsement strength (the baseline isolates views by
    /// chain membership, not cryptography).
    pub fn new<R: RngCore + ?Sized>(view_names: &[&str], rng: &mut R) -> CrossChainDeployment {
        let mut main = FabricChain::new(&["CoordinatorOrg", "CoordinatorOrg2"], rng);
        let policy = EndorsementPolicy::AllOf(main.org_ids());
        main.deploy(COORDINATOR_CC, Box::new(CoordinatorContract), policy);
        let coordinator = main
            .enroll(&OrgId::new("CoordinatorOrg"), "coordinator", rng)
            .expect("org exists");

        let views = view_names
            .iter()
            .map(|name| {
                let org = format!("Org-{name}");
                let org2 = format!("Org2-{name}");
                let mut chain = FabricChain::new(&[org.as_str(), org2.as_str()], rng);
                let policy = EndorsementPolicy::AllOf(chain.org_ids());
                chain.deploy(SHARD_CC, Box::new(ShardContract), policy);
                let submitter = chain
                    .enroll(&OrgId::new(&org), &format!("client-{name}"), rng)
                    .expect("org exists");
                ViewChain {
                    view: name.to_string(),
                    chain,
                    submitter,
                }
            })
            .collect();

        CrossChainDeployment {
            main,
            coordinator,
            views,
        }
    }

    /// Index of a view chain by view name.
    pub fn view_index(&self, view: &str) -> Option<usize> {
        self.views.iter().position(|v| v.view == view)
    }

    /// Total committed transactions across all chains (the `2·|V|·n`
    /// cost measured in Fig 6, plus coordinator records).
    pub fn total_onchain_txs(&self) -> u64 {
        self.main.store().committed_tx_count()
            + self
                .views
                .iter()
                .map(|v| v.chain.store().committed_tx_count())
                .sum::<u64>()
    }

    /// Total block storage across all chains (Fig 9: the baseline
    /// duplicates every payload once per view).
    pub fn total_storage_bytes(&self) -> u64 {
        self.main.store().total_bytes()
            + self
                .views
                .iter()
                .map(|v| v.chain.store().total_bytes())
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ledgerview_crypto::rng::seeded;

    #[test]
    fn deployment_builds_chains() {
        let mut rng = seeded(1);
        let dep = CrossChainDeployment::new(&["V1", "V2", "V3"], &mut rng);
        assert_eq!(dep.views.len(), 3);
        assert_eq!(dep.view_index("V2"), Some(1));
        assert_eq!(dep.view_index("nope"), None);
        assert_eq!(dep.total_onchain_txs(), 0);
    }
}

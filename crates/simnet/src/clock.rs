//! The virtual clock: [`SimTime`] instants and durations in microseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in microseconds since the start of the
/// simulation.
///
/// `SimTime` doubles as a duration type (the paper's measurements are all
/// relative intervals), with saturating arithmetic so misconfigured
/// experiments fail loudly rather than wrapping.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Value in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction, returning a duration.
    pub fn saturating_sub(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Scale a duration by an integer factor.
    pub fn scaled(self, factor: u64) -> SimTime {
        SimTime(self.0.saturating_mul(factor))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow");
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_millis(2500).as_secs_f64(), 2.5);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!((a + b).as_micros(), 14_000);
        assert_eq!((a - b).as_micros(), 6_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(b.scaled(3).as_micros(), 12_000);
    }

    #[test]
    fn saturation() {
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::MAX.scaled(2), SimTime::MAX);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_micros(5).to_string(), "5µs");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }
}

//! Geographic topology: regions and the one-way latency matrix.
//!
//! The paper deploys two peers in `europe-north1-a` and
//! `northamerica-northeast1-a` and three orderers in `asia-southeast1-a`
//! (§6, *Experimental setup*), and compares against a single-region
//! deployment (Fig 7). Latencies here are one-way microsecond figures
//! derived from published GCP inter-region round-trip times.

use crate::clock::SimTime;

/// A deployment region. The named constants match the paper's setup; any
/// number of additional regions can be expressed with [`Region`] values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Region(pub u8);

impl Region {
    /// `europe-north1-a` (peer 1 in the paper).
    pub const EUROPE_NORTH: Region = Region(0);
    /// `northamerica-northeast1-a` (peer 2 in the paper).
    pub const NA_NORTHEAST: Region = Region(1);
    /// `asia-southeast1-a` (the three orderers in the paper).
    pub const ASIA_SOUTHEAST: Region = Region(2);
}

/// One-way latencies between regions, plus a LAN latency within a region.
#[derive(Clone, Debug)]
pub struct LatencyMatrix {
    /// `latency[a][b]` = one-way latency from region a to region b.
    matrix: Vec<Vec<SimTime>>,
}

impl LatencyMatrix {
    /// Build from an explicit square matrix (entries are one-way latencies;
    /// the diagonal is the intra-region latency).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn new(matrix: Vec<Vec<SimTime>>) -> LatencyMatrix {
        for row in &matrix {
            assert_eq!(row.len(), matrix.len(), "latency matrix must be square");
        }
        LatencyMatrix { matrix }
    }

    /// A uniform matrix: every pair of distinct regions has latency
    /// `inter`, intra-region traffic has latency `intra`.
    pub fn uniform(regions: usize, intra: SimTime, inter: SimTime) -> LatencyMatrix {
        let matrix = (0..regions)
            .map(|a| {
                (0..regions)
                    .map(|b| if a == b { intra } else { inter })
                    .collect()
            })
            .collect();
        LatencyMatrix { matrix }
    }

    /// The paper's multi-region deployment: Europe, North America, Asia.
    ///
    /// One-way latencies from typical GCP RTT measurements:
    /// EU↔NA ≈ 100 ms RTT, EU↔Asia ≈ 180 ms RTT, NA↔Asia ≈ 170 ms RTT,
    /// within-region ≈ 0.5 ms RTT.
    pub fn gcp_three_regions() -> LatencyMatrix {
        let intra = SimTime::from_micros(250);
        let eu_na = SimTime::from_micros(50_000);
        let eu_as = SimTime::from_micros(90_000);
        let na_as = SimTime::from_micros(85_000);
        LatencyMatrix::new(vec![
            vec![intra, eu_na, eu_as],
            vec![eu_na, intra, na_as],
            vec![eu_as, na_as, intra],
        ])
    }

    /// The paper's single-region comparison deployment (Fig 7): all nodes
    /// in one zone, sub-millisecond latency.
    pub fn gcp_single_region() -> LatencyMatrix {
        LatencyMatrix::uniform(3, SimTime::from_micros(250), SimTime::from_micros(250))
    }

    /// One-way latency from `a` to `b`.
    ///
    /// # Panics
    /// Panics if either region is out of range for this matrix.
    pub fn latency(&self, a: Region, b: Region) -> SimTime {
        self.matrix[a.0 as usize][b.0 as usize]
    }

    /// Round-trip latency between `a` and `b`.
    pub fn rtt(&self, a: Region, b: Region) -> SimTime {
        self.latency(a, b) + self.latency(b, a)
    }

    /// Number of regions in the matrix.
    pub fn regions(&self) -> usize {
        self.matrix.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcp_matrix_is_symmetric() {
        let m = LatencyMatrix::gcp_three_regions();
        for a in 0..3u8 {
            for b in 0..3u8 {
                assert_eq!(
                    m.latency(Region(a), Region(b)),
                    m.latency(Region(b), Region(a))
                );
            }
        }
    }

    #[test]
    fn multi_region_slower_than_single() {
        let multi = LatencyMatrix::gcp_three_regions();
        let single = LatencyMatrix::gcp_single_region();
        let cross_multi = multi.latency(Region::EUROPE_NORTH, Region::ASIA_SOUTHEAST);
        let cross_single = single.latency(Region::EUROPE_NORTH, Region::ASIA_SOUTHEAST);
        assert!(cross_multi > cross_single.scaled(100));
    }

    #[test]
    fn rtt_is_twice_one_way_for_symmetric() {
        let m = LatencyMatrix::gcp_three_regions();
        let one_way = m.latency(Region::EUROPE_NORTH, Region::NA_NORTHEAST);
        assert_eq!(
            m.rtt(Region::EUROPE_NORTH, Region::NA_NORTHEAST),
            one_way.scaled(2)
        );
    }

    #[test]
    fn uniform_matrix() {
        let m = LatencyMatrix::uniform(4, SimTime::from_micros(100), SimTime::from_millis(10));
        assert_eq!(m.regions(), 4);
        assert_eq!(m.latency(Region(0), Region(0)), SimTime::from_micros(100));
        assert_eq!(m.latency(Region(0), Region(3)), SimTime::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        LatencyMatrix::new(vec![vec![SimTime::ZERO], vec![]]);
    }
}

//! FIFO queueing stations.
//!
//! A station models a resource that serves jobs one at a time (a peer's
//! validation pipeline, an orderer's consensus loop, a chaincode executor).
//! Jobs that arrive while the station is busy queue up; completion times
//! are computed analytically, so no per-queue-slot events are needed.
//! This is what produces the paper's saturation curves: past the knee,
//! latency grows with queue depth while throughput stays flat.

use crate::clock::SimTime;

/// A single-server FIFO queue with deterministic service times.
#[derive(Clone, Debug)]
pub struct FifoStation {
    /// Time at which the server becomes free.
    busy_until: SimTime,
    /// Total jobs served.
    served: u64,
    /// Total busy time accumulated (for utilization accounting).
    busy_time: SimTime,
    /// Optional bound on queue delay; jobs whose queueing delay would
    /// exceed this are rejected (models overload shedding / timeouts).
    max_queue_delay: Option<SimTime>,
}

impl Default for FifoStation {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoStation {
    /// An idle station with an unbounded queue.
    pub fn new() -> FifoStation {
        FifoStation {
            busy_until: SimTime::ZERO,
            served: 0,
            busy_time: SimTime::ZERO,
            max_queue_delay: None,
        }
    }

    /// An idle station that rejects jobs whose queueing delay would exceed
    /// `bound`.
    pub fn with_max_queue_delay(bound: SimTime) -> FifoStation {
        FifoStation {
            max_queue_delay: Some(bound),
            ..FifoStation::new()
        }
    }

    /// Submit a job arriving at `now` needing `service` time.
    ///
    /// Returns the completion time, or `None` if the job was shed because
    /// the queue bound would be exceeded.
    pub fn submit(&mut self, now: SimTime, service: SimTime) -> Option<SimTime> {
        let start = self.busy_until.max(now);
        if let Some(bound) = self.max_queue_delay {
            if start.saturating_sub(now) > bound {
                return None;
            }
        }
        let done = start + service;
        self.busy_until = done;
        self.served += 1;
        self.busy_time += service;
        Some(done)
    }

    /// Current queueing delay a job arriving at `now` would experience.
    pub fn backlog(&self, now: SimTime) -> SimTime {
        self.busy_until.saturating_sub(now)
    }

    /// Whether the station is idle at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Total jobs served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Fraction of `horizon` the station spent busy.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_time.as_micros() as f64 / horizon.as_micros() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> SimTime = SimTime::from_millis;

    #[test]
    fn idle_station_serves_immediately() {
        let mut s = FifoStation::new();
        assert_eq!(s.submit(MS(10), MS(5)), Some(MS(15)));
        assert!(s.is_idle(MS(15)));
        assert!(!s.is_idle(MS(14)));
    }

    #[test]
    fn jobs_queue_fifo() {
        let mut s = FifoStation::new();
        assert_eq!(s.submit(MS(0), MS(10)), Some(MS(10)));
        // Arrives while busy: queued behind the first.
        assert_eq!(s.submit(MS(1), MS(10)), Some(MS(20)));
        assert_eq!(s.submit(MS(2), MS(10)), Some(MS(30)));
        assert_eq!(s.backlog(MS(2)), MS(28));
        assert_eq!(s.served(), 3);
    }

    #[test]
    fn gap_between_jobs_resets_queue() {
        let mut s = FifoStation::new();
        s.submit(MS(0), MS(5));
        // Arrives after the first completed: no queueing.
        assert_eq!(s.submit(MS(100), MS(5)), Some(MS(105)));
        assert_eq!(s.backlog(MS(200)), SimTime::ZERO);
    }

    #[test]
    fn saturation_grows_latency_not_throughput() {
        // Offered load 2x capacity: completion times fall behind arrivals
        // linearly — the shape behind Fig 5's latency blow-up.
        let mut s = FifoStation::new();
        let mut last_latency = SimTime::ZERO;
        for i in 0..100u64 {
            let arrive = SimTime::from_millis(i * 5);
            let done = s.submit(arrive, MS(10)).unwrap();
            last_latency = done.saturating_sub(arrive);
        }
        // Latency grew to ~100 jobs * 5ms backlog each.
        assert!(last_latency > MS(400), "latency was {last_latency}");
        // But the server completed one job per 10 ms regardless.
        assert_eq!(s.served(), 100);
    }

    #[test]
    fn overload_shedding() {
        let mut s = FifoStation::with_max_queue_delay(MS(20));
        assert!(s.submit(MS(0), MS(10)).is_some());
        assert!(s.submit(MS(0), MS(10)).is_some()); // queue delay 10
        assert!(s.submit(MS(0), MS(10)).is_some()); // queue delay 20
        assert!(s.submit(MS(0), MS(10)).is_none()); // queue delay 30 > 20
        assert_eq!(s.served(), 3);
    }

    #[test]
    fn utilization_accounting() {
        let mut s = FifoStation::new();
        s.submit(MS(0), MS(25));
        s.submit(MS(50), MS(25));
        assert!((s.utilization(MS(100)) - 0.5).abs() < 1e-9);
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
    }
}

//! Measurement recorders used by the benchmark harness: request latency
//! distributions and committed-transaction throughput.
//!
//! Latency samples go into a `ledgerview-telemetry` log-linear
//! [`Histogram`] — the same (and only) quantile implementation the rest of
//! the stack uses, property-tested in that crate against the exact
//! nearest-rank quantile. Quantiles here are therefore approximate to one
//! bucket width (≤ 6.25 % relative error); `mean` and `max` stay exact.

use std::sync::Arc;

use ledgerview_telemetry::Histogram;

use crate::clock::SimTime;

/// Collects latency samples and reports summary statistics.
///
/// Clones share the underlying histogram, so a recorder can double as a
/// registry-backed series: build it over a registry histogram with
/// [`LatencyRecorder::over`] and the same samples show up in the
/// Prometheus exposition.
#[derive(Clone, Debug)]
pub struct LatencyRecorder {
    histogram: Arc<Histogram>,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// An empty recorder over a private histogram.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::over(Arc::new(Histogram::new()))
    }

    /// A recorder over an existing (e.g. registry-owned) histogram.
    pub fn over(histogram: Arc<Histogram>) -> LatencyRecorder {
        LatencyRecorder { histogram }
    }

    /// Record one latency sample.
    pub fn record(&mut self, latency: SimTime) {
        self.histogram.record(latency.as_micros());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.histogram.count() as usize
    }

    /// Arithmetic mean latency in milliseconds (exact; 0 if empty).
    pub fn mean_millis(&self) -> f64 {
        self.histogram.mean() / 1_000.0
    }

    /// The `q`-quantile latency in milliseconds (0 if empty). Approximate
    /// to one histogram bucket, except `q = 1.0` which is the exact max.
    ///
    /// # Panics
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile_millis(&self, q: f64) -> f64 {
        self.histogram.quantile(q) as f64 / 1_000.0
    }

    /// Maximum latency in milliseconds (exact; 0 if empty).
    pub fn max_millis(&self) -> f64 {
        self.histogram.max() as f64 / 1_000.0
    }
}

/// Counts committed operations and reports throughput over the measured
/// window.
#[derive(Clone, Debug, Default)]
pub struct ThroughputRecorder {
    committed: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl ThroughputRecorder {
    /// An empty recorder.
    pub fn new() -> ThroughputRecorder {
        ThroughputRecorder::default()
    }

    /// Record one committed operation at virtual time `at`.
    pub fn record(&mut self, at: SimTime) {
        self.committed += 1;
        if self.first.is_none() {
            self.first = Some(at);
        }
        self.last = Some(self.last.map_or(at, |l| l.max(at)));
    }

    /// Total committed operations.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Throughput in operations per second over the explicit measurement
    /// window `[start, end]`.
    pub fn tps_over(&self, start: SimTime, end: SimTime) -> f64 {
        let window = end.saturating_sub(start).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        self.committed as f64 / window
    }

    /// Throughput over the span between first and last committed operation.
    pub fn tps(&self) -> f64 {
        match (self.first, self.last) {
            (Some(f), Some(l)) if l > f => self.committed as f64 / (l - f).as_secs_f64(),
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_statistics() {
        let mut r = LatencyRecorder::new();
        for ms in [10u64, 20, 30, 40, 50] {
            r.record(SimTime::from_millis(ms));
        }
        assert_eq!(r.count(), 5);
        // Mean and max are exact; quantiles are within one bucket (6.25%).
        assert!((r.mean_millis() - 30.0).abs() < 1e-9);
        let p50 = r.quantile_millis(0.5);
        assert!((p50 - 30.0).abs() / 30.0 <= 1.0 / 16.0, "p50={p50}");
        assert!((r.quantile_millis(1.0) - 50.0).abs() < 1e-9);
        assert!((r.max_millis() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn clones_share_the_histogram() {
        let mut a = LatencyRecorder::new();
        let mut b = a.clone();
        a.record(SimTime::from_millis(5));
        b.record(SimTime::from_millis(7));
        assert_eq!(a.count(), 2);
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn registry_backed_recorder_feeds_the_registry() {
        let registry = ledgerview_telemetry::MetricsRegistry::new();
        let handle = registry.histogram("lv_simnet_request_seconds", &[]);
        let mut r = LatencyRecorder::over(handle.shared());
        r.record(SimTime::from_millis(12));
        assert_eq!(handle.histogram().count(), 1);
        assert!(registry
            .prometheus_text()
            .contains("lv_simnet_request_seconds_count 1"));
    }

    #[test]
    fn empty_recorders_report_zero() {
        let r = LatencyRecorder::new();
        assert_eq!(r.mean_millis(), 0.0);
        assert_eq!(r.quantile_millis(0.99), 0.0);
        let t = ThroughputRecorder::new();
        assert_eq!(t.tps(), 0.0);
        assert_eq!(t.committed(), 0);
    }

    #[test]
    fn throughput_over_window() {
        let mut t = ThroughputRecorder::new();
        for i in 0..100 {
            t.record(SimTime::from_millis(i * 10));
        }
        // 100 ops over [0, 990 ms] span.
        assert!((t.tps() - 100.0 / 0.99).abs() < 1e-6);
        // Explicit 2-second window.
        assert!((t.tps_over(SimTime::ZERO, SimTime::from_secs(2)) - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_out_of_range_panics() {
        let mut r = LatencyRecorder::new();
        r.record(SimTime::from_millis(1));
        r.quantile_millis(1.5);
    }
}

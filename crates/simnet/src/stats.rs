//! Measurement recorders used by the benchmark harness: request latency
//! distributions and committed-transaction throughput.

use crate::clock::SimTime;

/// Collects latency samples and reports summary statistics.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    samples: Vec<SimTime>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::default()
    }

    /// Record one latency sample.
    pub fn record(&mut self, latency: SimTime) {
        self.samples.push(latency);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean latency in milliseconds (0 if empty).
    pub fn mean_millis(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.samples.iter().map(|s| s.as_micros()).sum();
        sum as f64 / self.samples.len() as f64 / 1_000.0
    }

    /// The `q`-quantile latency in milliseconds (nearest-rank; 0 if empty).
    ///
    /// # Panics
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile_millis(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1].as_millis_f64()
    }

    /// Maximum latency in milliseconds (0 if empty).
    pub fn max_millis(&self) -> f64 {
        self.samples
            .iter()
            .max()
            .map(|s| s.as_millis_f64())
            .unwrap_or(0.0)
    }
}

/// Counts committed operations and reports throughput over the measured
/// window.
#[derive(Clone, Debug, Default)]
pub struct ThroughputRecorder {
    committed: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl ThroughputRecorder {
    /// An empty recorder.
    pub fn new() -> ThroughputRecorder {
        ThroughputRecorder::default()
    }

    /// Record one committed operation at virtual time `at`.
    pub fn record(&mut self, at: SimTime) {
        self.committed += 1;
        if self.first.is_none() {
            self.first = Some(at);
        }
        self.last = Some(self.last.map_or(at, |l| l.max(at)));
    }

    /// Total committed operations.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Throughput in operations per second over the explicit measurement
    /// window `[start, end]`.
    pub fn tps_over(&self, start: SimTime, end: SimTime) -> f64 {
        let window = end.saturating_sub(start).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        self.committed as f64 / window
    }

    /// Throughput over the span between first and last committed operation.
    pub fn tps(&self) -> f64 {
        match (self.first, self.last) {
            (Some(f), Some(l)) if l > f => self.committed as f64 / (l - f).as_secs_f64(),
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_statistics() {
        let mut r = LatencyRecorder::new();
        for ms in [10u64, 20, 30, 40, 50] {
            r.record(SimTime::from_millis(ms));
        }
        assert_eq!(r.count(), 5);
        assert!((r.mean_millis() - 30.0).abs() < 1e-9);
        assert!((r.quantile_millis(0.5) - 30.0).abs() < 1e-9);
        assert!((r.quantile_millis(1.0) - 50.0).abs() < 1e-9);
        assert!((r.max_millis() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_recorders_report_zero() {
        let r = LatencyRecorder::new();
        assert_eq!(r.mean_millis(), 0.0);
        assert_eq!(r.quantile_millis(0.99), 0.0);
        let t = ThroughputRecorder::new();
        assert_eq!(t.tps(), 0.0);
        assert_eq!(t.committed(), 0);
    }

    #[test]
    fn throughput_over_window() {
        let mut t = ThroughputRecorder::new();
        for i in 0..100 {
            t.record(SimTime::from_millis(i * 10));
        }
        // 100 ops over [0, 990 ms] span.
        assert!((t.tps() - 100.0 / 0.99).abs() < 1e-6);
        // Explicit 2-second window.
        assert!((t.tps_over(SimTime::ZERO, SimTime::from_secs(2)) - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_out_of_range_panics() {
        let mut r = LatencyRecorder::new();
        r.record(SimTime::from_millis(1));
        r.quantile_millis(1.5);
    }
}

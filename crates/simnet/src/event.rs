//! The event queue: schedule closures at virtual times and run them in
//! deterministic order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::clock::SimTime;

/// An event handler: runs against the world state and may schedule further
/// events.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Simulation<W>)>;

struct Scheduled<W> {
    time: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ties broken by insertion order for determinism.
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A discrete-event simulation over world state `W`.
///
/// The simulation owns the virtual clock and the pending-event queue; the
/// world state is threaded through every handler, so handlers never fight
/// the borrow checker over shared simulation internals.
///
/// ```
/// use ledgerview_simnet::{Simulation, SimTime};
///
/// let mut sim: Simulation<Vec<u64>> = Simulation::new();
/// sim.schedule_at(SimTime::from_millis(5), |log, sim| {
///     log.push(sim.now().as_micros());
/// });
/// let mut log = Vec::new();
/// sim.run(&mut log);
/// assert_eq!(log, vec![5_000]);
/// ```
pub struct Simulation<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled<W>>>,
    executed: u64,
}

impl<W> Default for Simulation<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Simulation<W> {
    /// Create an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` to run at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past — an event cannot rewind the clock.
    pub fn schedule_at<F>(&mut self, time: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut Simulation<W>) + 'static,
    {
        assert!(time >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            time,
            seq,
            f: Box::new(f),
        }));
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut Simulation<W>) + 'static,
    {
        let at = self.now + delay;
        self.schedule_at(at, f);
    }

    /// Run events until the queue is empty.
    pub fn run(&mut self, world: &mut W) {
        self.run_until(world, SimTime::MAX);
    }

    /// Run events with time ≤ `end`; afterwards `now() == end` unless the
    /// queue emptied earlier (then `now()` is the last event time).
    pub fn run_until(&mut self, world: &mut W, end: SimTime) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.time > end {
                self.now = end;
                return;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            debug_assert!(ev.time >= self.now, "event queue went backwards");
            self.now = ev.time;
            self.executed += 1;
            (ev.f)(world, self);
        }
        if end != SimTime::MAX {
            self.now = self.now.max(end);
        }
    }

    /// Run at most `n` more events (for step-debugging tests).
    pub fn step(&mut self, world: &mut W, n: u64) -> u64 {
        let mut done = 0;
        while done < n {
            let Some(Reverse(ev)) = self.queue.pop() else {
                break;
            };
            self.now = ev.time;
            self.executed += 1;
            (ev.f)(world, self);
            done += 1;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Simulation<Vec<u32>> = Simulation::new();
        sim.schedule_at(SimTime::from_millis(30), |log, _| log.push(3));
        sim.schedule_at(SimTime::from_millis(10), |log, _| log.push(1));
        sim.schedule_at(SimTime::from_millis(20), |log, _| log.push(2));
        let mut log = Vec::new();
        sim.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim: Simulation<Vec<u32>> = Simulation::new();
        let t = SimTime::from_millis(1);
        for i in 0..10 {
            sim.schedule_at(t, move |log, _| log.push(i));
        }
        let mut log = Vec::new();
        sim.run(&mut log);
        assert_eq!(log, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut sim: Simulation<Vec<u64>> = Simulation::new();
        sim.schedule_at(SimTime::from_millis(1), |_, sim| {
            sim.schedule_in(SimTime::from_millis(5), |log: &mut Vec<u64>, sim| {
                log.push(sim.now().as_micros());
            });
        });
        let mut log = Vec::new();
        sim.run(&mut log);
        assert_eq!(log, vec![6_000]);
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut sim: Simulation<Vec<u32>> = Simulation::new();
        sim.schedule_at(SimTime::from_millis(5), |log, _| log.push(1));
        sim.schedule_at(SimTime::from_millis(15), |log, _| log.push(2));
        let mut log = Vec::new();
        sim.run_until(&mut log, SimTime::from_millis(10));
        assert_eq!(log, vec![1]);
        assert_eq!(sim.now(), SimTime::from_millis(10));
        assert_eq!(sim.events_pending(), 1);
        sim.run(&mut log);
        assert_eq!(log, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut sim: Simulation<()> = Simulation::new();
        sim.schedule_at(SimTime::from_millis(10), |_, sim| {
            sim.schedule_at(SimTime::from_millis(5), |_, _| {});
        });
        sim.run(&mut ());
    }

    #[test]
    fn recursive_clock_ticks() {
        // A self-rescheduling event: the pattern used for block cutting.
        fn tick(count: &mut u32, sim: &mut Simulation<u32>) {
            *count += 1;
            if *count < 5 {
                sim.schedule_in(SimTime::from_secs(1), tick);
            }
        }
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule_at(SimTime::ZERO, tick);
        let mut count = 0;
        sim.run(&mut count);
        assert_eq!(count, 5);
        assert_eq!(sim.now(), SimTime::from_secs(4));
    }

    #[test]
    fn step_limits_execution() {
        let mut sim: Simulation<Vec<u32>> = Simulation::new();
        for i in 0..5 {
            sim.schedule_at(SimTime::from_millis(i as u64), move |log, _| log.push(i));
        }
        let mut log = Vec::new();
        assert_eq!(sim.step(&mut log, 2), 2);
        assert_eq!(log, vec![0, 1]);
        assert_eq!(sim.step(&mut log, 10), 3);
    }
}

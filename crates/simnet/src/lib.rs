//! Discrete-event network simulation substrate.
//!
//! The paper evaluates LedgerView on a Hyperledger Fabric network deployed
//! across three Google Cloud regions. This crate provides the equivalent
//! laboratory: a deterministic discrete-event simulator with
//!
//! * a virtual clock ([`SimTime`]) and an event queue ([`Simulation`]),
//! * a region/latency topology modelled on the paper's GCP deployment
//!   ([`topology`]),
//! * FIFO queueing stations that turn per-item service times into realistic
//!   saturation behaviour ([`station`]), and
//! * latency/throughput recorders used by the benchmark harness
//!   ([`stats`]).
//!
//! All computation in the blockchain substrate happens for real; only *time*
//! is virtual, so experiments are reproducible and independent of the host
//! machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod station;
pub mod stats;
pub mod topology;

pub use clock::SimTime;
pub use event::Simulation;
pub use station::FifoStation;
pub use stats::{LatencyRecorder, ThroughputRecorder};
pub use topology::{LatencyMatrix, Region};

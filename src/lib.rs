//! # LedgerView
//!
//! A from-scratch Rust reproduction of *LedgerView: Access-Control Views
//! on Hyperledger Fabric* (SIGMOD 2022): access-control views over a
//! permissioned blockchain, with revocable and irrevocable permissions,
//! encryption- and hash-based concealment, role-based access control, and
//! verifiable soundness and completeness.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`crypto`] — from-scratch primitives (SHA-2, AES-CTR, AEAD, X25519,
//!   Ed25519, hybrid encryption).
//! * [`simnet`] — the discrete-event network simulator.
//! * [`fabric`] — the execute-order-validate blockchain substrate
//!   (endorsement, Raft ordering, MVCC validation, state DB, private data
//!   collections).
//! * [`store`] — the durable storage engine (append-only block file, WAL,
//!   snapshot checkpoints) behind `fabric::storage`.
//! * [`statedb`] — the disk-backed LSM state engine behind
//!   `fabric::lsm` (larger-than-RAM versioned state).
//! * [`datalog`] — recursive view definitions.
//! * [`views`] — **the paper's contribution**: view managers, readers,
//!   contracts, RBAC and verification.
//! * [`crosschain`] — the one-chain-per-view 2PC baseline.
//! * [`supplychain`] — the supply-chain workload generator.
//! * [`gateway`] — the client gateway: admission control, the block-cutting
//!   submission pipeline, MVCC-conflict retry, and the million-client
//!   workload driver (see `examples/gateway_demo.rs`).
//! * [`cluster`] — the deterministic replication cluster: a Raft-driven
//!   ordering service, multi-peer block dissemination over simulated
//!   links, snapshot-shipping peer bootstrap, and scheduled fault
//!   injection (see `examples/cluster_failover.rs`).
//! * [`shard`] — sharded channels: gateway-routed multi-channel
//!   scale-out with one replication cluster per shard and cross-shard
//!   2PC transfers that survive leader kills (see
//!   `examples/sharded_transfers.rs`).
//! * [`telemetry`] — the metrics registry, span tracer and Chrome-trace /
//!   Prometheus exporters threaded through all of the above (see
//!   `examples/telemetry_dump.rs`).
//!
//! ## Quick start
//!
//! ```
//! use ledgerview::prelude::*;
//!
//! let mut rng = ledgerview::crypto::rng::seeded(7);
//! // A two-org chain with the LedgerView contracts deployed.
//! let mut chain = FabricChain::new(&["Org1", "Org2"], &mut rng);
//! let policy = EndorsementPolicy::MajorityOf(chain.org_ids());
//! ledgerview::deploy_ledgerview_contracts(&mut chain, policy);
//!
//! // Alice invokes a transaction with a secret part through the owner's
//! // view manager; Bob is granted access and reads it back, validated.
//! let owner = chain.enroll(&OrgId::new("Org1"), "owner", &mut rng).unwrap();
//! let alice = chain.enroll(&OrgId::new("Org2"), "alice", &mut rng).unwrap();
//! let mut manager: HashBasedManager = ViewManager::new(owner, false);
//! manager
//!     .create_view(&mut chain, "V", ViewPredicate::True, AccessMode::Revocable, &mut rng)
//!     .unwrap();
//! manager
//!     .invoke_with_secret(
//!         &mut chain,
//!         &alice,
//!         &ClientTransaction::new(vec![("to", AttrValue::str("W1"))], b"secret".to_vec()),
//!         &mut rng,
//!     )
//!     .unwrap();
//!
//! let bob_keys = EncryptionKeyPair::generate(&mut rng);
//! manager.grant_access(&mut chain, "V", bob_keys.public(), &mut rng).unwrap();
//! let mut bob = ViewReader::new(bob_keys);
//! bob.obtain_view_key(&chain, "V").unwrap();
//! let response = manager.query_view("V", &bob.public(), None, &mut rng).unwrap();
//! let revealed = bob.open_response(&chain, "V", &response).unwrap();
//! assert_eq!(revealed[0].secret, b"secret");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fabric_sim as fabric;
pub use fabric_store as store;
pub use ledgerview_cluster as cluster;
pub use ledgerview_core as views;
pub use ledgerview_crosschain as crosschain;
pub use ledgerview_crypto as crypto;
pub use ledgerview_datalog as datalog;
pub use ledgerview_gateway as gateway;
pub use ledgerview_shard as shard;
pub use ledgerview_simnet as simnet;
pub use ledgerview_statedb as statedb;
pub use ledgerview_supplychain as supplychain;
pub use ledgerview_telemetry as telemetry;
pub use ledgerview_workload as workload;

/// The most common imports, for examples and applications.
pub mod prelude {
    pub use fabric_sim::endorsement::EndorsementPolicy;
    pub use fabric_sim::identity::OrgId;
    pub use fabric_sim::{
        BlockValidator, FabricChain, FsyncPolicy, StorageConfig, TxId, ValidationConfig,
    };
    pub use ledgerview_core::manager::{
        AccessMode, EncryptionBasedManager, HashBasedManager, ViewManager,
    };
    pub use ledgerview_core::reader::ViewReader;
    pub use ledgerview_core::txmodel::{AttrValue, ClientTransaction};
    pub use ledgerview_core::{ViewError, ViewPredicate};
    pub use ledgerview_crypto::keys::EncryptionKeyPair;
    pub use ledgerview_gateway::{Gateway, GatewayConfig, Priority, RetryPolicy, ServiceModel};
    pub use ledgerview_telemetry::Telemetry;
}

/// Deploy the four LedgerView contracts on a chain with the given policy —
/// the boilerplate every deployment needs.
pub fn deploy_ledgerview_contracts(
    chain: &mut fabric_sim::FabricChain,
    policy: fabric_sim::endorsement::EndorsementPolicy,
) {
    use ledgerview_core::contracts::*;
    chain.deploy(INVOKE_CC, Box::new(InvokeContract), policy.clone());
    chain.deploy(
        VIEW_STORAGE_CC,
        Box::new(ViewStorageContract),
        policy.clone(),
    );
    chain.deploy(TX_LIST_CC, Box::new(TxListContract), policy.clone());
    chain.deploy(ACCESS_CC, Box::new(AccessContract), policy);
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deploy_helper_installs_all_contracts() {
        let mut rng = ledgerview_crypto::rng::seeded(1);
        let mut chain = FabricChain::new(&["Org1"], &mut rng);
        let policy = EndorsementPolicy::AnyOf(chain.org_ids());
        super::deploy_ledgerview_contracts(&mut chain, policy);
        let user = chain.enroll(&OrgId::new("Org1"), "u", &mut rng).unwrap();
        // All four contracts respond (with an error for unknown functions,
        // which proves they are deployed).
        for cc in [
            ledgerview_core::contracts::INVOKE_CC,
            ledgerview_core::contracts::VIEW_STORAGE_CC,
            ledgerview_core::contracts::TX_LIST_CC,
            ledgerview_core::contracts::ACCESS_CC,
        ] {
            let err = chain.invoke(&user, cc, "definitely_not_a_function", vec![], &mut rng);
            assert!(matches!(
                err,
                Err(fabric_sim::FabricError::ChaincodeError(_))
            ));
        }
    }
}

//! Fault injection: tampered endorsement signatures, wrong-org
//! endorsements, and truncated/corrupted wire messages must be rejected
//! with typed errors — never a panic — and the serial and parallel
//! validation pipelines must reject identically.

use fabric_sim::chaincode::{ReadEntry, RwSet, WriteEntry};
use fabric_sim::endorsement::{response_signing_bytes, EndorsementPolicy};
use fabric_sim::identity::{Certificate, Identity, Msp, OrgId};
use fabric_sim::ledger::{Block, BlockHeader, Endorsement, Transaction, TxId};
use fabric_sim::validation::TxValidation;
use fabric_sim::{BlockValidator, FabricError, StateDb, ValidationConfig, Version};
use ledgerview_crypto::rng::seeded;
use ledgerview_crypto::sha256::{sha256, Digest};

struct Fixture {
    msp: Msp,
    endorsers: Vec<Identity>,
    outsider: Identity,
}

fn fixture() -> Fixture {
    let mut rng = seeded(11);
    let mut msp = Msp::new();
    let mut endorsers = Vec::new();
    for name in ["Org1", "Org2"] {
        let org = msp.add_org(name, &mut rng);
        endorsers.push(
            msp.enroll(&org, &format!("peer0.{name}"), &mut rng)
                .unwrap(),
        );
    }
    // An identity from an org the policy does not list.
    let other = msp.add_org("OrgX", &mut rng);
    let outsider = msp.enroll(&other, "peer0.OrgX", &mut rng).unwrap();
    Fixture {
        msp,
        endorsers,
        outsider,
    }
}

fn policy_for(cc: &str) -> Option<EndorsementPolicy> {
    (cc == "cc").then(|| EndorsementPolicy::AnyOf(vec![OrgId::new("Org1"), OrgId::new("Org2")]))
}

fn endorsed_tx(n: u8, endorsers: &[&Identity]) -> Transaction {
    let rwset = RwSet {
        reads: vec![ReadEntry {
            key: format!("r{n}"),
            version: Some(Version::GENESIS),
        }],
        writes: vec![WriteEntry {
            key: format!("w{n}"),
            value: Some(vec![n]),
        }],
        private_writes: vec![],
    };
    let tx_id = TxId(sha256(&[n]));
    let response = vec![n; 4];
    let msg = response_signing_bytes(&tx_id, &rwset.digest(), &response);
    Transaction {
        tx_id,
        chaincode: "cc".into(),
        function: "f".into(),
        args: vec![vec![n], vec![n, n]],
        creator: endorsers[0].cert().clone(),
        rwset,
        response,
        endorsements: endorsers
            .iter()
            .map(|e| Endorsement {
                endorser: e.cert().clone(),
                signature: e.sign(&msg),
            })
            .collect(),
    }
}

fn seed_state(n_txs: u8) -> StateDb {
    let mut state = StateDb::new();
    for n in 0..n_txs {
        state.put(format!("r{n}"), vec![0], Version::GENESIS);
    }
    state
}

/// Every configuration rejects the same transactions for the same reasons.
fn assert_all_configs_agree(f: &Fixture, txs: &[Transaction]) -> Vec<TxValidation> {
    let reference = BlockValidator::new(ValidationConfig {
        workers: 1,
        batch_verify: false,
        sig_cache: 0,
        verify_endorsements: true,
    });
    let mut ref_state = seed_state(txs.len() as u8);
    let expected = reference.validate_and_commit(txs, &mut ref_state, 1, &f.msp, &policy_for);
    for workers in [2, 4, 8] {
        for (batch, cache) in [(true, 0usize), (true, 128), (false, 128)] {
            let validator = BlockValidator::new(ValidationConfig {
                workers,
                batch_verify: batch,
                sig_cache: cache,
                verify_endorsements: true,
            });
            let mut state = seed_state(txs.len() as u8);
            let got = validator.validate_and_commit(txs, &mut state, 1, &f.msp, &policy_for);
            assert_eq!(
                got, expected,
                "divergence at workers={workers} batch={batch} cache={cache}"
            );
            assert_eq!(state.state_digest(), ref_state.state_digest());
        }
    }
    expected
}

#[test]
fn tampered_endorsement_signatures_rejected_identically() {
    let f = fixture();
    let peers: Vec<&Identity> = f.endorsers.iter().collect();
    let mut txs: Vec<Transaction> = (0..6).map(|n| endorsed_tx(n, &peers)).collect();
    // Flip a different signature byte in half the transactions.
    for (i, tx) in txs.iter_mut().enumerate() {
        if i % 2 == 0 {
            tx.endorsements[i % 2].signature[i * 7 % 64] ^= 0x40;
        }
    }
    let outcomes = assert_all_configs_agree(&f, &txs);
    for (i, outcome) in outcomes.iter().enumerate() {
        if i % 2 == 0 {
            assert!(
                matches!(outcome, TxValidation::EndorsementFailure { reason }
                    if reason.contains("bad endorsement signature")),
                "tx {i}: {outcome:?}"
            );
        } else {
            assert_eq!(*outcome, TxValidation::Valid, "tx {i}");
        }
    }
}

#[test]
fn wrong_org_endorsements_rejected_identically() {
    let f = fixture();
    // OrgX is registered with the MSP (signatures verify) but is not in
    // the chaincode's policy: the endorsement must not satisfy it.
    let outside_only = endorsed_tx(0, &[&f.outsider]);
    // A rogue org unknown to the MSP entirely.
    let mut unknown_org = endorsed_tx(1, &[&f.endorsers[0]]);
    unknown_org.endorsements[0].endorser.org = OrgId::new("Ghost");
    // A valid transaction rides along to prove rejection is per-tx.
    let good = endorsed_tx(2, &[&f.endorsers[0], &f.endorsers[1]]);

    let outcomes = assert_all_configs_agree(&f, &[outside_only, unknown_org, good]);
    assert!(
        matches!(&outcomes[0], TxValidation::EndorsementFailure { reason }
            if reason.contains("policy")),
        "{:?}",
        outcomes[0]
    );
    assert!(
        matches!(&outcomes[1], TxValidation::EndorsementFailure { reason }
            if reason.contains("unknown org")),
        "{:?}",
        outcomes[1]
    );
    assert_eq!(outcomes[2], TxValidation::Valid);
}

#[test]
fn certificate_swap_rejected_identically() {
    let f = fixture();
    // Endorsement signed by Org1's key but presented under Org2's cert:
    // the signature does not verify against the claimed cert.
    let mut tx = endorsed_tx(0, &[&f.endorsers[0]]);
    tx.endorsements[0].endorser = f.endorsers[1].cert().clone();
    let outcomes = assert_all_configs_agree(&f, &[tx]);
    assert!(
        matches!(&outcomes[0], TxValidation::EndorsementFailure { reason }
            if reason.contains("bad endorsement signature")),
        "{:?}",
        outcomes[0]
    );
}

#[test]
fn truncated_transaction_wire_messages_never_panic() {
    let f = fixture();
    let peers: Vec<&Identity> = f.endorsers.iter().collect();
    let tx = endorsed_tx(3, &peers);
    let bytes = tx.encode();
    assert_eq!(Transaction::decode(&bytes).unwrap(), tx);
    // Every strict prefix must fail with a typed error, not a panic.
    for cut in 0..bytes.len() {
        match Transaction::decode(&bytes[..cut]) {
            Err(FabricError::Malformed(_)) => {}
            Ok(_) => panic!("prefix of {cut} bytes decoded successfully"),
            Err(other) => panic!("prefix of {cut} bytes: unexpected error {other:?}"),
        }
    }
}

#[test]
fn truncated_block_wire_messages_never_panic() {
    let f = fixture();
    let peers: Vec<&Identity> = f.endorsers.iter().collect();
    let transactions: Vec<Transaction> = (0..3).map(|n| endorsed_tx(n, &peers)).collect();
    let block = Block {
        header: BlockHeader {
            number: 4,
            prev_hash: sha256(b"prev"),
            data_hash: Block::compute_data_hash(&transactions),
            state_root: Digest::ZERO,
            timestamp_us: 99,
        },
        validity: vec![true; transactions.len()],
        transactions,
    };
    let bytes = block.encode();
    assert_eq!(Block::decode(&bytes).unwrap(), block);
    // Exhaustive prefixes are expensive for blocks; step through them.
    for cut in (0..bytes.len()).step_by(7) {
        assert!(
            matches!(Block::decode(&bytes[..cut]), Err(FabricError::Malformed(_))),
            "prefix of {cut} bytes"
        );
    }
    // Trailing garbage is also malformed.
    let mut extended = bytes.clone();
    extended.push(0);
    assert!(matches!(
        Block::decode(&extended),
        Err(FabricError::Malformed(_))
    ));
}

#[test]
fn corrupted_wire_bytes_never_panic() {
    let f = fixture();
    let tx = endorsed_tx(5, &[&f.endorsers[0]]);
    let bytes = tx.encode();
    // Flip each byte of a sliding window; decode must return (not panic),
    // and any successful decode must not be bit-identical to the original
    // unless the flip is outside the canonical fields' interpretation.
    for i in (0..bytes.len()).step_by(3) {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0xff;
        let _ = Transaction::decode(&corrupted);
    }
    // Certificates decode standalone too.
    let cert_bytes = tx.creator.to_bytes();
    assert_eq!(Certificate::from_bytes(&cert_bytes).unwrap(), tx.creator);
    for cut in 0..cert_bytes.len() {
        assert!(
            matches!(
                Certificate::from_bytes(&cert_bytes[..cut]),
                Err(FabricError::Malformed(_))
            ),
            "cert prefix of {cut} bytes"
        );
    }
}

#[test]
fn rwset_truncation_never_panics() {
    let f = fixture();
    let tx = endorsed_tx(6, &[&f.endorsers[0]]);
    let bytes = tx.rwset.to_bytes();
    assert_eq!(
        RwSet::from_bytes(&bytes).unwrap().digest(),
        tx.rwset.digest()
    );
    for cut in 0..bytes.len() {
        assert!(
            matches!(
                RwSet::from_bytes(&bytes[..cut]),
                Err(FabricError::Malformed(_))
            ),
            "rwset prefix of {cut} bytes"
        );
    }
}

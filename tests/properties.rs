//! Property-based tests (proptest) on cross-crate invariants.

use ledgerview::prelude::*;
use ledgerview::views::verify;
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_secret() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Round trip through the full stack for arbitrary secrets and
    /// destinations: whatever goes in comes out for authorized readers,
    /// and verification passes.
    #[test]
    fn arbitrary_secrets_round_trip(
        secrets in proptest::collection::vec(arb_secret(), 1..8),
        dests in proptest::collection::vec(0u8..3, 1..8),
        seed in 0u64..1000,
    ) {
        let n = secrets.len().min(dests.len());
        let mut rng = ledgerview::crypto::rng::seeded(seed);
        let mut chain = FabricChain::new(&["Org1"], &mut rng);
        let policy = EndorsementPolicy::AnyOf(chain.org_ids());
    ledgerview::deploy_ledgerview_contracts(&mut chain, policy);
        let owner = chain.enroll(&OrgId::new("Org1"), "o", &mut rng).unwrap();
        let client = chain.enroll(&OrgId::new("Org1"), "c", &mut rng).unwrap();
        let mut mgr: HashBasedManager = ViewManager::new(owner, true);
        mgr.create_view(
            &mut chain, "V", ViewPredicate::attr_eq("to", "W0"),
            AccessMode::Revocable, &mut rng,
        ).unwrap();

        let mut expect = Vec::new();
        for i in 0..n {
            let to = format!("W{}", dests[i]);
            let tx = ClientTransaction::new(
                vec![("i", AttrValue::int(i as i64)), ("to", AttrValue::str(to.clone()))],
                secrets[i].clone(),
            );
            let tid = mgr.invoke_with_secret(&mut chain, &client, &tx, &mut rng).unwrap();
            if to == "W0" { expect.push((tid, secrets[i].clone())); }
        }
        mgr.flush(&mut chain, &mut rng).unwrap();

        let kp = EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, "V", kp.public(), &mut rng).unwrap();
        let mut reader = ViewReader::new(kp);
        reader.obtain_view_key(&chain, "V").unwrap();
        let resp = mgr.query_view("V", &reader.public(), None, &mut rng).unwrap();
        let revealed = reader.open_response(&chain, "V", &resp).unwrap();

        prop_assert_eq!(revealed.len(), expect.len());
        for (tid, secret) in &expect {
            let got = revealed.iter().find(|r| &r.tid == tid).expect("present");
            prop_assert_eq!(&got.secret, secret);
        }
        let (sound, complete) =
            verify::verify_view(&chain, "V", &revealed, u64::MAX, true).unwrap();
        prop_assert!(sound.ok);
        prop_assert!(complete.ok);
    }

    /// Grant/revoke interleavings: after any sequence, exactly the current
    /// member set can obtain the view key from the chain.
    #[test]
    fn grant_revoke_interleavings(ops in proptest::collection::vec((0usize..4, any::<bool>()), 1..12)) {
        let mut rng = ledgerview::crypto::rng::seeded(4242);
        let mut chain = FabricChain::new(&["Org1"], &mut rng);
        let policy = EndorsementPolicy::AnyOf(chain.org_ids());
    ledgerview::deploy_ledgerview_contracts(&mut chain, policy);
        let owner = chain.enroll(&OrgId::new("Org1"), "o", &mut rng).unwrap();
        let mut mgr: EncryptionBasedManager = ViewManager::new(owner, false);
        mgr.create_view(&mut chain, "V", ViewPredicate::True, AccessMode::Revocable, &mut rng)
            .unwrap();

        let users: Vec<EncryptionKeyPair> =
            (0..4).map(|_| EncryptionKeyPair::generate(&mut rng)).collect();
        let mut members: HashSet<usize> = HashSet::new();
        for (user, grant) in ops {
            if grant {
                mgr.grant_access(&mut chain, "V", users[user].public(), &mut rng).unwrap();
                members.insert(user);
            } else if members.contains(&user) {
                mgr.revoke_access(&mut chain, "V", &users[user].public(), &mut rng).unwrap();
                members.remove(&user);
            } else {
                prop_assert!(mgr
                    .revoke_access(&mut chain, "V", &users[user].public(), &mut rng)
                    .is_err());
            }
            // Invariant: current members (and only they) recover K_V.
            if ledgerview::views::contracts::read_access_generation(chain.state(), "V").is_some() {
                for (i, u) in users.iter().enumerate() {
                    let mut reader = ViewReader::new(u.clone());
                    let got = reader.obtain_view_key(&chain, "V");
                    prop_assert_eq!(got.is_ok(), members.contains(&i), "user {}", i);
                }
            }
        }
    }

    /// The ledger hash chain verifies after arbitrary workloads, and any
    /// single-bit tamper in any block's transaction args breaks it.
    #[test]
    fn hash_chain_integrity(n_txs in 1usize..10, seed in 0u64..500) {
        let mut rng = ledgerview::crypto::rng::seeded(seed);
        let mut chain = FabricChain::new(&["Org1"], &mut rng);
        let policy = EndorsementPolicy::AnyOf(chain.org_ids());
    ledgerview::deploy_ledgerview_contracts(&mut chain, policy);
        let owner = chain.enroll(&OrgId::new("Org1"), "o", &mut rng).unwrap();
        let client = chain.enroll(&OrgId::new("Org1"), "c", &mut rng).unwrap();
        let mut mgr: HashBasedManager = ViewManager::new(owner, false);
        mgr.create_view(&mut chain, "V", ViewPredicate::True, AccessMode::Revocable, &mut rng)
            .unwrap();
        for i in 0..n_txs {
            mgr.invoke_with_secret(
                &mut chain,
                &client,
                &ClientTransaction::new(
                    vec![("i", AttrValue::int(i as i64))],
                    vec![seed as u8; 16],
                ),
                &mut rng,
            ).unwrap();
        }
        chain.store().verify_chain().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Concealment binding: a hash concealment only matches its own
    /// secret; AEAD decryption only succeeds under the right key.
    #[test]
    fn concealment_binding(secret in arb_secret(), other in arb_secret(), seed in any::<u64>()) {
        prop_assume!(secret != other);
        let mut rng = ledgerview::crypto::rng::seeded(seed);
        let concealed = ledgerview::views::txmodel::conceal_by_hash(&secret, &mut rng);
        let stored = ledgerview::views::txmodel::StoredTransaction {
            non_secret: Default::default(),
            concealed,
        };
        prop_assert!(stored.matches_secret(&secret, None));
        prop_assert!(!stored.matches_secret(&other, None));

        let (concealed2, key) =
            ledgerview::views::txmodel::conceal_by_encryption(&secret, &mut rng);
        let stored2 = ledgerview::views::txmodel::StoredTransaction {
            non_secret: Default::default(),
            concealed: concealed2,
        };
        prop_assert!(stored2.matches_secret(&secret, Some(&key)));
        prop_assert!(!stored2.matches_secret(&other, Some(&key)));
    }

    /// Merkle proofs: every leaf proves; no proof transplants to another
    /// index or another value.
    #[test]
    fn merkle_proof_soundness(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..24),
        probe in any::<usize>(),
    ) {
        use ledgerview::fabric::merkle::{MerkleTree, verify_inclusion};
        let tree = MerkleTree::build(&leaves);
        let root = tree.root();
        let i = probe % leaves.len();
        let proof = tree.prove(i);
        prop_assert!(verify_inclusion(&root, &leaves[i], &proof));
        // The proof must not validate a different value (unless equal).
        let mut other = leaves[i].clone();
        other.push(0xFF);
        prop_assert!(!verify_inclusion(&root, &other, &proof));
    }

    /// Wire codec: encode→decode is identity for arbitrary payloads.
    #[test]
    fn wire_round_trip(
        a in any::<u64>(),
        b in proptest::collection::vec(any::<u8>(), 0..100),
        s in "\\PC{0,40}",
    ) {
        use ledgerview::fabric::wire::{Reader, Writer};
        let mut w = Writer::new();
        w.u64(a).bytes(&b).string(&s);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(r.u64().unwrap(), a);
        prop_assert_eq!(r.bytes().unwrap(), b);
        prop_assert_eq!(r.string().unwrap(), s);
        r.finish().unwrap();
    }
}

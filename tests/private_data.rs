//! Integration: private data collections through the full chaincode
//! lifecycle — the Fabric feature the paper compares against in Fig 13 and
//! argues is insufficient for view-style access control (§2).

use ledgerview::fabric::chaincode::{Chaincode, TxContext};
use ledgerview::fabric::privdata::CollectionConfig;
use ledgerview::fabric::FabricError;
use ledgerview::prelude::*;

/// A chaincode that stores a shipment's public routing data in world state
/// and its confidential details in a private data collection. The
/// confidential value arrives via the proposal's *transient* field
/// (Fabric's mechanism): it is visible to the chaincode but never part of
/// the persisted transaction.
struct ShipmentCc;

impl Chaincode for ShipmentCc {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, FabricError> {
        match function {
            "ship" => {
                let id = String::from_utf8_lossy(&args[0]).to_string();
                let routing = args[1].clone();
                let confidential = ctx
                    .get_transient("confidential")
                    .ok_or_else(|| FabricError::ChaincodeError("missing transient field".into()))?
                    .to_vec();
                ctx.put_state(format!("ship~{id}"), routing);
                ctx.put_private("shipments-private", format!("ship~{id}"), confidential);
                Ok(vec![])
            }
            other => Err(FabricError::ChaincodeError(format!("unknown fn {other}"))),
        }
    }
}

fn transient(confidential: &[u8]) -> std::collections::BTreeMap<String, Vec<u8>> {
    [("confidential".to_string(), confidential.to_vec())].into()
}

fn setup() -> (FabricChain, fabric_sim::Identity, rand::rngs::StdRng) {
    let mut rng = ledgerview::crypto::rng::seeded(55);
    let mut chain = FabricChain::new(&["CarrierOrg", "AuditOrg"], &mut rng);
    chain.define_collection(CollectionConfig {
        name: "shipments-private".into(),
        member_orgs: vec![OrgId::new("CarrierOrg")],
    });
    let policy = EndorsementPolicy::MajorityOf(chain.org_ids());
    chain.deploy("shipments", Box::new(ShipmentCc), policy);
    let carrier = chain
        .enroll(&OrgId::new("CarrierOrg"), "carrier", &mut rng)
        .unwrap();
    (chain, carrier, rng)
}

#[test]
fn private_value_stays_off_chain_hash_on_chain() {
    let (mut chain, carrier, mut rng) = setup();
    let confidential = b"contents=battery;value=120000-USD";
    let res = chain
        .invoke_with_transient(
            &carrier,
            "shipments",
            "ship",
            vec![b"s1".to_vec(), b"from=M1;to=W1".to_vec()],
            transient(confidential),
            &mut rng,
        )
        .unwrap();
    chain.cut_block();

    // Public state holds the routing data.
    assert_eq!(
        chain.state().get("ship~s1").as_deref(),
        Some(&b"from=M1;to=W1"[..])
    );
    // The confidential value appears nowhere in blocks or public state.
    let leak = |bytes: &[u8]| {
        bytes
            .windows(confidential.len())
            .any(|w| w == confidential.as_slice())
    };
    for block in chain.store().iter() {
        for tx in &block.transactions {
            assert!(tx.args.iter().all(|a| !leak(a)) && !leak(&tx.rwset.to_bytes()));
        }
    }
    for (_, v) in chain.state().prefix_scan("") {
        assert!(!leak(&v));
    }

    // But the on-chain rwset carries the hash, and the private store can
    // verify against it.
    let (tx, valid) = chain.store().find_tx(&res.tx_id).unwrap();
    assert!(valid);
    assert_eq!(tx.rwset.private_writes.len(), 1);
    let hash = tx.rwset.private_writes[0].value_hash;
    assert!(chain
        .private()
        .verify_against_hash("shipments-private", "ship~s1", &hash)
        .unwrap());
}

#[test]
fn collection_membership_gates_reads() {
    let (mut chain, carrier, mut rng) = setup();
    chain
        .invoke_with_transient(
            &carrier,
            "shipments",
            "ship",
            vec![b"s2".to_vec(), b"r".to_vec()],
            transient(b"secret"),
            &mut rng,
        )
        .unwrap();
    chain.cut_block();
    // Members read; non-members are denied — this is org-granular, not
    // user- or attribute-granular like views (the §2 critique).
    let carrier_org = OrgId::new("CarrierOrg");
    let audit_org = OrgId::new("AuditOrg");
    assert_eq!(
        chain
            .private()
            .get("shipments-private", "ship~s2", &carrier_org)
            .unwrap(),
        Some(&b"secret"[..])
    );
    assert!(chain
        .private()
        .get("shipments-private", "ship~s2", &audit_org)
        .is_err());
}

#[test]
fn purged_private_data_leaves_hash_evidence() {
    // The paper's irrevocability argument: PDC data can be purged, so PDC
    // cannot implement irrevocable access — only the hash remains.
    let (mut chain, carrier, mut rng) = setup();
    let res = chain
        .invoke_with_transient(
            &carrier,
            "shipments",
            "ship",
            vec![b"s3".to_vec(), b"r".to_vec()],
            transient(b"will-be-purged"),
            &mut rng,
        )
        .unwrap();
    chain.cut_block();
    let (tx, _) = chain.store().find_tx(&res.tx_id).unwrap();
    let hash = tx.rwset.private_writes[0].value_hash;

    // Purge (happens peer-side; we model it on the shared store).
    // After purging, the value is unreadable even for members, but the
    // on-chain hash is still there — evidence without access.
    // Note: `private()` is read-only; purging requires a mutable handle,
    // which FabricChain does not expose publicly — mirroring that purging
    // is a peer administrative action, not a chaincode one. We verify the
    // evidence side only.
    assert_eq!(
        ledgerview::crypto::sha256::sha256(b"will-be-purged"),
        hash,
        "on-chain hash pins the (now purgeable) value"
    );
}

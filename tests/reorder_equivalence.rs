//! Differential tests for the conflict-aware cutter: reordering must be a
//! pure scheduling optimisation. Final state digests and rolling state
//! roots match the unordered pipeline, every reordered block replays as a
//! serial schedule from genesis (the serializability witness), early
//! aborts fire exactly on transactions that would fail MVCC under *any*
//! intra-block order, and equal seeds reproduce bit-identical runs.

use ledgerview::crypto::sha256::Digest;
use ledgerview::fabric::chaincode::{ReadEntry, RwSet, WriteEntry};
use ledgerview::fabric::statedb::{StateDb, Version};
use ledgerview::fabric::validation::{state_root_from_block, validate_and_commit_block};
use ledgerview::gateway::driver::counter_chain;
use ledgerview::gateway::reorder::{self, ReorderPlan};
use ledgerview::gateway::{AdmissionConfig, Operation, Priority, ReorderConfig, SubmitResult};
use ledgerview::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};

/// `incr key 1`: a read-modify-write on `key`.
fn incr(key: &str) -> Operation {
    Operation::new(
        "counter",
        "incr",
        vec![key.as_bytes().to_vec(), b"1".to_vec()],
    )
}

/// `get key`: a read-only transaction on `key`.
fn get(key: &str) -> Operation {
    Operation::new("counter", "get", vec![key.as_bytes().to_vec()])
}

/// `put key value`: a blind write (no read entry, never conflicts).
fn put(key: &str, value: &str) -> Operation {
    Operation::new(
        "counter",
        "put",
        vec![key.as_bytes().to_vec(), value.as_bytes().to_vec()],
    )
}

/// A gateway tuned so nothing is shed and every request can reach a
/// terminal commit; `reorder` selects the cutter under test. The requeue
/// budget is effectively unbounded so deferral never degrades to
/// force-scheduling (that mode is covered by the unit tests).
fn config(seed: u64, reorder: ReorderConfig) -> GatewayConfig {
    GatewayConfig {
        block_size: 4,
        block_timeout_us: 1_000,
        queue_capacity: 100_000,
        admission: AdmissionConfig {
            max_inflight_per_client: 100_000,
            ..AdmissionConfig::default()
        },
        retry: RetryPolicy {
            max_attempts: 200,
            base_backoff_us: 100,
            max_backoff_us: 2_000,
            ..RetryPolicy::default()
        },
        reorder: ReorderConfig {
            max_requeues: 100_000,
            ..reorder
        },
        seed,
        ..GatewayConfig::default()
    }
}

/// Run a workload to completion and hand back the gateway for inspection.
/// Panics unless every submission is accepted and reaches a terminal
/// completion.
fn run(seed: u64, reorder: ReorderConfig, ops: &[(u64, Operation)]) -> Gateway {
    let (chain, ids) = counter_chain(seed, 3, true);
    let mut gateway = Gateway::new(chain, ids, config(seed, reorder));
    for (client, op) in ops {
        let r = gateway.submit(0, *client, Priority::Normal, op.clone());
        assert!(matches!(r, SubmitResult::Accepted(_)), "nothing sheds");
    }
    gateway.drain(0);
    let completions = gateway.drain_completions();
    assert_eq!(completions.len(), ops.len(), "all accepted reach terminal");
    gateway
}

/// The per-block commit fingerprint that must be independent of timestamp
/// details: (tx ids in order, validity flags, rolling state root).
fn block_fingerprints(gateway: &Gateway) -> Vec<(Vec<String>, Vec<bool>, Digest)> {
    gateway
        .chain()
        .store()
        .iter()
        .map(|b| {
            (
                b.transactions.iter().map(|t| t.tx_id.to_string()).collect(),
                b.validity.clone(),
                b.header.state_root,
            )
        })
        .collect()
}

/// All committed key/value pairs (versions excluded: block composition
/// legitimately shifts them).
fn values(gateway: &Gateway) -> BTreeMap<String, Vec<u8>> {
    gateway
        .chain()
        .state()
        .prefix_scan("")
        .into_iter()
        .collect()
}

/// Replay every stored block from an empty state, exactly as crash
/// recovery does: per-block MVCC outcomes must reproduce the stored
/// validity flags, the rolling root chain must reproduce every header's
/// `state_root`, and the final full-state digest must match the live
/// chain. This is the serializability witness — the block order *is* a
/// serial schedule that produces the recorded outcomes.
fn assert_blocks_replay_serially(gateway: &Gateway) {
    let mut state = StateDb::new();
    let mut root = Digest::ZERO;
    for block in gateway.chain().store().iter() {
        let outcomes =
            validate_and_commit_block(&block.transactions, &mut state, block.header.number);
        let valid: Vec<bool> = outcomes.iter().map(|o| o.is_valid()).collect();
        assert_eq!(
            valid, block.validity,
            "serial replay outcomes diverge at block {}",
            block.header.number
        );
        root = state_root_from_block(&root, block);
        assert_eq!(
            root, block.header.state_root,
            "rolling root diverges at block {}",
            block.header.number
        );
    }
    assert_eq!(
        state.state_digest(),
        gateway.chain().state().state_digest(),
        "replayed state digest must match the live chain"
    );
}

/// With every key touched exactly once there are no dependencies, so the
/// conflict-aware cutter must reproduce the unordered pipeline *exactly*:
/// identical block composition, rolling roots, and state digest.
#[test]
fn conflict_free_workload_is_bit_identical() {
    let ops: Vec<(u64, Operation)> = (0..24u64)
        .map(|i| (i % 5, incr(&format!("unique-{i}"))))
        .collect();
    let plain = run(7, ReorderConfig::default(), &ops);
    let reordered = run(7, ReorderConfig::enabled(), &ops);

    assert_eq!(block_fingerprints(&plain), block_fingerprints(&reordered));
    assert_eq!(
        plain.chain().state().state_digest(),
        reordered.chain().state().state_digest()
    );
    assert_eq!(plain.chain().state_root(), reordered.chain().state_root());
    let s = reordered.stats();
    assert_eq!(s.reordered_pairs, 0, "no dependencies, no inversions");
    assert_eq!(s.deferrals + s.early_aborts, 0);
}

/// Two runs from the same seed with reordering enabled must be
/// bit-identical end to end: block composition, roots, digests, and every
/// pipeline counter.
#[test]
fn same_seed_reordered_runs_are_bit_identical() {
    let ops: Vec<(u64, Operation)> = (0..40u64)
        .map(|i| (i % 6, incr(&format!("hot-{}", i % 2))))
        .collect();
    let a = run(11, ReorderConfig::enabled(), &ops);
    let b = run(11, ReorderConfig::enabled(), &ops);

    assert!(a.stats().deferrals > 0, "hot keys must exercise deferral");
    assert_eq!(block_fingerprints(&a), block_fingerprints(&b));
    assert_eq!(
        a.chain().state().state_digest(),
        b.chain().state().state_digest()
    );
    assert_eq!(a.stats(), b.stats());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random contended workloads: the reordered pipeline must commit
    /// everything *without a single MVCC conflict* (prevention, where the
    /// unordered pipeline cures by retrying) and still land on exactly
    /// the per-key values of the unordered run. Every reordered block
    /// must replay as a serial schedule.
    #[test]
    fn contended_workloads_commit_equivalent_state(
        ops in proptest::collection::vec((0u64..5, 0usize..3, 0u8..3), 1..40),
        seed in 0u64..300,
    ) {
        let ops: Vec<(u64, Operation)> = ops
            .iter()
            .map(|&(client, rank, kind)| {
                let op = match kind {
                    // RMW and read-only share the `rmw-*` keyspace so
                    // readers race writers; blind puts write a constant
                    // per key so last-write-wins order is immaterial.
                    0 => incr(&format!("rmw-{rank}")),
                    1 => get(&format!("rmw-{rank}")),
                    _ => put(&format!("blind-{rank}"), &format!("v{rank}")),
                };
                (client, op)
            })
            .collect();

        let plain = run(seed, ReorderConfig::default(), &ops);
        let reordered = run(seed, ReorderConfig::enabled(), &ops);

        // Same committed values, key for key.
        prop_assert_eq!(values(&plain), values(&reordered));

        // The unordered pipeline may conflict and retry; the conflict-aware
        // cutter must never let a doomed transaction reach validation.
        let s = reordered.stats();
        prop_assert_eq!(s.conflicts, 0, "reordering prevents MVCC conflicts");
        prop_assert_eq!(s.conflict_aborted, 0);
        prop_assert_eq!(s.committed, ops.len() as u64);

        // Every block the cutter composed is a serial schedule.
        assert_blocks_replay_serially(&reordered);
        for block in reordered.chain().store().iter() {
            prop_assert!(
                block.validity.iter().all(|v| *v),
                "reordered blocks carry only valid transactions"
            );
        }
    }

    /// Early-abort soundness and completeness at the planning layer.
    /// Stage a batch whose older half was endorsed *before* a burst of
    /// direct commits bumped some key versions. The precheck verdicts the
    /// planner consumes must agree exactly with ground truth: a
    /// transaction is flagged iff replaying it alone against the committed
    /// pre-block state fails MVCC (doomed under every intra-block order —
    /// a stale read stays stale whatever runs first). Sound: nothing that
    /// would commit under the unordered path is pulled. Complete: every
    /// flagged transaction fails the unordered path (first *and* last).
    #[test]
    fn early_abort_matches_ground_truth_staleness(
        pre in proptest::collection::vec((0usize..4, 0u8..2), 1..8),
        commit_ranks in proptest::collection::vec(0usize..4, 1..4),
        post in proptest::collection::vec((0usize..4, 0u8..2), 0..8),
        seed in 0u64..200,
    ) {
        let (mut chain, ids) = counter_chain(seed, 1, true);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let key = |rank: usize| format!("k{rank}");
        let endorse = |chain: &mut FabricChain, rng: &mut StdRng, rank: usize, rmw: bool| {
            let args = if rmw {
                vec![key(rank).into_bytes(), b"1".to_vec()]
            } else {
                vec![key(rank).into_bytes()]
            };
            let f = if rmw { "incr" } else { "get" };
            chain.invoke(&ids[0], "counter", f, args, rng).expect("endorses");
        };

        // Half the batch endorsed against the old state...
        for &(rank, rmw) in &pre {
            endorse(&mut chain, &mut rng, rank, rmw == 1);
        }
        let mut batch = chain.take_pending();
        // ...then the world moves on underneath it...
        for &rank in &commit_ranks {
            chain
                .invoke_commit(
                    &ids[0],
                    "counter",
                    "incr",
                    vec![key(rank).into_bytes(), b"1".to_vec()],
                    &mut rng,
                )
                .expect("direct commit");
        }
        // ...and the younger half reads the new versions.
        for &(rank, rmw) in &post {
            endorse(&mut chain, &mut rng, rank, rmw == 1);
        }
        batch.extend(chain.take_pending());

        let doomed = chain.precheck(&batch);
        let pre_state = StateDb::materialize(chain.state());

        // Ground truth: solo replay against the committed pre-block state.
        for (i, tx) in batch.iter().enumerate() {
            let mut solo = pre_state.clone();
            let ok = validate_and_commit_block(std::slice::from_ref(tx), &mut solo, 999)[0]
                .is_valid();
            prop_assert_eq!(
                doomed[i].is_none(),
                ok,
                "precheck verdict for tx {} must equal solo-replay MVCC",
                i
            );
        }

        // Unordered path, original arrival order: soundness means every
        // transaction that commits there was *not* flagged; completeness
        // means every flagged transaction fails there too.
        let mut arrival = pre_state.clone();
        let outcomes = validate_and_commit_block(&batch, &mut arrival, 999);
        for (i, outcome) in outcomes.iter().enumerate() {
            if outcome.is_valid() {
                prop_assert!(doomed[i].is_none(), "sound: tx {} would commit", i);
            }
        }
        // A stale read is stale under any order; spot-check the reverse
        // order as a second witness.
        let reversed: Vec<_> = batch.iter().rev().cloned().collect();
        let mut rev_state = pre_state.clone();
        let rev = validate_and_commit_block(&reversed, &mut rev_state, 999);
        for (i, verdict) in doomed.iter().enumerate() {
            if verdict.is_some() {
                prop_assert!(!outcomes[i].is_valid(), "complete: tx {} doomed first-to-run", i);
                let j = batch.len() - 1 - i;
                prop_assert!(!rev[j].is_valid(), "complete: tx {} doomed last-to-run", i);
            }
        }

        // The planner pulls exactly the flagged set, and what it keeps is
        // serially valid against the pre-block state in scheduled order.
        let rwsets: Vec<&RwSet> = batch.iter().map(|t| &t.rwset).collect();
        let plan = reorder::plan(&rwsets, &doomed, &ReorderConfig::enabled(), |_| true);
        let pulled: BTreeSet<usize> = plan.early_aborts.iter().map(|(i, _)| *i).collect();
        let flagged: BTreeSet<usize> = doomed
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.as_ref().map(|_| i))
            .collect();
        prop_assert_eq!(pulled, flagged);

        let kept: Vec<_> = plan.order.iter().map(|&i| batch[i].clone()).collect();
        let mut kept_state = pre_state.clone();
        let kept_outcomes = validate_and_commit_block(&kept, &mut kept_state, 999);
        prop_assert!(
            kept_outcomes.iter().all(|o| o.is_valid()),
            "the planned schedule must be conflict-free: {:?}",
            kept_outcomes
        );
    }

    /// Adversarial dependency graphs: dense random read/write sets over a
    /// tiny keyspace maximise cycle density (write-write rings, RMW
    /// cliques, read-your-own-write chains all arise). The plan must be a
    /// deterministic exact partition of the batch, and the kept schedule
    /// must be serially valid — every reader scheduled before any writer
    /// of its keys.
    #[test]
    fn adversarial_cycle_density_plans_are_valid_partitions(
        txs in proptest::collection::vec(
            (
                proptest::collection::vec(0usize..6, 0..3),
                proptest::collection::vec(0usize..6, 0..3),
            ),
            2..24,
        ),
    ) {
        let rwsets: Vec<RwSet> = txs
            .iter()
            .map(|(reads, writes)| RwSet {
                reads: reads
                    .iter()
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .map(|k| ReadEntry {
                        key: format!("k{k}"),
                        version: Some(Version::GENESIS),
                    })
                    .collect(),
                writes: writes
                    .iter()
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .map(|k| WriteEntry {
                        key: format!("k{k}"),
                        value: Some(vec![1]),
                    })
                    .collect(),
                private_writes: vec![],
            })
            .collect();
        let refs: Vec<&RwSet> = rwsets.iter().collect();
        let doomed = vec![None; refs.len()];

        let check = |plan: &ReorderPlan, defer_allowed: bool| {
            // Exact partition: kept ⊎ deferred = batch, no duplicates.
            let mut seen: Vec<usize> = plan.order.iter().chain(&plan.deferred).copied().collect();
            seen.sort_unstable();
            let all: Vec<usize> = (0..refs.len()).collect();
            assert_eq!(seen, all, "plan must partition the batch exactly");
            assert!(plan.early_aborts.is_empty(), "nothing is doomed here");
            if !defer_allowed {
                assert!(plan.deferred.is_empty(), "defer disabled keeps everything");
            }

            // Kept schedule validity: a read of GENESIS stays valid until
            // some scheduled writer bumps the key.
            if defer_allowed {
                let mut written: BTreeSet<&str> = BTreeSet::new();
                for &i in &plan.order {
                    for r in &rwsets[i].reads {
                        assert!(
                            !written.contains(r.key.as_str()),
                            "tx {i} reads {} after a write — schedule not serial-valid",
                            r.key
                        );
                    }
                    written.extend(rwsets[i].writes.iter().map(|w| w.key.as_str()));
                }
            }
        };

        let deferring = ReorderConfig::enabled();
        let a = reorder::plan(&refs, &doomed, &deferring, |_| true);
        let b = reorder::plan(&refs, &doomed, &deferring, |_| true);
        prop_assert_eq!(&a, &b, "equal inputs must produce equal plans");
        check(&a, true);

        // With deferral off the planner degrades to in-block MVCC: every
        // transaction stays, in some deterministic order.
        let forcing = ReorderConfig {
            defer: false,
            ..ReorderConfig::enabled()
        };
        let f = reorder::plan(&refs, &doomed, &forcing, |_| true);
        check(&f, false);
    }
}

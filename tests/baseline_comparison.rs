//! Integration: LedgerView vs the cross-chain 2PC baseline on the same
//! workload — the cost relationships behind Figs 6 and 9.

use ledgerview::crosschain::{execute_request, CrossChainDeployment, CrossChainRequest};
use ledgerview::prelude::*;
use ledgerview::supplychain::{generate, Topology, WorkloadConfig};

/// Run the same 20-transfer WL1 workload through (a) revocable hash views
/// on one chain and (b) the baseline with one chain per view; compare
/// on-chain transaction counts and storage.
#[test]
fn ledgerview_beats_baseline_on_cost() {
    let topo = Topology::wl1();
    let workload = generate(
        &topo,
        &WorkloadConfig {
            items: 20,
            max_hops: 6,
            seed: 5,
            secret_bytes: 48,
        },
    );
    let transfers = &workload.transfers;

    // (a) LedgerView: one chain, per-entity revocable views, TLC batching.
    let mut rng = ledgerview::crypto::rng::seeded(50);
    let mut chain = FabricChain::new(&["Org1"], &mut rng);
    let policy = EndorsementPolicy::AnyOf(chain.org_ids());
    ledgerview::deploy_ledgerview_contracts(&mut chain, policy);
    let owner = chain
        .enroll(&OrgId::new("Org1"), "owner", &mut rng)
        .unwrap();
    let client = chain
        .enroll(&OrgId::new("Org1"), "client", &mut rng)
        .unwrap();
    let mut mgr: HashBasedManager = ViewManager::new(owner, true);
    for name in topo.node_names() {
        mgr.create_view(
            &mut chain,
            format!("V_{name}"),
            ViewPredicate::touches_entity(name),
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
    }
    let setup_txs = chain.store().committed_tx_count();
    for t in transfers {
        let tx = ClientTransaction::new(
            t.attributes()
                .iter()
                .map(|(k, v)| (k.as_str(), AttrValue::str(v.clone())))
                .collect(),
            t.secret.clone(),
        );
        mgr.invoke_with_secret(&mut chain, &client, &tx, &mut rng)
            .unwrap();
    }
    mgr.flush(&mut chain, &mut rng).unwrap();
    let lv_txs = chain.store().committed_tx_count() - setup_txs;
    let lv_bytes = chain.store().total_bytes() + chain.state().size_bytes();

    // (b) Baseline: one blockchain per entity, every transfer 2PC-inserted
    // into the chains of all entities that may see it.
    let mut rng = ledgerview::crypto::rng::seeded(51);
    let names = topo.node_names();
    let mut dep = CrossChainDeployment::new(&names, &mut rng);
    for (i, t) in transfers.iter().enumerate() {
        let req = CrossChainRequest {
            id: format!("r{i}"),
            payload: t.secret.clone(),
            views: t.visible_to(),
        };
        let outcome = execute_request(&mut dep, &req, &mut rng).unwrap();
        assert!(matches!(
            outcome,
            ledgerview::crosschain::RequestOutcome::Committed { .. }
        ));
        assert!(ledgerview::crosschain::protocol::is_atomic(&dep, &req));
    }
    let base_txs = dep.total_onchain_txs();
    let base_bytes = dep.total_storage_bytes();

    // LedgerView: ~1 on-chain tx per transfer (+ flush); baseline: 2·|V|+2.
    assert!(
        lv_txs <= transfers.len() as u64 + 3,
        "LedgerView txs: {lv_txs} for {} transfers",
        transfers.len()
    );
    assert!(
        base_txs > 3 * lv_txs,
        "baseline {base_txs} vs ledgerview {lv_txs}"
    );
    assert!(
        base_bytes > lv_bytes,
        "baseline bytes {base_bytes} vs ledgerview {lv_bytes}"
    );
}

/// 2PC keeps the view chains consistent even under participant failure —
/// and the outcome is all-or-nothing for every request.
#[test]
fn baseline_atomicity_under_failures() {
    let mut rng = ledgerview::crypto::rng::seeded(60);
    let mut dep = CrossChainDeployment::new(&["V1", "V2", "V3"], &mut rng);

    // Poison V2 after a few successful requests.
    for i in 0..3 {
        let req = CrossChainRequest {
            id: format!("ok-{i}"),
            payload: vec![i as u8; 32],
            views: vec!["V1".into(), "V2".into()],
        };
        execute_request(&mut dep, &req, &mut rng).unwrap();
        assert!(ledgerview::crosschain::protocol::is_atomic(&dep, &req));
    }
    ledgerview::crosschain::protocol::poison_view(&mut dep, "V2", &mut rng).unwrap();
    for i in 0..3 {
        let req = CrossChainRequest {
            id: format!("fail-{i}"),
            payload: vec![0xEE; 32],
            views: vec!["V1".into(), "V2".into(), "V3".into()],
        };
        let outcome = execute_request(&mut dep, &req, &mut rng).unwrap();
        assert!(matches!(
            outcome,
            ledgerview::crosschain::RequestOutcome::Aborted { .. }
        ));
        assert!(
            ledgerview::crosschain::protocol::is_atomic(&dep, &req),
            "aborted request {i} left partial state"
        );
    }
    // All chains still verify their hash chains.
    dep.main.store().verify_chain().unwrap();
    for vc in &dep.views {
        vc.chain.store().verify_chain().unwrap();
    }
}

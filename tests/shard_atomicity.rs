//! Differential property tests for the sharded deployment: random mixes
//! of single- and cross-shard transfers under random fault schedules
//! (leader kills mid-prepare, peer crashes mid-decision, orderer
//! partitions) must
//!
//! * terminate every admitted transfer — committed or aborted, never
//!   wedged in flight,
//! * preserve conservation — Σ balances + Σ locks across all shards
//!   equals Σ opened, so no leg of a 2PC transfer is ever half-applied,
//! * leave no permanently prepared lock — every request reaches a
//!   terminal state on every shard it touched,
//! * and reproduce bit-identically — the same seed and schedule yield
//!   the same per-shard state roots and the same per-transfer outcomes.

use ledgerview::shard::{ShardConfig, ShardedDeployment, TransferStatus};
use ledgerview::simnet::SimTime;
use ledgerview::store::testdir::TestDir;
use proptest::prelude::*;

const ACCOUNTS: usize = 8;
const OPEN_BALANCE: u64 = 500;

/// One scheduled transfer: accounts by index, amount, submission slot.
type Xfer = (usize, usize, u64, u64);

/// One shard's fault plan for the run.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Plan {
    None,
    /// Kill the Raft leader at the slot (mid-prepare for transfers in
    /// flight around it).
    LeaderKill(u64),
    /// Crash a committing peer at the slot, restart it 2 s later
    /// (mid-decision: the shard keeps ordering while one replica is
    /// down).
    PeerCrashRestart(u64),
    /// Partition one orderer away at the slot, heal 2 s later.
    PartitionHeal(u64),
}

fn plan(kind: u8, slot: u64) -> Plan {
    match kind % 4 {
        0 => Plan::None,
        1 => Plan::LeaderKill(slot),
        2 => Plan::PeerCrashRestart(slot),
        _ => Plan::PartitionHeal(slot),
    }
}

struct Outcome {
    roots: Vec<String>,
    statuses: Vec<TransferStatus>,
    committed: u64,
    aborted: u64,
}

/// Run one full scenario: 2 shards, the given transfers and per-shard
/// fault plans, then converge and audit.
fn run(seed: u64, transfers: &[Xfer], plans: &[Plan; 2]) -> Outcome {
    let dir = TestDir::new("shard-atomicity");
    let mut dep =
        ShardedDeployment::new(ShardConfig::new(dir.path(), 2, seed)).expect("deployment builds");

    let accounts: Vec<String> = (0..ACCOUNTS).map(|i| format!("p{i}")).collect();
    for a in &accounts {
        dep.schedule_open(SimTime::from_millis(100), a, OPEN_BALANCE);
    }

    let at = |slot: u64| SimTime::from_millis(1_000 + 100 * slot);
    for (shard, p) in plans.iter().enumerate() {
        match *p {
            Plan::None => {}
            Plan::LeaderKill(slot) => dep.schedule_leader_kill(shard, at(slot)),
            Plan::PeerCrashRestart(slot) => {
                dep.schedule_fault(shard, at(slot), ledgerview::cluster::Fault::CrashPeer(1));
                dep.schedule_fault(
                    shard,
                    at(slot) + SimTime::from_secs(2),
                    ledgerview::cluster::Fault::RestartPeer(1),
                );
            }
            Plan::PartitionHeal(slot) => {
                dep.schedule_fault(
                    shard,
                    at(slot),
                    ledgerview::cluster::Fault::Partition(vec![2]),
                );
                dep.schedule_fault(
                    shard,
                    at(slot) + SimTime::from_secs(2),
                    ledgerview::cluster::Fault::Heal,
                );
            }
        }
    }

    let mut sorted: Vec<Xfer> = transfers.to_vec();
    sorted.sort_by_key(|&(_, _, _, slot)| slot);
    for &(src, dst, amount, slot) in &sorted {
        let dst = if dst == src {
            (dst + 1) % ACCOUNTS
        } else {
            dst
        };
        dep.schedule_transfer(at(slot), &accounts[src], &accounts[dst], amount);
    }

    dep.run_until_converged(SimTime::from_secs(300))
        .expect("deployment converges under the fault schedule");
    dep.verify()
        .expect("conservation, no stranded locks, per-shard convergence");

    let report = dep.report();
    assert!(
        report
            .transfers
            .iter()
            .all(|t| t.status != TransferStatus::InFlight),
        "no transfer may stay in flight after convergence"
    );
    Outcome {
        roots: dep.state_roots().iter().map(|d| d.to_string()).collect(),
        statuses: report.transfers.iter().map(|t| t.status.clone()).collect(),
        committed: report.committed,
        aborted: report.aborted,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property: any transfer mix under any fault schedule
    /// terminates atomically, conserves money, strands no lock — and the
    /// whole run is a pure function of its seed.
    #[test]
    fn random_mixes_under_random_faults_stay_atomic_and_deterministic(
        transfers in proptest::collection::vec(
            (0usize..ACCOUNTS, 0usize..ACCOUNTS, 1u64..120, 0u64..20), 1..16),
        fault_a in (0u8..4, 0u64..18),
        fault_b in (0u8..4, 0u64..18),
        seed in 0u64..1000,
    ) {
        let plans = [plan(fault_a.0, fault_a.1), plan(fault_b.0, fault_b.1)];

        let first = run(seed, &transfers, &plans);
        prop_assert_eq!(
            first.committed + first.aborted,
            transfers.len() as u64,
            "every admitted transfer must reach a terminal outcome"
        );

        // Differential leg: the identical scenario in a fresh directory
        // must land on bit-identical per-shard state roots and the same
        // per-transfer outcomes.
        let second = run(seed, &transfers, &plans);
        prop_assert_eq!(&first.roots, &second.roots, "state roots must be bit-identical");
        prop_assert_eq!(&first.statuses, &second.statuses);
    }
}

//! Integration: the ordering service's Raft cluster driven by the
//! discrete-event simulator — messages travel with real (virtual)
//! latencies between orderer nodes, blocks replicate in order, and the
//! service survives a leader crash.

use ledgerview::fabric::raft::{NodeId, Outgoing, RaftConfig, RaftNode};
use ledgerview::simnet::{LatencyMatrix, Region, SimTime, Simulation};

/// The world: three orderers (one per simnet region for a worst case) and
/// an in-flight message counter.
struct OrdererWorld {
    nodes: Vec<RaftNode>,
    regions: Vec<Region>,
    latency: LatencyMatrix,
    crashed: Vec<bool>,
    /// Blocks delivered per node, in commit order.
    delivered: Vec<Vec<Vec<u8>>>,
}

type Sim = Simulation<OrdererWorld>;

fn send(world: &mut OrdererWorld, sim: &mut Sim, from: NodeId, outs: Vec<Outgoing>) {
    if world.crashed[from] {
        return;
    }
    for out in outs {
        if world.crashed[out.to] {
            continue;
        }
        let delay = world
            .latency
            .latency(world.regions[from], world.regions[out.to]);
        let msg = out.msg;
        let to = out.to;
        sim.schedule_in(delay, move |w: &mut OrdererWorld, s| {
            if w.crashed[to] {
                return;
            }
            let replies = w.nodes[to].handle(from, msg, s.now());
            drain_committed(w, to);
            send(w, s, to, replies);
        });
    }
}

fn drain_committed(world: &mut OrdererWorld, node: NodeId) {
    for (_, entry) in world.nodes[node].take_committed() {
        world.delivered[node].push(entry.data);
    }
}

fn tick(world: &mut OrdererWorld, sim: &mut Sim, node: NodeId, until: SimTime) {
    if sim.now() >= until {
        return;
    }
    if !world.crashed[node] {
        let outs = world.nodes[node].tick(sim.now());
        drain_committed(world, node);
        send(world, sim, node, outs);
    }
    sim.schedule_in(SimTime::from_millis(10), move |w: &mut OrdererWorld, s| {
        tick(w, s, node, until)
    });
}

fn make_world(seed: u64) -> OrdererWorld {
    let n = 3;
    // Cross-region RTTs reach ~180 ms, so the election timeout must sit
    // well above them (Raft's timing requirement).
    let config = RaftConfig {
        election_timeout_min: SimTime::from_millis(500),
        election_timeout_max: SimTime::from_millis(1000),
        heartbeat_interval: SimTime::from_millis(100),
    };
    let nodes = (0..n)
        .map(|id| {
            let peers: Vec<NodeId> = (0..n).filter(|&p| p != id).collect();
            RaftNode::new(id, peers, config.clone(), seed, SimTime::ZERO)
        })
        .collect();
    OrdererWorld {
        nodes,
        // Worst case: one orderer per region (the paper colocates them;
        // this stresses the protocol harder).
        regions: vec![
            Region::EUROPE_NORTH,
            Region::NA_NORTHEAST,
            Region::ASIA_SOUTHEAST,
        ],
        latency: LatencyMatrix::gcp_three_regions(),
        crashed: vec![false; n],
        delivered: vec![Vec::new(); n],
    }
}

fn run_until_leader(world: &mut OrdererWorld, sim: &mut Sim, deadline: SimTime) -> NodeId {
    loop {
        sim.run_until(world, sim.now() + SimTime::from_millis(50));
        if let Some(leader) = world
            .nodes
            .iter()
            .find(|n| n.is_leader() && !world.crashed[n.id()])
        {
            return leader.id();
        }
        assert!(sim.now() < deadline, "no leader elected by {deadline}");
    }
}

#[test]
fn blocks_replicate_in_order_across_regions() {
    let mut world = make_world(42);
    let mut sim: Sim = Simulation::new();
    let horizon = SimTime::from_secs(60);
    for id in 0..3 {
        sim.schedule_at(SimTime::ZERO, move |w: &mut OrdererWorld, s| {
            tick(w, s, id, horizon)
        });
    }
    let leader = run_until_leader(&mut world, &mut sim, SimTime::from_secs(30));

    // Propose 5 blocks from the leader.
    for i in 0..5u8 {
        let data = format!("block-{i}").into_bytes();
        let now = sim.now();
        let outs = world.nodes[leader].propose(data, now).expect("is leader").1;
        send(&mut world, &mut sim, leader, outs);
        sim.run_until(&mut world, sim.now() + SimTime::from_millis(500));
    }
    sim.run_until(&mut world, sim.now() + SimTime::from_secs(2));

    // Every node delivered the same 5 blocks in the same order.
    for node in 0..3 {
        drain_committed(&mut world, node);
        assert_eq!(
            world.delivered[node],
            (0..5u8)
                .map(|i| format!("block-{i}").into_bytes())
                .collect::<Vec<_>>(),
            "node {node} delivery mismatch"
        );
    }
}

#[test]
fn leader_crash_reelection_preserves_committed_blocks() {
    let mut world = make_world(7);
    let mut sim: Sim = Simulation::new();
    let horizon = SimTime::from_secs(120);
    for id in 0..3 {
        sim.schedule_at(SimTime::ZERO, move |w: &mut OrdererWorld, s| {
            tick(w, s, id, horizon)
        });
    }
    let leader = run_until_leader(&mut world, &mut sim, SimTime::from_secs(30));
    let now = sim.now();
    let outs = world.nodes[leader]
        .propose(b"pre-crash".to_vec(), now)
        .unwrap()
        .1;
    send(&mut world, &mut sim, leader, outs);
    sim.run_until(&mut world, sim.now() + SimTime::from_secs(2));
    assert!(world.nodes[leader].commit_index() >= 1);

    // Crash the leader; a new one must emerge and keep the block.
    world.crashed[leader] = true;
    let deadline = sim.now() + SimTime::from_secs(60);
    let new_leader = run_until_leader(&mut world, &mut sim, deadline);
    assert_ne!(new_leader, leader);

    let now = sim.now();
    let outs = world.nodes[new_leader]
        .propose(b"post-crash".to_vec(), now)
        .unwrap()
        .1;
    send(&mut world, &mut sim, new_leader, outs);
    sim.run_until(&mut world, sim.now() + SimTime::from_secs(2));

    drain_committed(&mut world, new_leader);
    assert_eq!(
        world.delivered[new_leader],
        vec![b"pre-crash".to_vec(), b"post-crash".to_vec()],
        "committed block lost across re-election"
    );
}

//! Gateway integration tests: differential equivalence against serial
//! application, backpressure safety, and deterministic replay.

use ledgerview::gateway::driver::{counter_chain, CounterChaincode};
use ledgerview::gateway::{
    AdmissionConfig, Completion, CompletionOutcome, GatewayStats, Operation, Priority, SubmitResult,
};
use ledgerview::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn incr(rank: usize) -> Operation {
    Operation::new(
        "counter",
        "incr",
        vec![format!("k{rank}").into_bytes(), b"1".to_vec()],
    )
}

/// A gateway tuned so nothing is shed and every conflict can retry to
/// completion (the differential tests need total acceptance).
fn permissive_config(seed: u64) -> GatewayConfig {
    GatewayConfig {
        block_size: 4,
        block_timeout_us: 1_000,
        queue_capacity: 100_000,
        admission: AdmissionConfig {
            max_inflight_per_client: 100_000,
            ..AdmissionConfig::default()
        },
        retry: RetryPolicy {
            max_attempts: 200,
            base_backoff_us: 100,
            max_backoff_us: 2_000,
            ..RetryPolicy::default()
        },
        seed,
        ..GatewayConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Differential test: N sessions racing increments through the
    /// gateway (conflicts, retries, interleaved blocks) leave the state
    /// with exactly the totals serial application produces — no increment
    /// lost, none double-applied.
    #[test]
    fn concurrent_retry_converges_to_serial_state(
        ops in proptest::collection::vec((0u64..5, 0usize..3), 1..48),
        seed in 0u64..500,
    ) {
        // Gateway run: everything submitted up front, maximally racy.
        let (chain, ids) = counter_chain(seed, 3, true);
        let mut gateway = Gateway::new(chain, ids, permissive_config(seed));
        for &(client, rank) in &ops {
            let r = gateway.submit(0, client, Priority::Normal, incr(rank));
            prop_assert!(matches!(r, SubmitResult::Accepted(_)));
        }
        gateway.drain(0);
        let completions = gateway.drain_completions();
        prop_assert_eq!(completions.len(), ops.len(), "all accepted reach terminal");
        prop_assert!(
            completions.iter().all(|c| c.outcome.is_committed()),
            "with a generous retry budget every accepted request commits"
        );

        // Serial reference: one transaction per block, no concurrency.
        let (mut serial, sids) = counter_chain(seed, 3, true);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for &(client, rank) in &ops {
            let id = &sids[(client % 3) as usize];
            serial
                .invoke_commit(id, "counter", "incr",
                    vec![format!("k{rank}").into_bytes(), b"1".to_vec()], &mut rng)
                .unwrap();
        }

        // Content digest: the counter values must match key-for-key (MVCC
        // versions legitimately differ — batching changes block numbers).
        for rank in 0..3usize {
            let key = format!("k{rank}");
            let got = gateway.chain().state().get(&key);
            let want = serial.state().get(&key);
            prop_assert_eq!(got, want, "counter {} diverged", key);
        }
    }
}

/// Backpressure: a full queue sheds new submissions, but every accepted
/// transaction still reaches exactly one terminal completion — acceptance
/// is a promise.
#[test]
fn full_queue_sheds_without_dropping_accepted_work() {
    let (chain, ids) = counter_chain(3, 4, true);
    let mut gateway = Gateway::new(
        chain,
        ids,
        GatewayConfig {
            shards: 2,
            queue_capacity: 8,
            block_size: 4,
            service: Some(ServiceModel::default()),
            admission: AdmissionConfig {
                max_inflight_per_client: 1_000,
                ..AdmissionConfig::default()
            },
            seed: 3,
            ..GatewayConfig::default()
        },
    );
    let mut accepted = Vec::new();
    let mut shed = 0u64;
    for i in 0..300u64 {
        // Everyone at t=0: the virtual server can't have endorsed anything
        // yet, so the queue must fill and overflow.
        match gateway.submit(0, i, Priority::Normal, incr((i % 13) as usize)) {
            SubmitResult::Accepted(req) => accepted.push(req),
            SubmitResult::Shed(_) => shed += 1,
        }
    }
    assert!(shed > 0, "flooding a bounded queue must shed");
    assert!(!accepted.is_empty(), "some requests fit the queue");
    assert_eq!(accepted.len() as u64 + shed, 300);

    gateway.drain(0);
    let completions = gateway.drain_completions();
    assert_eq!(
        completions.len(),
        accepted.len(),
        "every accepted request completes, nothing more"
    );
    let mut seen: Vec<u64> = completions.iter().map(|c| c.req).collect();
    seen.sort_unstable();
    let mut expected = accepted.clone();
    expected.sort_unstable();
    assert_eq!(
        seen, expected,
        "exactly one completion per accepted request"
    );
    let stats: &GatewayStats = gateway.stats();
    assert_eq!(stats.terminal(), accepted.len() as u64);
    assert_eq!(stats.shed_total(), shed);
    assert_eq!(gateway.inflight(), 0);
}

/// A contended run, fully materialised for replay comparison.
fn contended_run(seed: u64) -> (Vec<Completion>, GatewayStats, String) {
    let (chain, ids) = counter_chain(17, 3, true);
    let mut gateway = Gateway::new(chain, ids, permissive_config(seed));
    for i in 0..60u64 {
        // 60 increments across 2 keys from 6 clients: heavy conflict.
        gateway.submit(i * 10, i % 6, Priority::Normal, incr((i % 2) as usize));
    }
    gateway.drain(0);
    let completions = gateway.drain_completions();
    let stats = gateway.stats().clone();
    let root = format!("{:?}", gateway.chain().state_root());
    (completions, stats, root)
}

/// Deterministic replay: the same seed reproduces the identical retry
/// schedule — every completion (request, attempts, timestamps, outcome)
/// and the final state root — while a different seed produces a different
/// schedule.
#[test]
fn same_seed_replays_identical_retry_schedule() {
    let (a_completions, a_stats, a_root) = contended_run(11);
    let (b_completions, b_stats, b_root) = contended_run(11);
    assert!(a_stats.retries > 0, "the workload must actually retry");
    assert_eq!(a_completions, b_completions, "identical completion stream");
    assert_eq!(a_stats, b_stats);
    assert_eq!(a_root, b_root, "identical final state root");

    // A different jitter seed still commits everything, but the schedule
    // (attempt counts / completion times) differs.
    let (c_completions, c_stats, _) = contended_run(12);
    assert_eq!(c_stats.committed, a_stats.committed);
    assert_ne!(
        a_completions, c_completions,
        "different seeds must not share a retry schedule"
    );
}

/// The supply-chain generator maps onto gateway traffic: every transfer
/// committed through the pipeline, visible in the state afterwards.
#[test]
fn supplychain_workload_flows_through_gateway() {
    use ledgerview::gateway::driver::transfer_ops;
    use ledgerview::supplychain::{generate, Topology, WorkloadConfig};

    let workload = generate(
        &Topology::wl1(),
        &WorkloadConfig {
            items: 10,
            max_hops: 6,
            seed: 5,
            secret_bytes: 8,
        },
    );
    let ops = transfer_ops(&workload);
    assert_eq!(ops.len(), workload.len());

    let (chain, ids) = counter_chain(9, 2, true);
    let mut gateway = Gateway::new(chain, ids, permissive_config(9));
    for (i, op) in ops.into_iter().enumerate() {
        let r = gateway.submit(i as u64, i as u64 % 7, Priority::Normal, op);
        assert!(matches!(r, SubmitResult::Accepted(_)));
    }
    gateway.drain(0);
    let completions = gateway.drain_completions();
    assert_eq!(completions.len(), workload.len());
    assert!(completions.iter().all(|c| c.outcome.is_committed()));
    // Spot-check a transfer landed in state under item/seq.
    let t = &workload.transfers[0];
    let stored = gateway
        .chain()
        .state()
        .get(&format!("{}/{}", t.item, t.seq))
        .expect("transfer recorded");
    assert!(String::from_utf8_lossy(&stored).contains(&format!("item={}", t.item)));
}

/// Malformed operations never panic the pipeline — they shed.
#[test]
fn malformed_requests_shed_cleanly() {
    let (chain, ids) = counter_chain(1, 1, true);
    let mut gateway = Gateway::new(chain, ids, GatewayConfig::default());
    for op in [
        Operation::new("", "incr", vec![]),
        Operation::new("counter", "", vec![]),
        Operation::new("counter", "incr", vec![vec![0u8; 1 << 20]]),
    ] {
        assert!(matches!(
            gateway.submit(0, 0, Priority::Normal, op),
            SubmitResult::Shed(ledgerview::gateway::ShedReason::Malformed)
        ));
    }
    // An unknown chaincode function passes screening but aborts at
    // endorsement — a terminal outcome, not a hang or a panic.
    gateway.submit(
        0,
        0,
        Priority::Normal,
        Operation::new("counter", "frobnicate", vec![]),
    );
    gateway.drain(0);
    let done = gateway.drain_completions();
    assert_eq!(done.len(), 1);
    assert!(matches!(
        done[0].outcome,
        CompletionOutcome::EndorsementAborted { .. }
    ));
    let _ = CounterChaincode; // re-exported type stays reachable
}

//! Differential property test: the parallel validation pipeline commits
//! **byte-identical** results to the serial reference path for arbitrary
//! blocks — same per-transaction outcome vector, same state-DB contents,
//! same rolling state root — at every worker count, with and without batch
//! signature verification and the signature cache.
//!
//! Blocks are generated adversarially: overlapping keys, stale reads, blind
//! writes, deletes, tampered endorsement signatures, forged certificates,
//! endorsers outside the policy, unknown chaincodes and endorsement-free
//! transactions.

use fabric_sim::chaincode::{ReadEntry, RwSet, WriteEntry};
use fabric_sim::endorsement::{response_signing_bytes, EndorsementPolicy};
use fabric_sim::identity::{Identity, Msp, OrgId};
use fabric_sim::ledger::{Endorsement, Transaction, TxId};
use fabric_sim::validation::{next_state_root, validate_and_commit_block};
use fabric_sim::{BlockValidator, StateDb, ValidationConfig, Version};
use ledgerview_crypto::rng::seeded;
use ledgerview_crypto::sha256::{sha256, Digest};
use proptest::prelude::*;
use rand::{Rng, RngCore};

const KEYS: [&str; 6] = ["k0", "k1", "k2", "k3", "k4", "k5"];

struct Fixture {
    msp: Msp,
    endorsers: Vec<Identity>,
}

fn fixture() -> Fixture {
    let mut rng = seeded(7);
    let mut msp = Msp::new();
    let mut endorsers = Vec::new();
    for name in ["Org1", "Org2", "Org3"] {
        let org = msp.add_org(name, &mut rng);
        endorsers.push(
            msp.enroll(&org, &format!("peer0.{name}"), &mut rng)
                .unwrap(),
        );
    }
    Fixture { msp, endorsers }
}

fn policy_for(cc: &str) -> Option<EndorsementPolicy> {
    (cc == "cc").then(|| {
        EndorsementPolicy::AnyOf(vec![
            OrgId::new("Org1"),
            OrgId::new("Org2"),
            OrgId::new("Org3"),
        ])
    })
}

/// Build an initial state: a random subset of the keyspace at GENESIS.
fn initial_state(rng: &mut impl RngCore) -> StateDb {
    let mut state = StateDb::new();
    for key in KEYS {
        if rng.random_bool(0.7) {
            state.put(key.to_string(), vec![rng.random::<u8>()], Version::GENESIS);
        }
    }
    state
}

/// Generate one transaction (possibly faulty) from the seeded stream.
fn random_tx(f: &Fixture, state: &StateDb, rng: &mut impl RngCore, n: u32) -> Transaction {
    // Reads: mix of accurate-at-block-start versions (which earlier txs in
    // the block may invalidate), deliberately stale versions, and
    // absent-key reads.
    let mut reads = Vec::new();
    for key in KEYS {
        if !rng.random_bool(0.4) {
            continue;
        }
        let version = match rng.random_range(0..4u8) {
            0..=1 => state.version(key), // correct at block start
            2 => Some(Version {
                block_num: 9,
                tx_num: rng.random_range(0..3u32),
            }), // stale/fabricated
            _ => None,                   // claims the key is absent
        };
        reads.push(ReadEntry {
            key: key.to_string(),
            version,
        });
    }
    // Writes: blind writes, overwrites of read keys, and deletes.
    let mut writes = Vec::new();
    for key in KEYS {
        if !rng.random_bool(0.5) {
            continue;
        }
        writes.push(WriteEntry {
            key: key.to_string(),
            value: if rng.random_bool(0.8) {
                Some(vec![rng.random::<u8>(), rng.random::<u8>()])
            } else {
                None // delete
            },
        });
    }
    let rwset = RwSet {
        reads,
        writes,
        private_writes: vec![],
    };

    let tx_id = TxId(sha256(&n.to_be_bytes()));
    let response = vec![n as u8];
    let msg = response_signing_bytes(&tx_id, &rwset.digest(), &response);
    let n_endorsers = rng.random_range(1..=3usize);
    let mut endorsements: Vec<Endorsement> = (0..n_endorsers)
        .map(|_| {
            let e = &f.endorsers[rng.random_range(0..3usize)];
            Endorsement {
                endorser: e.cert().clone(),
                signature: e.sign(&msg),
            }
        })
        .collect();

    let mut tx = Transaction {
        tx_id,
        chaincode: "cc".into(),
        function: "f".into(),
        args: vec![],
        creator: f.endorsers[0].cert().clone(),
        rwset,
        response,
        endorsements: endorsements.clone(),
    };

    // Fault injection: each class with some probability.
    match rng.random_range(0..10u8) {
        0 => {
            // Tamper an endorsement signature.
            endorsements[0].signature[rng.random_range(0..64usize)] ^= 1;
            tx.endorsements = endorsements;
        }
        1 => {
            // Forge the certificate (subject no longer matches CA signature).
            endorsements[0].endorser.subject = "mallory".into();
            tx.endorsements = endorsements;
        }
        2 => tx.chaincode = "unknown-cc".into(),
        3 => tx.endorsements = vec![],
        4 => {
            // Endorser org unknown to the MSP.
            endorsements[0].endorser.org = OrgId::new("Rogue");
            tx.endorsements = endorsements;
        }
        _ => {}
    }
    tx
}

/// Full observable state: every key's value and version, plus the digest.
fn snapshot(state: &StateDb) -> (Vec<(String, Vec<u8>, Version)>, Digest) {
    let contents = state
        .scan_prefix("")
        .map(|(k, v)| {
            (
                k.to_string(),
                v.to_vec(),
                state.version(k).expect("listed key has a version"),
            )
        })
        .collect();
    (contents, state.state_digest())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serial vs parallel, over every configuration axis.
    #[test]
    fn parallel_pipeline_is_bit_identical_to_serial(seed in any::<u64>(), n_txs in 1usize..16) {
        let f = fixture();
        let mut rng = seeded(seed);
        let base_state = initial_state(&mut rng);
        let txs: Vec<Transaction> = (0..n_txs as u32)
            .map(|n| random_tx(&f, &base_state, &mut rng, n))
            .collect();

        // Serial reference: one worker, no batching, no cache.
        let reference = BlockValidator::new(ValidationConfig {
            workers: 1,
            batch_verify: false,
            sig_cache: 0,
            verify_endorsements: true,
        });
        let mut ref_state = initial_state(&mut seeded(seed));
        let ref_outcomes =
            reference.validate_and_commit(&txs, &mut ref_state, 5, &f.msp, &policy_for);
        let ref_snapshot = snapshot(&ref_state);
        let ref_root = next_state_root(&Digest::ZERO, &txs, &ref_outcomes);

        for workers in [1usize, 2, 4, 8] {
            for (batch, cache) in [(false, 0usize), (true, 0), (false, 64), (true, 64)] {
                let validator = BlockValidator::new(ValidationConfig {
                    workers,
                    batch_verify: batch,
                    sig_cache: cache,
                    verify_endorsements: true,
                });
                let mut state = initial_state(&mut seeded(seed));
                let outcomes =
                    validator.validate_and_commit(&txs, &mut state, 5, &f.msp, &policy_for);
                prop_assert_eq!(
                    &outcomes, &ref_outcomes,
                    "outcome mismatch: workers={} batch={} cache={}", workers, batch, cache
                );
                prop_assert_eq!(
                    snapshot(&state), ref_snapshot.clone(),
                    "state mismatch: workers={} batch={} cache={}", workers, batch, cache
                );
                let root = next_state_root(&Digest::ZERO, &txs, &outcomes);
                prop_assert_eq!(
                    root, ref_root,
                    "state root mismatch: workers={} batch={} cache={}", workers, batch, cache
                );
            }
        }
    }

    /// MVCC-only mode (endorsement checks off) must equal the seed's
    /// serial `validate_and_commit_block` exactly, at every worker count.
    #[test]
    fn mvcc_only_mode_matches_seed_reference(seed in any::<u64>(), n_txs in 1usize..16) {
        let f = fixture();
        let mut rng = seeded(seed);
        let base_state = initial_state(&mut rng);
        let txs: Vec<Transaction> = (0..n_txs as u32)
            .map(|n| random_tx(&f, &base_state, &mut rng, n))
            .collect();

        let mut ref_state = initial_state(&mut seeded(seed));
        let ref_outcomes = validate_and_commit_block(&txs, &mut ref_state, 5);
        let ref_snapshot = snapshot(&ref_state);

        for workers in [1usize, 4, 8] {
            let validator = BlockValidator::new(ValidationConfig {
                workers,
                ..ValidationConfig::default()
            });
            let mut state = initial_state(&mut seeded(seed));
            let outcomes =
                validator.validate_and_commit(&txs, &mut state, 5, &f.msp, &policy_for);
            prop_assert_eq!(&outcomes, &ref_outcomes, "workers={}", workers);
            prop_assert_eq!(snapshot(&state), ref_snapshot.clone(), "workers={}", workers);
        }
    }

    /// A shared cache reused across many blocks never changes verdicts.
    #[test]
    fn cache_reuse_across_blocks_is_sound(seed in any::<u64>()) {
        let f = fixture();
        let mut rng = seeded(seed);
        let base_state = initial_state(&mut rng);
        // Three consecutive blocks, some transactions repeated verbatim so
        // cached (including cached-invalid) entries get exercised.
        let block_a: Vec<Transaction> =
            (0..5u32).map(|n| random_tx(&f, &base_state, &mut rng, n)).collect();
        let mut block_b: Vec<Transaction> =
            (10..14u32).map(|n| random_tx(&f, &base_state, &mut rng, n)).collect();
        block_b.extend(block_a.iter().take(2).cloned());
        let blocks = [block_a.clone(), block_b, block_a];

        let cached = BlockValidator::new(ValidationConfig {
            workers: 3,
            batch_verify: true,
            sig_cache: 32, // small: forces LRU eviction traffic too
            verify_endorsements: true,
        });
        let uncached = BlockValidator::new(ValidationConfig {
            workers: 1,
            batch_verify: false,
            sig_cache: 0,
            verify_endorsements: true,
        });
        let mut state_a = initial_state(&mut seeded(seed));
        let mut state_b = initial_state(&mut seeded(seed));
        for (i, block) in blocks.iter().enumerate() {
            let got = cached.validate_and_commit(block, &mut state_a, i as u64, &f.msp, &policy_for);
            let want =
                uncached.validate_and_commit(block, &mut state_b, i as u64, &f.msp, &policy_for);
            prop_assert_eq!(got, want, "block {}", i);
        }
        prop_assert_eq!(state_a.state_digest(), state_b.state_digest());
    }
}

//! Integration: the full Fig 3 workflow for all four view methods
//! (EI, ER, HI, HR) on one chain, crossing every crate boundary.

use ledgerview::prelude::*;
use ledgerview::views::verify;
use std::collections::HashSet;

fn fresh_chain(seed: u64) -> (FabricChain, fabric_sim::Identity, fabric_sim::Identity) {
    let mut rng = ledgerview::crypto::rng::seeded(seed);
    let mut chain = FabricChain::new(&["Org1", "Org2"], &mut rng);
    let policy = EndorsementPolicy::MajorityOf(chain.org_ids());
    ledgerview::deploy_ledgerview_contracts(&mut chain, policy);
    let owner = chain
        .enroll(&OrgId::new("Org1"), "owner", &mut rng)
        .unwrap();
    let client = chain
        .enroll(&OrgId::new("Org2"), "client", &mut rng)
        .unwrap();
    (chain, owner, client)
}

fn shipments() -> Vec<ClientTransaction> {
    (0..6)
        .map(|i| {
            ClientTransaction::new(
                vec![
                    ("item", AttrValue::str(format!("item-{i}"))),
                    ("from", AttrValue::str("M1")),
                    ("to", AttrValue::str(if i % 2 == 0 { "W1" } else { "W2" })),
                ],
                format!("secret-{i}").into_bytes(),
            )
        })
        .collect()
}

/// Run the whole workflow for one (scheme, mode) combination.
fn run_workflow<S>(mode: AccessMode, seed: u64)
where
    S: ledgerview::views::manager::SecretScheme,
{
    let (mut chain, owner, client) = fresh_chain(seed);
    let mut rng = ledgerview::crypto::rng::seeded(seed + 1);
    let mut mgr: ViewManager<S> = ViewManager::new(owner, true);
    mgr.create_view(
        &mut chain,
        "V_W1",
        ViewPredicate::attr_eq("to", "W1"),
        mode,
        &mut rng,
    )
    .unwrap();

    let mut expected = Vec::new();
    for tx in shipments() {
        let tid = mgr
            .invoke_with_secret(&mut chain, &client, &tx, &mut rng)
            .unwrap();
        if tx.non_secret.get("to") == Some(&AttrValue::str("W1")) {
            expected.push((tid, tx.secret.clone()));
        }
    }
    mgr.flush(&mut chain, &mut rng).unwrap();
    assert_eq!(mgr.view_len("V_W1").unwrap(), 3);

    // Grant, read, validate.
    let bob_kp = EncryptionKeyPair::generate(&mut rng);
    mgr.grant_access(&mut chain, "V_W1", bob_kp.public(), &mut rng)
        .unwrap();
    let mut bob = ViewReader::new(bob_kp);
    bob.obtain_view_key(&chain, "V_W1").unwrap();
    let resp = mgr
        .query_view("V_W1", &bob.public(), None, &mut rng)
        .unwrap();
    let revealed = bob.open_response(&chain, "V_W1", &resp).unwrap();
    assert_eq!(revealed.len(), 3);
    for (tid, secret) in &expected {
        let got = revealed
            .iter()
            .find(|r| r.tid == *tid)
            .expect("tid present");
        assert_eq!(&got.secret, secret);
    }

    // Verification (Proposition 4.1).
    let (sound, complete) = verify::verify_view(&chain, "V_W1", &revealed, u64::MAX, true).unwrap();
    assert!(sound.ok && complete.ok);
    let tids: HashSet<TxId> = revealed.iter().map(|r| r.tid).collect();
    let scan = verify::verify_completeness_scan(&chain, "V_W1", &tids, u64::MAX).unwrap();
    assert!(scan.ok);

    // Mode-specific behaviour.
    match mode {
        AccessMode::Revocable => {
            mgr.revoke_access(&mut chain, "V_W1", &bob.public(), &mut rng)
                .unwrap();
            assert!(bob.obtain_view_key(&chain, "V_W1").is_err());
        }
        AccessMode::Irrevocable => {
            assert!(mgr
                .revoke_access(&mut chain, "V_W1", &bob.public(), &mut rng)
                .is_err());
            // Readers can fetch irrevocable data from the chain directly.
            let kind = S::kind();
            let decoded = bob.decode_view_storage(&chain, "V_W1", kind).unwrap();
            assert_eq!(decoded.entries.len(), 3);
            let revealed2 = bob.reveal(&chain, &decoded).unwrap();
            assert_eq!(revealed2.len(), 3);
        }
    }
    chain.store().verify_chain().unwrap();
}

#[test]
fn er_encryption_revocable() {
    run_workflow::<ledgerview::views::manager::EncryptionScheme>(AccessMode::Revocable, 100);
}

#[test]
fn ei_encryption_irrevocable() {
    run_workflow::<ledgerview::views::manager::EncryptionScheme>(AccessMode::Irrevocable, 200);
}

#[test]
fn hr_hash_revocable() {
    run_workflow::<ledgerview::views::manager::HashScheme>(AccessMode::Revocable, 300);
}

#[test]
fn hi_hash_irrevocable() {
    run_workflow::<ledgerview::views::manager::HashScheme>(AccessMode::Irrevocable, 400);
}

#[test]
fn one_transaction_in_many_views() {
    // A transaction included in several views at once — the channel
    // comparison of §2 ("a transaction can be included in several views
    // but only in one channel").
    let (mut chain, owner, client) = fresh_chain(500);
    let mut rng = ledgerview::crypto::rng::seeded(501);
    let mut mgr: HashBasedManager = ViewManager::new(owner, false);
    for name in ["V_M1", "V_W1", "V_item"] {
        let pred = match name {
            "V_M1" => ViewPredicate::attr_eq("from", "M1"),
            "V_W1" => ViewPredicate::attr_eq("to", "W1"),
            _ => ViewPredicate::attr_eq("item", "item-0"),
        };
        mgr.create_view(&mut chain, name, pred, AccessMode::Revocable, &mut rng)
            .unwrap();
    }
    let tid = mgr
        .invoke_with_secret(&mut chain, &client, &shipments()[0], &mut rng)
        .unwrap();
    for name in ["V_M1", "V_W1", "V_item"] {
        assert_eq!(mgr.view_tids(name).unwrap(), vec![tid], "view {name}");
    }

    // Readers of different views each decrypt the same transaction using
    // their own view key.
    for name in ["V_M1", "V_W1", "V_item"] {
        let kp = EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, name, kp.public(), &mut rng)
            .unwrap();
        let mut reader = ViewReader::new(kp);
        reader.obtain_view_key(&chain, name).unwrap();
        let resp = mgr
            .query_view(name, &reader.public(), None, &mut rng)
            .unwrap();
        let revealed = reader.open_response(&chain, name, &resp).unwrap();
        assert_eq!(revealed[0].secret, b"secret-0");
    }
}

#[test]
fn view_keys_are_independent_across_views() {
    let (mut chain, owner, client) = fresh_chain(600);
    let mut rng = ledgerview::crypto::rng::seeded(601);
    let mut mgr: EncryptionBasedManager = ViewManager::new(owner, false);
    mgr.create_view(
        &mut chain,
        "A",
        ViewPredicate::True,
        AccessMode::Revocable,
        &mut rng,
    )
    .unwrap();
    mgr.create_view(
        &mut chain,
        "B",
        ViewPredicate::attr_eq("to", "W1"),
        AccessMode::Revocable,
        &mut rng,
    )
    .unwrap();
    mgr.invoke_with_secret(&mut chain, &client, &shipments()[0], &mut rng)
        .unwrap();

    // A member of A must not be able to decrypt B's responses.
    let kp_a = EncryptionKeyPair::generate(&mut rng);
    mgr.grant_access(&mut chain, "A", kp_a.public(), &mut rng)
        .unwrap();
    let mut reader_a = ViewReader::new(kp_a);
    reader_a.obtain_view_key(&chain, "A").unwrap();
    assert!(reader_a.obtain_view_key(&chain, "B").is_err());
    assert!(mgr
        .query_view("B", &reader_a.public(), None, &mut rng)
        .is_err());
}

#[test]
fn state_digest_covers_view_data() {
    // §5.2: views are contract state under the chain's integrity. Changing
    // view data (a merge) must change the rolling state root, and the
    // on-demand full digest must prove inclusion of view entries.
    let (mut chain, owner, client) = fresh_chain(700);
    let mut rng = ledgerview::crypto::rng::seeded(701);
    let mut mgr: HashBasedManager = ViewManager::new(owner, false);
    mgr.create_view(
        &mut chain,
        "V",
        ViewPredicate::True,
        AccessMode::Irrevocable,
        &mut rng,
    )
    .unwrap();
    let root_before = chain.state_root();
    mgr.invoke_with_secret(&mut chain, &client, &shipments()[0], &mut rng)
        .unwrap();
    assert_ne!(chain.state_root(), root_before);

    // Find the view-storage key and prove it under the full state digest.
    let state = chain.state();
    let digest = state.state_digest();
    let key = state
        .prefix_scan("vs~data~V~")
        .into_iter()
        .map(|(k, _)| k)
        .next()
        .expect("merged entry exists");
    let (proof, leaf) = state.prove(&key).expect("provable");
    assert!(fabric_sim::StateDb::verify_proof(&digest, &leaf, &proof));
}

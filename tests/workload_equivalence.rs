//! Differential properties of the TPC-C-class workload harness.
//!
//! The whole pipeline — deck dealing, parameter generation, sharded
//! execution with 2PC legs, fault injection, invariant sweeps, the
//! LedgerView mirror, and the viewing-key confidential exercise — is a
//! pure function of `TpccConfig`. These tests rerun random cells
//! (including fault and views cells) from the same seed into fresh
//! storage roots and demand bit-identical `TpccReport`s: every counter,
//! every percentile, and every shard's canonical state root. They also
//! hold the scenario's own guarantees on each sampled cell: invariants
//! checked, the confidential exercise sound, and zero unauthorized view
//! reads.

use ledgerview::prelude::Telemetry;
use ledgerview::simnet::SimTime;
use ledgerview::store::testdir::TestDir;
use ledgerview::workload::{ConfidentialStore, Denial, TpccConfig, TpccReport};
use proptest::prelude::*;

/// One full harness run into a fresh storage root.
fn run_cell(
    label: &str,
    seed: u64,
    warehouses: u64,
    shards: usize,
    views: bool,
    faults: bool,
) -> TpccReport {
    let dir = TestDir::new(label);
    let mut cfg = TpccConfig::new(dir.path(), warehouses, shards, seed);
    cfg.ops = 60;
    cfg.interarrival = SimTime::from_millis(6);
    cfg.views = views;
    cfg.faults = faults;
    let telemetry = Telemetry::wall_clock();
    ledgerview::workload::run(&cfg, &telemetry).expect("run converges")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same seed, fresh storage ⇒ the same report, bit for bit — for a
    /// random cell of the sweep grid, with views and faults drawn too.
    #[test]
    fn same_seed_reruns_bit_identically(
        seed in any::<u64>(),
        warehouses in 2u64..5,
        shards in 1usize..3,
        views in any::<bool>(),
        faults in any::<bool>(),
    ) {
        let a = run_cell("wleq-a", seed, warehouses, shards, views, faults);
        let b = run_cell("wleq-b", seed, warehouses, shards, views, faults);
        prop_assert_eq!(&a, &b, "rerun diverged");

        // Each sampled cell holds the scenario guarantees on its own.
        prop_assert!(a.invariant_checks > 0);
        prop_assert_eq!(a.confidential.granted_reads, a.confidential.entries);
        prop_assert_eq!(a.confidential.no_grant_denials, 1);
        prop_assert_eq!(a.confidential.policy_denials, 1);
        prop_assert_eq!(a.confidential.bad_key_denials, 1);
        prop_assert_eq!(a.confidential.revoked_denials, 1);
        match &a.views {
            Some(v) => {
                prop_assert_eq!(v.unauthorized_reads, 0);
                prop_assert_eq!(v.owner_reads_ok, v.mirrored);
            }
            None => prop_assert!(!views),
        }
        if faults {
            // The leader kill leaves a visible trace: more leader
            // transitions than the one-per-shard startup elections.
            prop_assert!(a.elections > a.shards as u64);
        }
    }
}

/// The fault schedule and the views layer leave the seed in charge: the
/// fault cell reruns identically too, and a different seed shuffles a
/// different deck.
#[test]
fn fault_cell_reruns_identically_and_seeds_matter() {
    let a = run_cell("wleq-f1", 0xFEED, 4, 2, true, true);
    let b = run_cell("wleq-f2", 0xFEED, 4, 2, true, true);
    assert_eq!(a, b, "faulted views cell diverged across reruns");
    assert!(a.audit_ops > 0, "views cell injects audit load");

    let c = run_cell("wleq-f3", 0xBEEF, 4, 2, true, true);
    assert_ne!(
        a.state_roots, c.state_roots,
        "different seeds must produce different histories"
    );
}

/// The confidential store is deterministic through its public API: same
/// seed ⇒ same ciphertexts and the same viewing keys, and the typed
/// denials are stable.
#[test]
fn confidential_store_is_seed_deterministic() {
    let build = || {
        let mut s = ConfidentialStore::new(0x5EC7);
        s.put("acct", "alice", b"balance=100");
        s.put("acct", "bob", b"balance=250");
        s.assign_role("auditor-1", "auditor");
        let vk = s.grant("auditor-1", "acct");
        (s.ciphertext("acct", "alice").map(<[u8]>::to_vec), vk)
    };
    let (ct1, vk1) = build();
    let (ct2, vk2) = build();
    assert_eq!(ct1, ct2, "same seed must seal identically");
    assert_eq!(vk1.0, vk2.0, "same seed must derive the same viewing key");

    let mut s = ConfidentialStore::new(0x5EC7);
    s.put("acct", "alice", b"balance=100");
    s.assign_role("auditor-1", "auditor");
    let vk = s.grant("auditor-1", "acct");
    assert_eq!(
        s.read("auditor-1", &vk, "acct", "alice").unwrap(),
        b"balance=100"
    );
    assert_eq!(
        s.read("stranger", &vk, "acct", "alice").unwrap_err(),
        Denial::NoGrant
    );
    s.revoke("auditor-1", "acct");
    assert_eq!(
        s.read("auditor-1", &vk, "acct", "alice").unwrap_err(),
        Denial::Revoked
    );
}

//! Integration: adversarial scenarios — the three attacks of §4.7 plus
//! ledger tampering — are all detected.

use ledgerview::prelude::*;
use ledgerview::views::reader::RevealedTx;
use ledgerview::views::verify;
use std::collections::HashSet;

fn setup() -> (
    FabricChain,
    HashBasedManager,
    ViewReader,
    Vec<RevealedTx>,
    rand::rngs::StdRng,
) {
    let mut rng = ledgerview::crypto::rng::seeded(77);
    let mut chain = FabricChain::new(&["Org1", "Org2"], &mut rng);
    let policy = EndorsementPolicy::MajorityOf(chain.org_ids());
    ledgerview::deploy_ledgerview_contracts(&mut chain, policy);
    let owner = chain
        .enroll(&OrgId::new("Org1"), "owner", &mut rng)
        .unwrap();
    let client = chain
        .enroll(&OrgId::new("Org2"), "client", &mut rng)
        .unwrap();
    let mut mgr: HashBasedManager = ViewManager::new(owner, true);
    mgr.create_view(
        &mut chain,
        "V",
        ViewPredicate::attr_eq("to", "W1"),
        AccessMode::Revocable,
        &mut rng,
    )
    .unwrap();
    for i in 0..4 {
        let to = if i % 2 == 0 { "W1" } else { "W2" };
        let tx = ClientTransaction::new(
            vec![("n", AttrValue::int(i)), ("to", AttrValue::str(to))],
            format!("s{i}").into_bytes(),
        );
        mgr.invoke_with_secret(&mut chain, &client, &tx, &mut rng)
            .unwrap();
    }
    mgr.flush(&mut chain, &mut rng).unwrap();
    let kp = EncryptionKeyPair::generate(&mut rng);
    mgr.grant_access(&mut chain, "V", kp.public(), &mut rng)
        .unwrap();
    let mut reader = ViewReader::new(kp);
    reader.obtain_view_key(&chain, "V").unwrap();
    let resp = mgr
        .query_view("V", &reader.public(), None, &mut rng)
        .unwrap();
    let revealed = reader.open_response(&chain, "V", &resp).unwrap();
    (chain, mgr, reader, revealed, rng)
}

#[test]
fn baseline_honest_verifies() {
    let (chain, _mgr, _reader, revealed, _) = setup();
    assert_eq!(revealed.len(), 2);
    let (sound, complete) = verify::verify_view(&chain, "V", &revealed, u64::MAX, true).unwrap();
    assert!(sound.ok && complete.ok);
}

#[test]
fn attack_add_non_matching_transaction() {
    // §4.7 case 1: a view serving a transaction outside its definition.
    let (chain, _mgr, _reader, mut revealed, _) = setup();
    // Find a W2 transaction on the ledger and inject it into the response.
    let w2 = chain
        .store()
        .iter()
        .flat_map(|b| &b.transactions)
        .filter(|t| t.chaincode == ledgerview::views::contracts::INVOKE_CC)
        .find_map(|t| {
            let stored =
                ledgerview::views::txmodel::StoredTransaction::from_bytes(&t.args[0]).ok()?;
            (stored.non_secret.get("to") == Some(&AttrValue::str("W2")))
                .then_some((t.tx_id, stored.non_secret))
        })
        .unwrap();
    revealed.push(RevealedTx {
        tid: w2.0,
        non_secret: w2.1,
        secret: b"s1".to_vec(),
        tx_key: None,
    });
    let report = verify::verify_soundness(&chain, "V", &revealed).unwrap();
    assert!(!report.ok);
}

#[test]
fn attack_serve_corrupted_secret() {
    // §4.7 case 2.
    let (chain, _mgr, _reader, mut revealed, _) = setup();
    revealed[0].secret = b"forged".to_vec();
    let report = verify::verify_soundness(&chain, "V", &revealed).unwrap();
    assert!(!report.ok);
}

#[test]
fn attack_omit_transaction() {
    // §4.7 case 3, detected by both completeness strategies.
    let (chain, _mgr, _reader, mut revealed, _) = setup();
    revealed.truncate(1);
    let tids: HashSet<TxId> = revealed.iter().map(|r| r.tid).collect();
    assert!(
        !verify::verify_completeness_txlist(&chain, "V", &tids, u64::MAX)
            .unwrap()
            .ok
    );
    assert!(
        !verify::verify_completeness_scan(&chain, "V", &tids, u64::MAX)
            .unwrap()
            .ok
    );
}

#[test]
fn attack_swap_payloads_between_transactions() {
    // The AEAD binds each view entry to its tid: an owner cannot swap the
    // secrets of two transactions without detection at decode time.
    let (chain, mgr, reader, revealed, mut rng) = setup();
    let kv = *mgr.view_key("V").unwrap();
    let (t0, t1) = (revealed[0].tid, revealed[1].tid);
    // Entry for t0 carrying t1's secret, sealed under t1's aad — then
    // presented as t0's entry.
    let enc = ledgerview::crypto::aead::seal_sym_aad(
        kv.as_bytes(),
        &mut rng,
        &revealed[1].secret,
        t1.0.as_bytes(),
    );
    let forged_body = {
        // encode_response is crate-private; build the same layout by hand.
        let mut w = ledgerview::fabric::wire::Writer::new();
        w.u8(1); // hash scheme
        w.u8(0); // revocable
        w.u32(1);
        w.array(t0.0.as_bytes());
        w.bytes(&enc);
        w.into_bytes()
    };
    let forged = ledgerview::views::manager::QueryResponse {
        sealed: ledgerview::crypto::seal(&reader.public(), &mut rng, &forged_body),
    };
    assert!(reader.open_response(&chain, "V", &forged).is_err());
}

#[test]
fn attack_tamper_with_ledger_detected_by_chain_verification() {
    // Rewriting history breaks the hash chain: simulate by rebuilding a
    // block store with a modified transaction and checking that append
    // rejects it (the BlockStore refuses a forged data hash).
    let (chain, _mgr, _reader, _revealed, _) = setup();
    let mut tampered = ledgerview::fabric::BlockStore::new();
    for (i, block) in chain.store().iter().enumerate() {
        let mut b = block.clone();
        if i == 1 {
            // Flip a byte in a transaction argument.
            if let Some(tx) = b.transactions.get_mut(0) {
                if let Some(arg) = tx.args.get_mut(0) {
                    if let Some(byte) = arg.get_mut(10) {
                        *byte ^= 1;
                    }
                }
            }
            assert!(tampered.append(b).is_err());
            return;
        }
        tampered.append(b).unwrap();
    }
    panic!("chain had fewer than 2 blocks");
}

#[test]
fn revoked_user_cannot_decrypt_new_data_but_keeps_old() {
    // §4.2: "users may still have access to information they downloaded
    // and stored locally, but they cannot access and download additional
    // information".
    let mut rng = ledgerview::crypto::rng::seeded(88);
    let mut chain = FabricChain::new(&["Org1"], &mut rng);
    let policy = EndorsementPolicy::AnyOf(chain.org_ids());
    ledgerview::deploy_ledgerview_contracts(&mut chain, policy);
    let owner = chain
        .enroll(&OrgId::new("Org1"), "owner", &mut rng)
        .unwrap();
    let client = chain
        .enroll(&OrgId::new("Org1"), "client", &mut rng)
        .unwrap();
    let mut mgr: EncryptionBasedManager = ViewManager::new(owner, false);
    mgr.create_view(
        &mut chain,
        "V",
        ViewPredicate::True,
        AccessMode::Revocable,
        &mut rng,
    )
    .unwrap();
    mgr.invoke_with_secret(
        &mut chain,
        &client,
        &ClientTransaction::new(vec![("n", AttrValue::int(1))], b"old-data".to_vec()),
        &mut rng,
    )
    .unwrap();

    let bob_kp = EncryptionKeyPair::generate(&mut rng);
    mgr.grant_access(&mut chain, "V", bob_kp.public(), &mut rng)
        .unwrap();
    let mut bob = ViewReader::new(bob_kp);
    bob.obtain_view_key(&chain, "V").unwrap();
    let resp = mgr.query_view("V", &bob.public(), None, &mut rng).unwrap();
    let downloaded = bob.open_response(&chain, "V", &resp).unwrap();
    assert_eq!(downloaded[0].secret, b"old-data");

    // Revoke; new data arrives.
    mgr.revoke_access(&mut chain, "V", &bob.public(), &mut rng)
        .unwrap();
    mgr.invoke_with_secret(
        &mut chain,
        &client,
        &ClientTransaction::new(vec![("n", AttrValue::int(2))], b"new-data".to_vec()),
        &mut rng,
    )
    .unwrap();

    // Bob keeps what he downloaded (local copy)…
    assert_eq!(downloaded[0].secret, b"old-data");
    // …but can obtain nothing new: no key, owner refuses, and the rotated
    // key makes even an intercepted response for someone else useless.
    assert!(bob.obtain_view_key(&chain, "V").is_err());
    assert!(mgr.query_view("V", &bob.public(), None, &mut rng).is_err());
    let carol_kp = EncryptionKeyPair::generate(&mut rng);
    mgr.grant_access(&mut chain, "V", carol_kp.public(), &mut rng)
        .unwrap();
    let carol_resp = mgr
        .query_view("V", &carol_kp.public(), None, &mut rng)
        .unwrap();
    assert!(bob.decode_response("V", &carol_resp).is_err());
}

#[test]
fn peers_never_see_plaintext_secrets() {
    // The core privacy property: no plaintext secret byte-string appears
    // anywhere in the ledger, the state database, or block bytes.
    let mut rng = ledgerview::crypto::rng::seeded(99);
    let mut chain = FabricChain::new(&["Org1"], &mut rng);
    let policy = EndorsementPolicy::AnyOf(chain.org_ids());
    ledgerview::deploy_ledgerview_contracts(&mut chain, policy);
    let owner = chain
        .enroll(&OrgId::new("Org1"), "owner", &mut rng)
        .unwrap();
    let client = chain
        .enroll(&OrgId::new("Org1"), "client", &mut rng)
        .unwrap();

    let secret = b"EXTREMELY-CONFIDENTIAL-PRICE-8472";
    for (mode, name) in [
        (AccessMode::Revocable, "VR"),
        (AccessMode::Irrevocable, "VI"),
    ] {
        let mut mgr: EncryptionBasedManager = ViewManager::new(owner.clone(), false);
        mgr.create_view(&mut chain, name, ViewPredicate::True, mode, &mut rng)
            .unwrap();
        mgr.invoke_with_secret(
            &mut chain,
            &client,
            &ClientTransaction::new(vec![("v", AttrValue::str(name))], secret.to_vec()),
            &mut rng,
        )
        .unwrap();
    }

    let contains = |haystack: &[u8]| haystack.windows(secret.len()).any(|w| w == secret);
    for block in chain.store().iter() {
        for tx in &block.transactions {
            for arg in &tx.args {
                assert!(!contains(arg), "plaintext secret leaked into a block");
            }
            assert!(!contains(&tx.rwset.to_bytes()), "leak in rwset");
        }
    }
    // Full state scan.
    for (_, v) in chain.state().prefix_scan("") {
        assert!(!contains(&v), "plaintext secret leaked into state");
    }
}

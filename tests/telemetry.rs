//! Telemetry must observe, never perturb: the same workload with and
//! without an attached registry/tracer commits bit-identical state, and an
//! instrumented run produces a well-formed exposition with every lifecycle
//! phase populated.

use ledgerview::crypto::rng::seeded;
use ledgerview::crypto::sha256::Digest;
use ledgerview::fabric::chaincode::TxContext;
use ledgerview::fabric::endorsement::EndorsementPolicy;
use ledgerview::fabric::identity::{Identity, OrgId};
use ledgerview::fabric::{Chaincode, FabricChain, FabricError};
use ledgerview::prelude::{FsyncPolicy, StorageConfig, Telemetry, ValidationConfig};
use ledgerview::store::testdir::TestDir;
use proptest::prelude::*;

struct Kv;

impl Chaincode for Kv {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, FabricError> {
        let key = String::from_utf8_lossy(&args[0]).to_string();
        match function {
            "put" => {
                ctx.put_state(key, args[1].clone());
                Ok(vec![])
            }
            "rmw" => {
                let mut v = ctx.get_state(&key).unwrap_or_default();
                v.push(b'!');
                ctx.put_state(key, v.clone());
                Ok(v)
            }
            other => Err(FabricError::ChaincodeError(format!("unknown {other}"))),
        }
    }
}

fn setup(chain: &mut FabricChain, seed: u64) -> Identity {
    let mut rng = seeded(seed ^ 0x7e1e);
    chain.deploy(
        "kv",
        Box::new(Kv),
        EndorsementPolicy::AllOf(chain.org_ids()),
    );
    chain
        .enroll(&OrgId::new("Org1"), "alice", &mut rng)
        .unwrap()
}

/// Mixed workload (puts + an MVCC conflict pair every other block);
/// returns `(state_digest, state_root)` after every block.
fn run_workload(
    chain: &mut FabricChain,
    alice: &Identity,
    blocks: u64,
    seed: u64,
) -> Vec<(Digest, Digest)> {
    let mut rng = seeded(seed);
    let mut history = vec![(chain.state().state_digest(), chain.state_root())];
    for b in 0..blocks {
        for t in 0..3u64 {
            let key = format!("k{}", (b * 3 + t) % 5);
            chain
                .invoke(
                    alice,
                    "kv",
                    "put",
                    vec![key.into_bytes(), vec![(b + t) as u8; 9]],
                    &mut rng,
                )
                .unwrap();
        }
        if b % 2 == 1 {
            for _ in 0..2 {
                chain
                    .invoke(alice, "kv", "rmw", vec![b"k0".to_vec()], &mut rng)
                    .unwrap();
            }
        }
        chain.cut_block();
        history.push((chain.state().state_digest(), chain.state_root()));
    }
    history
}

fn in_memory_history(
    seed: u64,
    blocks: u64,
    telemetry: Option<&Telemetry>,
) -> Vec<(Digest, Digest)> {
    let mut rng = seeded(seed);
    let mut chain = FabricChain::new(&["Org1", "Org2"], &mut rng);
    if let Some(t) = telemetry {
        chain.set_telemetry(t);
    }
    let alice = setup(&mut chain, seed);
    run_workload(&mut chain, &alice, blocks, seed ^ 0xabcd)
}

fn durable_history(seed: u64, blocks: u64, telemetry: Option<&Telemetry>) -> Vec<(Digest, Digest)> {
    let dir = TestDir::new("telemetry-differential");
    let config = StorageConfig::new(dir.path()).fsync(FsyncPolicy::Never);
    let mut rng = seeded(seed);
    let mut chain = FabricChain::with_storage(
        &["Org1", "Org2"],
        &mut rng,
        config,
        ValidationConfig::parallel(2),
    )
    .unwrap();
    if let Some(t) = telemetry {
        chain.set_telemetry(t);
    }
    let alice = setup(&mut chain, seed);
    run_workload(&mut chain, &alice, blocks, seed ^ 0xabcd)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Differential: state digests and rolling roots are bit-identical with
    /// telemetry on vs off, on both the in-memory and the durable +
    /// parallel-validation paths.
    #[test]
    fn state_roots_identical_with_telemetry_on_and_off(
        seed in 0u64..500,
        blocks in 1u64..7,
    ) {
        let telemetry = Telemetry::wall_clock();
        prop_assert_eq!(
            in_memory_history(seed, blocks, Some(&telemetry)),
            in_memory_history(seed, blocks, None)
        );
        prop_assert_eq!(
            durable_history(seed, blocks, Some(&telemetry)),
            durable_history(seed, blocks, None)
        );
    }
}

#[test]
fn workload_populates_every_lifecycle_phase() {
    let telemetry = Telemetry::wall_clock();
    let blocks = 6;
    durable_history(42, blocks, Some(&telemetry));

    let registry = telemetry.registry();
    for phase in ["endorse", "order", "validate", "commit", "persist"] {
        let h = registry.histogram("lv_chain_phase_seconds", &[("phase", phase)]);
        let snap = h.histogram();
        if phase == "endorse" {
            // Endorsement is timed per transaction, the rest per block.
            assert!(snap.count() > blocks, "phase {phase}: {}", snap.count());
        } else {
            assert_eq!(snap.count(), blocks, "phase {phase}");
        }
        assert!(
            snap.quantile(0.95) <= snap.max(),
            "phase {phase}: p95 {} > max {}",
            snap.quantile(0.95),
            snap.max()
        );
    }
    // Endorsement does real Ed25519 work — its quantiles cannot be zero.
    let endorse = registry.histogram("lv_chain_phase_seconds", &[("phase", "endorse")]);
    assert!(endorse.histogram().quantile(0.5) > 0);
    // The durable path fsyncs nothing under `Never`, but WAL appends are
    // real writes and must have been timed.
    let wal = registry.histogram("lv_storage_wal_append_seconds", &[]);
    assert_eq!(wal.histogram().count(), blocks);

    // The exposition is well-formed under the in-repo lint.
    let text = registry.prometheus_text();
    let issues = ledgerview::telemetry::promlint::lint_prometheus(&text);
    assert!(issues.is_empty(), "lint: {issues:?}");
}

#[test]
fn trace_nests_validation_inside_block_cut() {
    let telemetry = Telemetry::wall_clock();
    durable_history(7, 3, Some(&telemetry));
    let spans = telemetry.tracer().recent();
    let cut_ids: Vec<u64> = spans
        .iter()
        .filter(|s| s.name == "cut.block")
        .map(|s| s.id)
        .collect();
    assert_eq!(cut_ids.len(), 3);
    // Every validate.block span nests (via the block.validate lifecycle
    // phase) under some cut.block span.
    let validates: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "validate.block")
        .collect();
    assert_eq!(validates.len(), 3);
    for v in &validates {
        let phase_id = v.parent.expect("validate.block must have a parent");
        let phase = spans
            .iter()
            .find(|s| s.id == phase_id)
            .expect("parent span recorded");
        assert_eq!(phase.name, "block.validate");
        let parent = phase.parent.expect("block.validate must have a parent");
        assert!(cut_ids.contains(&parent), "parent {parent} not a cut.block");
    }
    // The Chrome export is valid JSON with one event per span (plus
    // thread-name metadata).
    let json = telemetry.tracer().chrome_trace_json();
    assert!(json.contains("\"name\":\"cut.block\""));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"ph\":\"M\""));
}

//! Differential properties of the disk-backed LSM state database.
//!
//! Every test drives the same operation stream into the LSM backend and
//! the in-memory `StateDb` twin and demands bit-identical results: values,
//! MVCC versions, range/prefix scans, the bucketed Merkle state digest,
//! and the chain's rolling state root at every height. The crash tests
//! additionally arm the engine's injected crash points (mid-flush,
//! mid-compaction) and cut the WAL or block file at arbitrary byte
//! offsets, then require recovery to a committed-prefix-consistent state.

use ledgerview::crypto::rng::seeded;
use ledgerview::crypto::sha256::Digest;
use ledgerview::fabric::chaincode::TxContext;
use ledgerview::fabric::endorsement::EndorsementPolicy;
use ledgerview::fabric::identity::{Identity, OrgId};
use ledgerview::fabric::statedb::VersionedState;
use ledgerview::fabric::storage::wal_segment_path;
use ledgerview::fabric::{Chaincode, FabricChain, FabricError, LsmState, StateDb, Version};
use ledgerview::prelude::{FsyncPolicy, StorageConfig, ValidationConfig};
use ledgerview::statedb::{CrashPoint, LsmConfig};
use ledgerview::store::blockfile::BLOCKS_DATA_FILE;
use ledgerview::store::testdir::TestDir;
use proptest::prelude::*;
use std::path::Path;

/// `put key value`, `del key`, `rmw key` (read-modify-write, the MVCC
/// conflict generator) — the same workload chaincode the durable-backend
/// recovery tests use.
struct Kv;

impl Chaincode for Kv {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, FabricError> {
        let key = String::from_utf8_lossy(&args[0]).to_string();
        match function {
            "put" => {
                ctx.put_state(key, args[1].clone());
                Ok(vec![])
            }
            "del" => {
                ctx.delete_state(key);
                Ok(vec![])
            }
            "rmw" => {
                let mut v = ctx.get_state(&key).unwrap_or_default();
                v.push(b'!');
                ctx.put_state(key, v.clone());
                Ok(v)
            }
            other => Err(FabricError::ChaincodeError(format!("unknown {other}"))),
        }
    }
}

fn setup(chain: &mut FabricChain, seed: u64) -> Identity {
    let mut rng = seeded(seed ^ 0x5eed);
    chain.deploy(
        "kv",
        Box::new(Kv),
        EndorsementPolicy::AllOf(chain.org_ids()),
    );
    chain
        .enroll(&OrgId::new("Org1"), "alice", &mut rng)
        .unwrap()
}

/// Tiny engine budgets so even short workloads overflow the memtable and
/// trigger compactions — the regimes the differential tests must cover.
fn tiny_lsm_config(dir: &Path) -> LsmConfig {
    LsmConfig::new(dir.join("lsm"))
        .memtable_bytes(2 * 1024)
        .block_bytes(512)
        .table_target_bytes(4 * 1024)
        .block_cache_bytes(4 * 1024)
        .row_cache_bytes(2 * 1024)
        .l0_compact_tables(2)
        .level_base_bytes(16 * 1024)
        .sync(false)
}

fn lsm_chain(seed: u64, dir: &Path) -> (FabricChain, Identity) {
    let config = StorageConfig::new(dir)
        .fsync(FsyncPolicy::Never)
        .checkpoint_every(3);
    let mut rng = seeded(seed);
    let mut chain = FabricChain::with_lsm_storage_tuned(
        &["Org1", "Org2"],
        &mut rng,
        config,
        tiny_lsm_config(dir),
        ValidationConfig::parallel(2),
    )
    .unwrap();
    let alice = setup(&mut chain, seed);
    (chain, alice)
}

/// Submit one block's worth of the deterministic mixed workload (values
/// are large relative to the tiny memtable, so flushes fire mid-run).
fn submit_block(chain: &mut FabricChain, alice: &Identity, b: u64, rng: &mut impl rand::RngCore) {
    for t in 0..3u64 {
        let key = format!("k{:02}", (b * 3 + t) % 11);
        chain
            .invoke(
                alice,
                "kv",
                "put",
                vec![key.into_bytes(), vec![(b + t) as u8; 120]],
                rng,
            )
            .unwrap();
    }
    if b % 2 == 1 {
        // A read-modify-write pair: the second loses MVCC validation, so
        // blocks carry invalid transactions too.
        for _ in 0..2 {
            chain
                .invoke(alice, "kv", "rmw", vec![b"k00".to_vec()], rng)
                .unwrap();
        }
    }
    if b % 3 == 2 {
        chain
            .invoke(
                alice,
                "kv",
                "del",
                vec![format!("k{:02}", b % 11).into_bytes()],
                rng,
            )
            .unwrap();
    }
}

/// `(state_digest, state_root)` after every block; index 0 is the empty
/// pre-workload snapshot.
fn run_workload(
    chain: &mut FabricChain,
    alice: &Identity,
    blocks: u64,
    seed: u64,
) -> Vec<(Digest, Digest)> {
    let mut rng = seeded(seed);
    let mut history = vec![(chain.state().state_digest(), chain.state_root())];
    for b in 0..blocks {
        submit_block(chain, alice, b, &mut rng);
        let outcomes = chain.cut_block();
        assert!(!outcomes.is_empty());
        history.push((chain.state().state_digest(), chain.state_root()));
    }
    history
}

/// The in-memory twin: same seeds, same workload, no disk.
fn reference_history(seed: u64, blocks: u64) -> Vec<(Digest, Digest)> {
    let mut rng = seeded(seed);
    let mut chain = FabricChain::new(&["Org1", "Org2"], &mut rng);
    let alice = setup(&mut chain, seed);
    run_workload(&mut chain, &alice, blocks, seed ^ 0xabcd)
}

/// Truncate `path` to `keep` bytes (simulated crash mid-write).
fn truncate_file(path: &Path, keep: u64) {
    let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    f.set_len(keep.min(f.metadata().unwrap().len())).unwrap();
}

fn v(block_num: u64, tx_num: u32) -> Version {
    Version { block_num, tx_num }
}

/// Compare every observable of the two states: digest, sizes, per-key
/// values and versions, and full/partial scans.
fn assert_states_identical(lsm: &LsmState, mem: &StateDb, keys: impl Iterator<Item = String>) {
    assert_eq!(lsm.state_digest(), mem.state_digest());
    assert_eq!(lsm.len(), VersionedState::len(mem));
    assert_eq!(lsm.size_bytes(), VersionedState::size_bytes(mem));
    for key in keys {
        assert_eq!(lsm.get(&key), VersionedState::get(mem, &key), "{key}");
        assert_eq!(lsm.version(&key), mem.version(&key), "{key}");
        assert_eq!(lsm.lookup(&key), VersionedState::lookup(mem, &key), "{key}");
    }
    assert_eq!(
        lsm.prefix_scan(""),
        VersionedState::prefix_scan(mem, ""),
        "full scans diverge"
    );
}

#[test]
fn lsm_chain_matches_twin_and_survives_reopen() {
    let dir = TestDir::new("statedb-eq-clean");
    let seed = 41;
    let blocks = 10;
    let history = {
        let (mut chain, alice) = lsm_chain(seed, dir.path());
        let history = run_workload(&mut chain, &alice, blocks, seed ^ 0xabcd);
        // The tiny budgets must actually exercise the disk paths.
        let stats = chain.lsm_backend().unwrap().lsm_stats();
        assert!(stats.flushes > 0, "workload never flushed the memtable");
        assert!(stats.compactions > 0, "workload never compacted");
        history
    };
    assert_eq!(history, reference_history(seed, blocks), "twins diverged");

    let (mut chain, alice) = lsm_chain(seed, dir.path());
    assert_eq!(chain.height(), blocks);
    assert!(chain.is_durable());
    let (digest, root) = history.last().unwrap();
    assert_eq!(chain.state().state_digest(), *digest);
    assert_eq!(chain.state_root(), *root);
    chain.store().verify_chain().unwrap();

    // The recovered chain keeps committing.
    let mut rng = seeded(999);
    chain
        .invoke(
            &alice,
            "kv",
            "put",
            vec![b"post".to_vec(), b"crash".to_vec()],
            &mut rng,
        )
        .unwrap();
    let outcomes = chain.cut_block();
    assert!(outcomes[0].is_valid());
    assert_eq!(chain.height(), blocks + 1);
    chain.flush().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Op-level differential: a random put/delete/flush interleaving gives
    /// bit-identical values, versions, scans and digests on both state
    /// implementations — and the digest survives flush + reopen.
    #[test]
    fn random_ops_bit_identical(
        ops in proptest::collection::vec(
            // (key index, op: 0-1 put / 2 delete, value length, flush?)
            (0u8..24, 0u8..3, 0usize..48, any::<bool>()),
            1..100,
        ),
    ) {
        let dir = TestDir::new("statedb-eq-ops");
        let (mut lsm, _) = LsmState::open(tiny_lsm_config(dir.path())).unwrap();
        let mut mem = StateDb::new();
        for (i, (key_idx, op, len, flush)) in ops.iter().enumerate() {
            let key = format!("key{key_idx:02}");
            let version = v(1 + (i / 4) as u64, (i % 4) as u32);
            if *op < 2 {
                let value = vec![(*key_idx) ^ (i as u8); *len];
                lsm.put(key.clone(), value.clone(), version);
                mem.put(key, value, version);
            } else {
                // Deletes tombstone even absent keys (digest-visible).
                lsm.delete(&key, version);
                mem.delete(&key, version);
            }
            if *flush && i % 5 == 0 {
                lsm.flush(b"mid").unwrap();
            }
        }
        assert_states_identical(&lsm, &mem, (0..24).map(|i| format!("key{i:02}")));
        prop_assert_eq!(
            lsm.range_scan("key04", "key12"),
            VersionedState::range_scan(&mem, "key04", "key12")
        );

        // Flush persists the memtable; a reopen must rebuild the identical
        // directory (versions, tombstones, digest) from disk alone.
        let digest = lsm.state_digest();
        lsm.flush(b"final").unwrap();
        drop(lsm);
        let (reopened, meta) = LsmState::open(tiny_lsm_config(dir.path())).unwrap();
        prop_assert_eq!(meta.as_deref(), Some(&b"final"[..]));
        prop_assert_eq!(reopened.state_digest(), digest);
        assert_states_identical(&reopened, &mem, (0..24).map(|i| format!("key{i:02}")));
    }

    /// Chain-level differential: the LSM-backed chain and the in-memory
    /// chain commit bit-identical state (digest AND rolling root) at every
    /// height, across random seeds and block counts.
    #[test]
    fn lsm_and_in_memory_chains_identical(
        seed in 0u64..500,
        blocks in 1u64..7,
    ) {
        let dir = TestDir::new("statedb-eq-chain");
        let (mut chain, alice) = lsm_chain(seed, dir.path());
        let lsm_history = run_workload(&mut chain, &alice, blocks, seed ^ 0xabcd);
        prop_assert_eq!(lsm_history, reference_history(seed, blocks));
    }

    /// Arm an injected crash (mid-flush or mid-compaction), optionally
    /// tear the WAL afterwards, and reopen: the block file is intact, so
    /// recovery must reconstruct the complete committed state — lost WAL
    /// records are re-derived from the blocks' own write sets.
    #[test]
    fn crash_mid_flush_or_compaction_recovers(
        seed in 0u64..500,
        blocks in 3u64..9,
        point in 0u8..2,
        cut_wal in 0u64..100_000,
    ) {
        let dir = TestDir::new("statedb-eq-crash");
        let committed = {
            let (mut chain, alice) = lsm_chain(seed, dir.path());
            let point = if point == 0 {
                CrashPoint::AfterFlushTable
            } else {
                CrashPoint::AfterCompactionWrite
            };
            chain
                .lsm_backend_mut()
                .unwrap()
                .lsm_state_mut()
                .set_crash_point(Some(point));
            let mut rng = seeded(seed ^ 0xabcd);
            let mut committed = 0;
            for b in 0..blocks {
                submit_block(&mut chain, &alice, b, &mut rng);
                chain.cut_block();
                committed += 1;
                // The engine refuses all I/O once the crash fires; stop
                // here exactly as the crashed process would.
                if chain.lsm_backend().unwrap().lsm_state().crashed() {
                    break;
                }
            }
            committed
        };
        if cut_wal > 0 {
            let wal_path = wal_segment_path(dir.path(), 0);
            let len = std::fs::metadata(&wal_path).unwrap().len();
            truncate_file(&wal_path, cut_wal % (len + 1));
        }

        let (chain, alice) = lsm_chain(seed, dir.path());
        let reference = reference_history(seed, blocks);
        prop_assert_eq!(chain.height(), committed);
        let (digest, root) = reference[committed as usize];
        prop_assert_eq!(chain.state().state_digest(), digest);
        prop_assert_eq!(chain.state_root(), root);
        chain.store().verify_chain().unwrap();

        // The recovered store accepts new commits.
        let mut chain = chain;
        let mut rng = seeded(seed ^ 7777);
        chain
            .invoke(&alice, "kv", "put", vec![b"post".to_vec(), b"crash".to_vec()], &mut rng)
            .unwrap();
        chain.cut_block();
        prop_assert_eq!(chain.height(), committed + 1);
    }

    /// Cut the block file anywhere: recovery either keeps a block prefix
    /// whose state matches the reference replay at exactly that height, or
    /// — when the cut falls below the LSM's flushed height — correctly
    /// refuses to open (the manifest proves blocks are missing).
    #[test]
    fn block_file_truncation_recovers_a_prefix_or_rejects(
        seed in 0u64..500,
        blocks in 3u64..9,
        cut_blocks in 0u64..1_000_000,
    ) {
        let dir = TestDir::new("statedb-eq-blockcut");
        {
            let (mut chain, alice) = lsm_chain(seed, dir.path());
            run_workload(&mut chain, &alice, blocks, seed ^ 0xabcd);
        }
        let data_path = dir.path().join(BLOCKS_DATA_FILE);
        let len = std::fs::metadata(&data_path).unwrap().len();
        truncate_file(&data_path, cut_blocks % (len + 1));

        let config = StorageConfig::new(dir.path())
            .fsync(FsyncPolicy::Never)
            .checkpoint_every(3);
        let mut rng = seeded(seed);
        match FabricChain::with_lsm_storage_tuned(
            &["Org1", "Org2"],
            &mut rng,
            config,
            tiny_lsm_config(dir.path()),
            ValidationConfig::parallel(2),
        ) {
            Ok(chain) => {
                let reference = reference_history(seed, blocks);
                let height = chain.height();
                prop_assert!(height <= blocks);
                let (digest, root) = reference[height as usize];
                prop_assert_eq!(chain.state().state_digest(), digest);
                prop_assert_eq!(chain.state_root(), root);
                chain.store().verify_chain().unwrap();
            }
            // The LSM manifest had absorbed blocks the cut destroyed:
            // refusing to open is the only sound answer.
            Err(FabricError::Storage(_)) => {}
            Err(other) => panic!("expected a storage error, got {other}"),
        }
    }
}

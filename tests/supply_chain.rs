//! Integration: the WL1/WL2 supply-chain workloads end to end, with the
//! paper's access-isolation property checked exactly.

use ledgerview::prelude::*;
use ledgerview::supplychain::{generate, Topology, WorkloadConfig};
use ledgerview::views::verify;
use std::collections::{HashMap, HashSet};

fn run_supply_chain(topology: &Topology, items: usize, seed: u64) {
    let mut rng = ledgerview::crypto::rng::seeded(seed);
    let mut chain = FabricChain::new(&["SupplyOrg"], &mut rng);
    let policy = EndorsementPolicy::AnyOf(chain.org_ids());
    ledgerview::deploy_ledgerview_contracts(&mut chain, policy);
    let owner = chain
        .enroll(&OrgId::new("SupplyOrg"), "owner", &mut rng)
        .unwrap();
    let client = chain
        .enroll(&OrgId::new("SupplyOrg"), "app", &mut rng)
        .unwrap();

    let mut mgr: HashBasedManager = ViewManager::new(owner, true);
    for name in topology.node_names() {
        mgr.create_view(
            &mut chain,
            format!("V_{name}"),
            ViewPredicate::touches_entity(name),
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
    }

    let workload = generate(
        topology,
        &WorkloadConfig {
            items,
            max_hops: 8,
            seed: seed + 1,
            secret_bytes: 32,
        },
    );
    let mut expected: HashMap<String, HashSet<TxId>> = HashMap::new();
    let mut all_secrets: HashMap<TxId, Vec<u8>> = HashMap::new();
    for t in &workload.transfers {
        let tx = ClientTransaction::new(
            t.attributes()
                .iter()
                .map(|(k, v)| (k.as_str(), AttrValue::str(v.clone())))
                .collect(),
            t.secret.clone(),
        );
        let tid = mgr
            .invoke_with_secret(&mut chain, &client, &tx, &mut rng)
            .unwrap();
        all_secrets.insert(tid, t.secret.clone());
        for entity in t.visible_to() {
            expected.entry(entity).or_default().insert(tid);
        }
    }
    mgr.flush(&mut chain, &mut rng).unwrap();

    for name in topology.node_names() {
        let view = format!("V_{name}");
        let kp = EncryptionKeyPair::generate(&mut rng);
        mgr.grant_access(&mut chain, &view, kp.public(), &mut rng)
            .unwrap();
        let mut reader = ViewReader::new(kp);
        reader.obtain_view_key(&chain, &view).unwrap();
        let resp = mgr
            .query_view(&view, &reader.public(), None, &mut rng)
            .unwrap();
        let revealed = reader.open_response(&chain, &view, &resp).unwrap();
        let got: HashSet<TxId> = revealed.iter().map(|r| r.tid).collect();
        let want = expected.get(name).cloned().unwrap_or_default();
        assert_eq!(got, want, "entity {name} visibility mismatch");
        // Secrets revealed correctly.
        for r in &revealed {
            assert_eq!(&r.secret, &all_secrets[&r.tid]);
        }
        // Sound and complete per Proposition 4.1.
        let (sound, complete) =
            verify::verify_view(&chain, &view, &revealed, u64::MAX, true).unwrap();
        assert!(sound.ok, "{view}: {:?}", sound.violations);
        assert!(complete.ok, "{view}: {:?}", complete.violations);
    }
    chain.store().verify_chain().unwrap();
}

#[test]
fn wl1_end_to_end() {
    run_supply_chain(&Topology::wl1(), 25, 10);
}

#[test]
fn wl2_end_to_end() {
    run_supply_chain(&Topology::wl2(), 25, 20);
}

#[test]
fn receiver_gains_historical_access() {
    // The paper's example: when n3 receives item i, the historical
    // transfers (i, n0→n1), (i, n1→n2) are added to V_n3. This uses the
    // *recursive* view definition ("all transfers of items the entity ever
    // handled") plus refresh_view, and verification evaluates the same
    // datalog program — so the retroactive inserts stay verifiably sound.
    use ledgerview::views::predicate::entity_history_definition;

    let topology = Topology::wl1();
    let mut rng = ledgerview::crypto::rng::seeded(30);
    let mut chain = FabricChain::new(&["SupplyOrg"], &mut rng);
    let policy = EndorsementPolicy::AnyOf(chain.org_ids());
    ledgerview::deploy_ledgerview_contracts(&mut chain, policy);
    let owner = chain
        .enroll(&OrgId::new("SupplyOrg"), "owner", &mut rng)
        .unwrap();
    let client = chain
        .enroll(&OrgId::new("SupplyOrg"), "app", &mut rng)
        .unwrap();
    let mut mgr: HashBasedManager = ViewManager::new(owner, true);
    for name in topology.node_names() {
        mgr.create_view_with_definition(
            &mut chain,
            format!("V_{name}"),
            entity_history_definition(name),
            AccessMode::Revocable,
            &mut rng,
        )
        .unwrap();
    }
    let workload = generate(
        &topology,
        &WorkloadConfig {
            items: 10,
            max_hops: 8,
            seed: 31,
            secret_bytes: 16,
        },
    );
    let mut tid_of: HashMap<(String, u32), TxId> = HashMap::new();
    for t in &workload.transfers {
        let tx = ClientTransaction::new(
            t.attributes()
                .iter()
                .map(|(k, v)| (k.as_str(), AttrValue::str(v.clone())))
                .collect(),
            t.secret.clone(),
        );
        let tid = mgr
            .invoke_with_secret(&mut chain, &client, &tx, &mut rng)
            .unwrap();
        tid_of.insert((t.item.clone(), t.seq), tid);
    }
    // Recompute recursive view membership over the ledger.
    for name in topology.node_names() {
        mgr.refresh_view(&mut chain, &format!("V_{name}"), &mut rng)
            .unwrap();
    }
    mgr.flush(&mut chain, &mut rng).unwrap();

    // Pick an item with >= 2 hops; EVERY handler (including the final
    // receiver) must see ALL of its hops — even those before it received
    // the item.
    let multi_hop_item = (0..10)
        .map(|i| format!("item-{i:05}"))
        .find(|item| workload.item_history(item).len() >= 2)
        .expect("some multi-hop item");
    let history = workload.item_history(&multi_hop_item);
    let final_receiver = history.last().unwrap().to.clone();
    let view = format!("V_{final_receiver}");
    let view_tids: HashSet<TxId> = mgr.view_tids(&view).unwrap().into_iter().collect();
    for hop in &history {
        let tid = tid_of[&(multi_hop_item.clone(), hop.seq)];
        assert!(
            view_tids.contains(&tid),
            "{final_receiver} must see hop {} of {multi_hop_item}",
            hop.seq
        );
    }

    // A reader of the recursive view passes soundness & completeness.
    let kp = EncryptionKeyPair::generate(&mut rng);
    mgr.grant_access(&mut chain, &view, kp.public(), &mut rng)
        .unwrap();
    let mut reader = ViewReader::new(kp);
    reader.obtain_view_key(&chain, &view).unwrap();
    let resp = mgr
        .query_view(&view, &reader.public(), None, &mut rng)
        .unwrap();
    let revealed = reader.open_response(&chain, &view, &resp).unwrap();
    let (sound, complete) = verify::verify_view(&chain, &view, &revealed, u64::MAX, true).unwrap();
    assert!(sound.ok, "soundness: {:?}", sound.violations);
    assert!(complete.ok, "completeness: {:?}", complete.violations);
    // The exhaustive scan agrees with the datalog definition.
    let tids: HashSet<TxId> = revealed.iter().map(|r| r.tid).collect();
    let scan = verify::verify_completeness_scan(&chain, &view, &tids, u64::MAX).unwrap();
    assert!(scan.ok, "scan: {:?}", scan.violations);
}

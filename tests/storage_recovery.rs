//! Crash-recovery properties of the durable storage backend.
//!
//! Each test runs a deterministic workload on a durable chain, simulates a
//! crash by truncating the WAL and/or block file at an arbitrary byte
//! offset, reopens the directory, and checks the recovered state against an
//! in-memory twin that replayed the same workload: the recovered height
//! must be a prefix of the reference history, and the state digest and
//! rolling state root at that height must match the twin's bit for bit.

use ledgerview::crypto::rng::seeded;
use ledgerview::crypto::sha256::Digest;
use ledgerview::fabric::chaincode::TxContext;
use ledgerview::fabric::endorsement::EndorsementPolicy;
use ledgerview::fabric::identity::{Identity, OrgId};
use ledgerview::fabric::storage::wal_segment_path;
use ledgerview::fabric::{Chaincode, FabricChain, FabricError};
use ledgerview::prelude::{FsyncPolicy, StorageConfig, ValidationConfig};
use ledgerview::store::blockfile::BLOCKS_DATA_FILE;
use ledgerview::store::checkpoint::CHECKPOINT_FILE;
use ledgerview::store::testdir::TestDir;
use proptest::prelude::*;
use std::path::Path;

/// `put key value`, `del key`, `rmw key` (read-modify-write, the MVCC
/// conflict generator).
struct Kv;

impl Chaincode for Kv {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, FabricError> {
        let key = String::from_utf8_lossy(&args[0]).to_string();
        match function {
            "put" => {
                ctx.put_state(key, args[1].clone());
                Ok(vec![])
            }
            "del" => {
                ctx.delete_state(key);
                Ok(vec![])
            }
            "rmw" => {
                let mut v = ctx.get_state(&key).unwrap_or_default();
                v.push(b'!');
                ctx.put_state(key, v.clone());
                Ok(v)
            }
            other => Err(FabricError::ChaincodeError(format!("unknown {other}"))),
        }
    }
}

fn setup(chain: &mut FabricChain, seed: u64) -> Identity {
    let mut rng = seeded(seed ^ 0x5eed);
    chain.deploy(
        "kv",
        Box::new(Kv),
        EndorsementPolicy::AllOf(chain.org_ids()),
    );
    chain
        .enroll(&OrgId::new("Org1"), "alice", &mut rng)
        .unwrap()
}

/// Commit `blocks` blocks of a deterministic mixed workload (puts, deletes,
/// and an intra-block MVCC conflict pair every other block). Returns
/// `(state_digest, state_root)` after every block, with index 0 holding the
/// pre-workload (empty) snapshot.
fn run_workload(
    chain: &mut FabricChain,
    alice: &Identity,
    blocks: u64,
    seed: u64,
) -> Vec<(Digest, Digest)> {
    let mut rng = seeded(seed);
    let mut history = vec![(chain.state().state_digest(), chain.state_root())];
    for b in 0..blocks {
        for t in 0..3u64 {
            let key = format!("k{}", (b * 3 + t) % 7);
            chain
                .invoke(
                    alice,
                    "kv",
                    "put",
                    vec![key.into_bytes(), vec![(b + t) as u8; 9]],
                    &mut rng,
                )
                .unwrap();
        }
        if b % 2 == 1 {
            // Two read-modify-writes of one key: the second is invalidated
            // by MVCC, so blocks contain invalid transactions too.
            for _ in 0..2 {
                chain
                    .invoke(alice, "kv", "rmw", vec![b"k0".to_vec()], &mut rng)
                    .unwrap();
            }
        }
        if b % 3 == 2 {
            chain
                .invoke(
                    alice,
                    "kv",
                    "del",
                    vec![format!("k{}", b % 7).into_bytes()],
                    &mut rng,
                )
                .unwrap();
        }
        let outcomes = chain.cut_block();
        assert!(!outcomes.is_empty());
        history.push((chain.state().state_digest(), chain.state_root()));
    }
    history
}

fn durable_chain(seed: u64, config: StorageConfig) -> (FabricChain, Identity) {
    let mut rng = seeded(seed);
    let mut chain = FabricChain::with_storage(
        &["Org1", "Org2"],
        &mut rng,
        config,
        ValidationConfig::parallel(2),
    )
    .unwrap();
    let alice = setup(&mut chain, seed);
    (chain, alice)
}

/// The in-memory twin: same seeds, same workload, no disk.
fn reference_history(seed: u64, blocks: u64) -> Vec<(Digest, Digest)> {
    let mut rng = seeded(seed);
    let mut chain = FabricChain::new(&["Org1", "Org2"], &mut rng);
    let alice = setup(&mut chain, seed);
    run_workload(&mut chain, &alice, blocks, seed ^ 0xabcd)
}

/// Truncate `path` to `keep` bytes (simulated crash mid-write).
fn truncate_file(path: &Path, keep: u64) {
    let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    f.set_len(keep.min(f.metadata().unwrap().len())).unwrap();
}

#[test]
fn clean_reopen_recovers_full_history() {
    let dir = TestDir::new("recover-clean");
    let config = StorageConfig::new(dir.path())
        .fsync(FsyncPolicy::EveryN(4))
        .checkpoint_every(3);
    let seed = 11;
    let history = {
        let (mut chain, alice) = durable_chain(seed, config.clone());
        run_workload(&mut chain, &alice, 8, seed ^ 0xabcd)
    };
    assert_eq!(history, reference_history(seed, 8), "twin workloads agree");

    let (mut chain, alice) = durable_chain(seed, config);
    assert_eq!(chain.height(), 8);
    assert!(chain.is_durable());
    let (digest, root) = history.last().unwrap();
    assert_eq!(chain.state().state_digest(), *digest);
    assert_eq!(chain.state_root(), *root);
    chain.store().verify_chain().unwrap();

    // The recovered chain keeps committing.
    let mut rng = seeded(999);
    chain
        .invoke(
            &alice,
            "kv",
            "put",
            vec![b"post".to_vec(), b"crash".to_vec()],
            &mut rng,
        )
        .unwrap();
    let outcomes = chain.cut_block();
    assert!(outcomes[0].is_valid());
    assert_eq!(chain.height(), 9);
    chain.flush().unwrap();
}

#[test]
fn tampered_checkpoint_is_rejected() {
    let dir = TestDir::new("recover-tamper");
    let config = StorageConfig::new(dir.path())
        .fsync(FsyncPolicy::Never)
        .checkpoint_every(2);
    let seed = 23;
    {
        let (mut chain, alice) = durable_chain(seed, config.clone());
        run_workload(&mut chain, &alice, 6, seed ^ 0xabcd);
    }
    let cp_path = dir.path().join(CHECKPOINT_FILE);
    let mut bytes = std::fs::read(&cp_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&cp_path, &bytes).unwrap();

    let mut rng = seeded(seed);
    match FabricChain::with_storage(
        &["Org1", "Org2"],
        &mut rng,
        config,
        ValidationConfig::default(),
    ) {
        Err(FabricError::Storage(_)) => {}
        Err(other) => panic!("expected a storage error, got {other}"),
        Ok(_) => panic!("tampered checkpoint was accepted"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cut the WAL anywhere: the block file is intact, so recovery must
    /// reconstruct the *complete* history (lost WAL records are re-derived
    /// from the blocks themselves), even with checkpoints in play.
    #[test]
    fn wal_truncation_recovers_full_state(
        seed in 0u64..500,
        blocks in 3u64..9,
        cut in 0u64..100_000,
    ) {
        let dir = TestDir::new("recover-wal-cut");
        let config = StorageConfig::new(dir.path())
            .fsync(FsyncPolicy::Never)
            .checkpoint_every(4);
        {
            let (mut chain, alice) = durable_chain(seed, config.clone());
            run_workload(&mut chain, &alice, blocks, seed ^ 0xabcd);
        }
        let wal_path = wal_segment_path(dir.path(), 0);
        let len = std::fs::metadata(&wal_path).unwrap().len();
        truncate_file(&wal_path, cut % (len + 1));

        let (chain, _) = durable_chain(seed, config);
        let reference = reference_history(seed, blocks);
        prop_assert_eq!(chain.height(), blocks);
        let (digest, root) = reference.last().unwrap();
        prop_assert_eq!(chain.state().state_digest(), *digest);
        prop_assert_eq!(chain.state_root(), *root);
        chain.store().verify_chain().unwrap();
    }

    /// Cut the block file (and optionally the WAL) anywhere: recovery keeps
    /// the surviving block prefix, and the recovered state must equal the
    /// reference replay at exactly that height.
    #[test]
    fn block_file_truncation_recovers_a_prefix(
        seed in 0u64..500,
        blocks in 3u64..9,
        cut_blocks in 0u64..1_000_000,
        // 0 leaves the WAL alone; anything else also cuts the WAL there.
        cut_wal in 0u64..100_000,
    ) {
        let dir = TestDir::new("recover-block-cut");
        // No checkpoints: an artificial cut below a checkpoint's height is
        // (correctly) reported as corruption, which the prefix property
        // below does not model; `wal_truncation_recovers_full_state`
        // exercises checkpoints.
        let config = StorageConfig::new(dir.path())
            .fsync(FsyncPolicy::Never)
            .checkpoint_every(1_000);
        {
            let (mut chain, alice) = durable_chain(seed, config.clone());
            run_workload(&mut chain, &alice, blocks, seed ^ 0xabcd);
        }
        let data_path = dir.path().join(BLOCKS_DATA_FILE);
        let len = std::fs::metadata(&data_path).unwrap().len();
        truncate_file(&data_path, cut_blocks % (len + 1));
        if cut_wal > 0 {
            let wal_path = wal_segment_path(dir.path(), 0);
            let wal_len = std::fs::metadata(&wal_path).unwrap().len();
            truncate_file(&wal_path, cut_wal % (wal_len + 1));
        }

        let (chain, alice) = durable_chain(seed, config);
        let reference = reference_history(seed, blocks);
        let height = chain.height();
        prop_assert!(height <= blocks);
        let (digest, root) = reference[height as usize];
        prop_assert_eq!(chain.state().state_digest(), digest);
        prop_assert_eq!(chain.state_root(), root);
        chain.store().verify_chain().unwrap();

        // The repaired store accepts new commits at the recovered height.
        let mut chain = chain;
        let mut rng = seeded(seed ^ 7777);
        chain
            .invoke(&alice, "kv", "put", vec![b"post".to_vec(), b"crash".to_vec()], &mut rng)
            .unwrap();
        chain.cut_block();
        prop_assert_eq!(chain.height(), height + 1);
    }

    /// Differential: the durable backend commits bit-identical state to the
    /// in-memory backend for the same workload, at every height.
    #[test]
    fn durable_and_in_memory_state_identical(
        seed in 0u64..500,
        blocks in 1u64..7,
    ) {
        let dir = TestDir::new("recover-differential");
        let config = StorageConfig::new(dir.path()).fsync(FsyncPolicy::Never);
        let (mut chain, alice) = durable_chain(seed, config);
        let durable = run_workload(&mut chain, &alice, blocks, seed ^ 0xabcd);
        let reference = reference_history(seed, blocks);
        prop_assert_eq!(durable, reference);
    }
}
